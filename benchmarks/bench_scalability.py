"""E7 — deferred evaluation: scalability of borders and of the search."""

from repro.experiments import run_border_scalability, run_search_scalability


def test_bench_border_scalability(benchmark, bench_scale):
    sizes = (50, 100, 200, 400) if bench_scale == "full" else (50, 100)
    result = benchmark.pedantic(
        run_border_scalability, kwargs=dict(sizes=sizes, radii=(0, 1, 2)), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Borders must grow (weakly) with the radius for every database size.
    by_size = {}
    for row in result.rows:
        by_size.setdefault(row["students"], []).append(row)
    for rows in by_size.values():
        ordered = sorted(rows, key=lambda row: row["radius"])
        sizes_per_radius = [row["mean_border_size"] for row in ordered]
        assert sizes_per_radius == sorted(sizes_per_radius)


def test_bench_search_scalability(benchmark, bench_scale):
    sizes = (20, 40, 80) if bench_scale == "full" else (15, 30)
    result = benchmark.pedantic(
        run_search_scalability,
        kwargs=dict(sizes=sizes),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    assert all(row["best_coverage"] >= 0.9 for row in result.rows)
