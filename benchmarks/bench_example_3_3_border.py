"""E1 — Example 3.3: border construction (correctness + timing)."""

from repro.experiments import run_example_3_3


def test_bench_example_3_3_border(benchmark):
    result = benchmark(run_example_3_3)
    print()
    print(result.render())
    assert all(result.column("matches_paper"))
    assert result.rows[-1]["border_size"] == 4
