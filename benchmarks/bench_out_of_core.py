"""E16 — out-of-core serving: SQLite pushdown backend vs the in-memory seed.

The backend refactor (:mod:`repro.obdm.backend`) claims a workload well
beyond the comfortable in-memory size can be served end-to-end with the
fact set living outside the Python heap — SQL pushdown for mapping
application, indexed point lookups for borders — without moving a
single ranking byte.  This bench drives the E16 experiment
(:func:`repro.experiments.out_of_core_exp.run_out_of_core` — one shared
workload definition, no duplicated harness) and asserts:

* rankings are byte-identical across the memory backend, the SQLite
  backend with pushdown, and the SQLite backend with pushdown disabled
  (legacy per-assertion fallback), and with the unified index's
  ``engine.kernel.spill.enabled`` toggle on vs off;
* the streaming populate path reproduces the batch generator's fact
  set exactly (fingerprint parity across all stores);
* at a workload ``scale >= 10``× the base size, the SQLite phase's
  Python-heap allocation peak (deterministic, via :mod:`tracemalloc`)
  stays strictly below the memory backend's peak for the *same* serve
  — the fact set is genuinely off the heap, not merely mirrored;
* the recorded trajectory entry carries the memory high-water mark
  (``peak_rss_bytes``) every bench record samples.

Profiles (``REPRO_BENCH_PROFILE`` env var, see ``conftest.py``):

* ``quick`` — 24 base applicants scaled 10×, 16 candidates;
* ``full``  — 40 base applicants scaled 12×, 24 candidates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.experiments.out_of_core_exp import run_out_of_core

pytestmark = pytest.mark.backend


@dataclass(frozen=True)
class OutOfCoreBenchConfig:
    base_applicants: int
    scale: int
    candidate_pool: int
    labeled_per_side: int


PROFILES = {
    "quick": OutOfCoreBenchConfig(
        base_applicants=24, scale=10, candidate_pool=16, labeled_per_side=8
    ),
    "full": OutOfCoreBenchConfig(
        base_applicants=40, scale=12, candidate_pool=24, labeled_per_side=12
    ),
}

MIN_SCALE = 10


def test_bench_out_of_core(bench_profile, bench_trajectory):
    config = PROFILES[bench_profile]
    result = run_out_of_core(
        base_applicants=config.base_applicants,
        scale=config.scale,
        candidate_pool=config.candidate_pool,
        labeled_per_side=config.labeled_per_side,
    )
    pushdown_row = result.rows[0]
    spill_row = result.rows[1]
    scaled_row = result.rows[2]

    assert pushdown_row["identical_rankings"] is True, (
        "rankings diverged across memory / sqlite / sqlite-without-pushdown"
    )
    assert pushdown_row["identical_fingerprints"] is True, (
        "database fingerprints diverged across backends"
    )
    assert pushdown_row["populate_parity"] is True, (
        "streaming populate produced a different fact set than the batch generator"
    )
    assert spill_row["identical_rankings"] is True, (
        "spill-mode unified index rankings diverged from the in-memory columns"
    )
    assert spill_row["matches_memory_backend"] is True, (
        "spill-off serving diverged from the pushdown-identity baseline"
    )
    assert scaled_row["identical_rankings"] is True, (
        "scaled sqlite serving diverged from the scaled memory backend"
    )
    assert scaled_row["scale"] >= MIN_SCALE, (
        f"workload only {scaled_row['scale']}x the base size "
        f"(the out-of-core claim needs >= {MIN_SCALE}x)"
    )
    assert scaled_row["scaled_facts"] >= MIN_SCALE * scaled_row["base_facts"] * 0.8, (
        "scaled workload did not actually grow ~scale x in facts"
    )

    path = bench_trajectory(
        "out_of_core",
        scale=scaled_row["scale"],
        scaled_facts=scaled_row["scaled_facts"],
        memory_peak_bytes=scaled_row["memory_peak_bytes"],
        sqlite_peak_bytes=scaled_row["sqlite_peak_bytes"],
        peak_ratio=scaled_row["peak_ratio"],
    )
    recorded = json.loads(path.read_text())[-1]
    assert "peak_rss_bytes" in recorded, (
        "trajectory records must sample the memory high-water mark"
    )
    print()
    print(f"out-of-core bench [{bench_profile}]")
    print(result.render())
    print("  gate: sqlite Python-heap peak < memory-backend peak at >= 10x scale")
    assert scaled_row["sqlite_peak_bytes"] < scaled_row["memory_peak_bytes"], (
        f"sqlite serving peaked at {scaled_row['sqlite_peak_bytes']} bytes on the "
        f"Python heap, not below the memory backend's "
        f"{scaled_row['memory_peak_bytes']} — the facts are not off-heap"
    )
