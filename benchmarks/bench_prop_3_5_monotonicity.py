"""E4 — Proposition 3.5: monotonicity of J-matching in the radius."""

from repro.experiments import run_proposition_3_5


def test_bench_prop_3_5_monotonicity(benchmark, bench_scale):
    students = 60 if bench_scale == "full" else 20
    result = benchmark(run_proposition_3_5, students=students)
    print()
    print(result.render())
    assert sum(result.column("violations")) == 0
