"""E3 — Example 3.8: Z-scores of q1/q2/q3 under both weightings."""

from repro.experiments import run_example_3_8


def test_bench_example_3_8_scores(benchmark):
    result = benchmark(run_example_3_8)
    print()
    print(result.render())
    # Five of the six paper values match; Z1(q2) is the paper's arithmetic slip.
    assert result.column("agrees").count(True) == 5
