"""E10 — criteria phase: bitset verdict matrix vs. per-pair matching.

The legacy scoring path answers one (candidate, border) J-match question
at a time and rebuilds a frozenset profile for every (candidate,
labeling, configuration) triple.  The verdict matrix
(:mod:`repro.engine.verdicts`) stores each candidate's verdicts as one
bitset row, shared through the evaluation cache, so re-ranking the same
pool under another (Δ, Z) configuration is pure popcount arithmetic.

This bench drives the E10 experiment
(:func:`repro.experiments.scalability.run_bitset_criteria` — one shared
workload definition, no duplicated harness) at gate-worthy sizes: both
paths run with warm caches, so the measured ratio isolates the criteria
phase.  It asserts that rankings are byte-identical between the two
paths (and between sequential and process-sharded batch scoring), and
that the bitset path is at least 3× faster (measured speedups are
5–10×; 3× keeps the gate robust on noisy CI machines).

Profiles (``REPRO_BENCH_PROFILE`` env var, see ``conftest.py``):

* ``quick`` — 36 candidates × 2 labelings × 7 configurations, 32 borders;
* ``full``  — 44 candidates × 3 labelings × 7 configurations, 40 borders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.scalability import run_bitset_criteria

MIN_SPEEDUP = 3.0


@dataclass(frozen=True)
class BitsetBenchConfig:
    applicants: int
    candidate_pool: int
    labeled_per_side: int
    labelings: int
    rounds: int


PROFILES = {
    "quick": BitsetBenchConfig(
        applicants=40, candidate_pool=36, labeled_per_side=16, labelings=2, rounds=3
    ),
    "full": BitsetBenchConfig(
        applicants=56, candidate_pool=44, labeled_per_side=20, labelings=3, rounds=4
    ),
}


def test_bench_bitset_criteria(bench_profile, bench_trajectory):
    config = PROFILES[bench_profile]
    result = run_bitset_criteria(
        applicants=config.applicants,
        candidate_pool=config.candidate_pool,
        labeled_per_side=config.labeled_per_side,
        labelings=config.labelings,
        rounds=config.rounds,
    )
    criteria_row = result.rows[0]
    sharding_row = result.rows[1]

    assert criteria_row["candidates"] >= 20, "the acceptance gate requires >= 20 candidates"
    assert criteria_row["labelings"] >= 2, "the acceptance gate requires >= 2 labelings"
    assert criteria_row["identical_rankings"] is True, (
        "bitset rankings diverged from the per-pair path"
    )
    assert sharding_row["identical_rankings"] is True, (
        "process-sharded rankings diverged from the sequential path"
    )

    speedup = criteria_row["speedup"] if criteria_row["speedup"] is not None else float("inf")
    bench_trajectory(
        "bitset_criteria",
        speedup=criteria_row["speedup"],
        candidates=criteria_row["candidates"],
        labelings=criteria_row["labelings"],
    )
    print()
    print(f"bitset criteria bench [{bench_profile}]")
    print(result.render())
    print(f"  gate: speedup >= {MIN_SPEEDUP} x")
    assert speedup >= MIN_SPEEDUP, (
        f"bitset criteria phase only {speedup:.1f}x faster than the per-pair path "
        f"(required >= {MIN_SPEEDUP}x)"
    )
