"""E12 — verdict-row construction: pool-level match kernel vs per-pair path.

The per-pair path builds a verdict matrix cell by cell: one full
certain-answer check per (candidate, border) pair, O(|pool| × |borders|)
independent rewriting + homomorphism searches.  The pool-level match
kernel (:mod:`repro.engine.kernel`) merges all border ABoxes into one
provenance-indexed columnar fact store and emits each candidate's whole
row from a single set-at-a-time pass, tabling shared subquery prefixes
across the candidate lattice.

This bench drives the E12 experiment
(:func:`repro.experiments.kernel_exp.run_match_kernel` — one shared
workload definition, no duplicated harness; the pool comes from the
``bench_pool`` fixture's shared builder) at gate-worthy sizes and
asserts:

* kernel-path rankings are byte-identical to the per-pair path across
  all four domain ontologies × {CQ, UCQ pools} × {thread, process}
  executors;
* top-k bound pruning returns exactly the exhaustive ranking's prefix
  while skipping exact evaluation for part of the pool;
* the kernel builds the matrix at least 3× faster than the per-pair
  path with the retrieval layer warmed on both sides (measured ~4–7×;
  3× keeps the gate robust on noisy CI machines).

Profiles (``REPRO_BENCH_PROFILE`` env var, see ``conftest.py``):

* ``quick`` — 36 candidates × 48 borders on a 56-applicant database;
* ``full``  — 44 candidates × 56 borders on a 64-applicant database.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.experiments.kernel_exp import run_match_kernel

MIN_SPEEDUP = 3.0

pytestmark = pytest.mark.kernel


@dataclass(frozen=True)
class KernelBenchConfig:
    applicants: int
    candidate_pool: int
    labeled_per_side: int
    rounds: int


PROFILES = {
    "quick": KernelBenchConfig(
        applicants=56, candidate_pool=36, labeled_per_side=24, rounds=3
    ),
    "full": KernelBenchConfig(
        applicants=64, candidate_pool=44, labeled_per_side=28, rounds=4
    ),
}


def test_bench_match_kernel(bench_profile, bench_pool, bench_trajectory):
    config = PROFILES[bench_profile]
    # One workload construction: the fixture builds it, the experiment
    # measures it (run_match_kernel would otherwise rebuild the same
    # database + pool internally).
    workload = bench_pool(
        applicants=config.applicants,
        candidate_pool=config.candidate_pool,
        labeled_per_side=config.labeled_per_side,
    )
    result = run_match_kernel(
        applicants=config.applicants,
        candidate_pool=config.candidate_pool,
        labeled_per_side=config.labeled_per_side,
        rounds=config.rounds,
        workload=workload,
    )
    build_row = result.rows[0]
    identity_row = result.rows[1]
    pruning_row = result.rows[2]

    assert build_row["candidates"] >= 20, "the acceptance gate requires >= 20 candidates"
    assert build_row["borders"] >= 32, "the acceptance gate requires >= 32 borders"
    assert build_row["identical"] is True, (
        "kernel verdict rows diverged from the per-pair path"
    )
    assert identity_row["identical"] is True, (
        "kernel rankings diverged from the per-pair path across "
        "domains × executors"
    )
    assert identity_row["cells"] >= 8, (
        "the identity sweep must cover 4 domains × {thread, process}"
    )
    assert pruning_row["identical"] is True, (
        "top-k bound pruning returned a different top-k than exhaustive search"
    )
    assert pruning_row["rows_built"] < pruning_row["candidates"], (
        "top-k pruning evaluated every candidate — the bound pruned nothing"
    )

    speedup = build_row["speedup"] if build_row["speedup"] is not None else float("inf")
    bench_trajectory(
        "match_kernel",
        speedup=build_row["speedup"],
        candidates=build_row["candidates"],
        borders=build_row["borders"],
    )
    print()
    print(f"match kernel bench [{bench_profile}]")
    print(result.render())
    print(f"  gate: speedup >= {MIN_SPEEDUP} x (warm retrieval on both paths)")
    assert speedup >= MIN_SPEEDUP, (
        f"kernel matrix build only {speedup:.1f}x faster than the per-pair path "
        f"(required >= {MIN_SPEEDUP}x)"
    )
