"""E8 — criteria-weight ablation and bias audit."""

from repro.experiments import run_bias_ablation, run_weight_ablation


def test_bench_weight_ablation(benchmark):
    result = benchmark(run_weight_ablation)
    print()
    print(result.render())
    winners = {(row["alpha"], row["beta"], row["gamma"]): row["winner"] for row in result.rows}
    # Items (1) and (2) of Example 3.8.
    assert winners[(1, 1, 1)] == "q3"
    assert winners[(3, 1, 1)] == "q1"


def test_bench_bias_ablation(benchmark, bench_scale):
    persons = 40 if bench_scale == "full" else 25
    result = benchmark.pedantic(
        run_bias_ablation,
        kwargs=dict(persons=persons, bias_levels=(0.0, 1.0), max_candidates=120),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    by_bias = {row["bias_strength"]: row for row in result.rows}
    assert len(by_bias) == 2
    # Injecting bias must change what the explainer reports.
    assert (
        by_bias[1.0]["mentions_group"]
        or by_bias[1.0]["best_query"] != by_bias[0.0]["best_query"]
    )
