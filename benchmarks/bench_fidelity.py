"""E6 — deferred evaluation: explanation fidelity vs trained classifiers."""

from repro.experiments import run_fidelity


def test_bench_fidelity(benchmark, bench_scale):
    if bench_scale == "full":
        kwargs = dict(size=40, max_candidates=300)
    else:
        kwargs = dict(size=20, classifiers=("decision_tree",), max_candidates=100)
    result = benchmark.pedantic(run_fidelity, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.rows
    for row in result.rows:
        assert row["delta4_exclusion"] >= 0.5
        assert row["z_score"] > 0.4
