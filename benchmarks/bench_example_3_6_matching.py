"""E2 — Example 3.6: J-matching of q1/q2/q3 and CQ-separability."""

from repro.experiments import run_example_3_6


def test_bench_example_3_6_matching(benchmark):
    result = benchmark(run_example_3_6)
    print()
    print(result.render())
    assert all(result.column("matches_paper"))
