"""pytest-benchmark configuration shared by all benches.

Every bench regenerates one experiment of the index in DESIGN.md and
prints its result table, so running ``pytest benchmarks/ --benchmark-only``
re-produces the paper's numbers alongside the timing statistics.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="small",
        choices=("small", "full"),
        help="workload scale for the experiment benches (small keeps CI fast)",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> str:
    return request.config.getoption("--bench-scale")
