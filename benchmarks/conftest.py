"""pytest-benchmark configuration shared by all benches.

Every bench regenerates one experiment of the index in DESIGN.md and
prints its result table, so running ``pytest benchmarks/ --benchmark-only``
re-produces the paper's numbers alongside the timing statistics.
"""

from __future__ import annotations

import os

import pytest

BENCH_PROFILES = ("quick", "full")


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="small",
        choices=("small", "full"),
        help="workload scale for the experiment benches (small keeps CI fast)",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> str:
    return request.config.getoption("--bench-scale")


@pytest.fixture(scope="session")
def bench_pool():
    """Factory for the shared loan-domain scoring workload.

    Returns :func:`repro.experiments.scalability.build_loan_pool` — the
    single definition of "database + labelings + bottom-up candidate
    pool" behind the engine benches (batch explain, bitset criteria,
    service warm, match kernel), so no bench re-implements pool
    construction.  Call it with the profile's sizes::

        workload = bench_pool(applicants=48, candidate_pool=36,
                              labeled_per_side=20)
        workload.database, workload.labelings, workload.pool
    """
    from repro.experiments.scalability import build_loan_pool

    return build_loan_pool


@pytest.fixture(scope="session")
def bench_profile() -> str:
    """Workload profile from the ``REPRO_BENCH_PROFILE`` env var.

    ``quick`` (the default) keeps tier-1 and CI runs fast with small
    workloads; ``full`` sizes the batch-scoring benches up to realistic
    pools.  Example::

        REPRO_BENCH_PROFILE=full pytest benchmarks/bench_batch_explain.py -s
    """
    profile = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    if profile not in BENCH_PROFILES:
        raise pytest.UsageError(
            f"REPRO_BENCH_PROFILE must be one of {BENCH_PROFILES}, got {profile!r}"
        )
    return profile
