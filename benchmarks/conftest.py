"""pytest-benchmark configuration shared by all benches.

Every bench regenerates one experiment of the index in DESIGN.md and
prints its result table, so running ``pytest benchmarks/ --benchmark-only``
re-produces the paper's numbers alongside the timing statistics.
"""

from __future__ import annotations

import datetime
import json
import os
import sys
from pathlib import Path

import pytest

BENCH_PROFILES = ("quick", "full")

TRAJECTORY_DIR = Path(__file__).resolve().parent / "trajectories"


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="small",
        choices=("small", "full"),
        help="workload scale for the experiment benches (small keeps CI fast)",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> str:
    return request.config.getoption("--bench-scale")


@pytest.fixture(scope="session")
def bench_pool():
    """Factory for the shared loan-domain scoring workload.

    Returns :func:`repro.experiments.scalability.build_loan_pool` — the
    single definition of "database + labelings + bottom-up candidate
    pool" behind the engine benches (batch explain, bitset criteria,
    service warm, match kernel), so no bench re-implements pool
    construction.  Call it with the profile's sizes::

        workload = bench_pool(applicants=48, candidate_pool=36,
                              labeled_per_side=20)
        workload.database, workload.labelings, workload.pool
    """
    from repro.experiments.scalability import build_loan_pool

    return build_loan_pool


@pytest.fixture(scope="session")
def bench_profile() -> str:
    """Workload profile from the ``REPRO_BENCH_PROFILE`` env var.

    ``quick`` (the default) keeps tier-1 and CI runs fast with small
    workloads; ``full`` sizes the batch-scoring benches up to realistic
    pools.  Example::

        REPRO_BENCH_PROFILE=full pytest benchmarks/bench_batch_explain.py -s
    """
    profile = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    if profile not in BENCH_PROFILES:
        raise pytest.UsageError(
            f"REPRO_BENCH_PROFILE must be one of {BENCH_PROFILES}, got {profile!r}"
        )
    return profile


def _peak_rss_bytes():
    """Peak resident set size of this process, in bytes (``None`` unknown).

    ``ru_maxrss`` is reported in kilobytes on Linux and in bytes on
    macOS; normalise to bytes so trajectory files compare across
    machines.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if usage <= 0:
        return None
    return usage if sys.platform == "darwin" else usage * 1024


def _current_rss_bytes():
    """Current resident set size via psutil, when available."""
    try:
        import psutil
    except ImportError:
        return None
    try:
        return psutil.Process().memory_info().rss
    except Exception:
        return None


@pytest.fixture(scope="session")
def bench_trajectory(bench_profile):
    """Recorder that persists each gate's outcome across runs.

    ``record("match_kernel", speedup=4.2, candidates=36)`` appends one
    run record — UTC timestamp, gate name, profile, speedup and any
    extra metrics — to ``benchmarks/trajectories/BENCH_match_kernel.json``.
    The files accumulate a per-machine performance trajectory (they are
    git-ignored), so a gate that starts drifting toward its threshold is
    visible *before* it fails.  Every record also samples the process's
    memory high-water mark (``peak_rss_bytes``, via
    ``resource.getrusage``; ``current_rss_bytes`` additionally when
    psutil is installed), so memory regressions leave the same paper
    trail as timing regressions.
    """

    def record(gate: str, speedup=None, **metrics):
        TRAJECTORY_DIR.mkdir(parents=True, exist_ok=True)
        path = TRAJECTORY_DIR / f"BENCH_{gate}.json"
        runs = []
        if path.exists():
            try:
                runs = json.loads(path.read_text())
            except ValueError:
                runs = []  # corrupt file: restart the trajectory
        if not isinstance(runs, list):
            runs = []
        entry = {
            "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "gate": gate,
            "profile": bench_profile,
            "speedup": speedup,
            "peak_rss_bytes": _peak_rss_bytes(),
            "current_rss_bytes": _current_rss_bytes(),
        }
        entry.update(metrics)
        runs.append(entry)
        path.write_text(json.dumps(runs, indent=2) + "\n")
        return path

    return record
