"""E9 — batch explanation scoring: shared evaluation cache vs. per-call path.

The seed engine re-saturated the border ABox on every chase-strategy
``is_certain_answer`` call, so scoring a pool of N candidates against a
labeling with B borders ran the chase N×B times.  The shared
:class:`~repro.engine.cache.EvaluationCache` runs it once per distinct
border, and :meth:`~repro.core.explainer.OntologyExplainer.explain_batch`
scores many labelings in one concurrent pass.

This bench drives the E9 experiment
(:func:`repro.experiments.scalability.run_batch_scoring` — one shared
workload definition, no duplicated harness) at gate-worthy sizes:
≥ 20 candidates × ≥ 2 labelings over the loan domain with the chase
strategy.  It asserts the rankings are byte-identical between the
cache-disabled sequential path (the seed behaviour) and the cached
batch path, and that the speedup is at least 3× (measured speedups are
an order of magnitude higher; 3× keeps the gate robust on noisy CI
machines).

Profiles (``REPRO_BENCH_PROFILE`` env var, see ``conftest.py``):

* ``quick`` — 20 candidates × 2 labelings on a 20-applicant database;
* ``full``  — 40 candidates × 3 labelings on a 60-applicant database.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.scalability import run_batch_scoring

MIN_SPEEDUP = 3.0


@dataclass(frozen=True)
class BatchBenchConfig:
    applicants: int
    candidate_pool: int
    labeled_per_side: int
    labelings: int


PROFILES = {
    "quick": BatchBenchConfig(applicants=20, candidate_pool=20, labeled_per_side=4, labelings=2),
    "full": BatchBenchConfig(applicants=60, candidate_pool=40, labeled_per_side=8, labelings=3),
}


def test_bench_batch_explain(bench_profile, bench_trajectory):
    config = PROFILES[bench_profile]
    result = run_batch_scoring(
        applicants=config.applicants,
        candidate_pool=config.candidate_pool,
        labeled_per_side=config.labeled_per_side,
        labelings=config.labelings,
    )
    row = result.rows[0]

    assert row["candidates"] >= 20, "the acceptance gate requires >= 20 candidates"
    assert row["labelings"] >= 2, "the acceptance gate requires >= 2 labelings"
    assert row["identical_rankings"] is True, "batch ranking diverged from the per-call path"

    speedup = row["speedup"] if row["speedup"] is not None else float("inf")
    bench_trajectory(
        "batch_explain",
        speedup=row["speedup"],
        candidates=row["candidates"],
        labelings=row["labelings"],
    )
    print()
    print(f"batch explain bench [{bench_profile}]")
    print(result.render())
    print(f"  gate: speedup >= {MIN_SPEEDUP} x")
    assert speedup >= MIN_SPEEDUP, (
        f"batch path only {speedup:.1f}x faster than the per-call path "
        f"(required >= {MIN_SPEEDUP}x)"
    )
