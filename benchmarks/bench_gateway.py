"""E15 gate — async gateway serving vs naive-serialized workers.

The serving-architecture gate: the same request stream (a few distinct
sessions, many concurrent duplicate clients, repeated bursts) served by
(a) a stateless worker per request, serially — what a deployment
without the gateway would do — and (b) one
:class:`~repro.gateway.ExplanationGateway` over a warm
:class:`~repro.service.ExplanationService`, coalescing identical
in-flight requests and serving repeats from the warm session ring.

Drives the E15 experiment
(:func:`repro.experiments.gateway_exp.run_gateway_serving` — one shared
workload definition, no duplicated harness) and asserts:

* reports are identical request-for-request between the two paths;
* coalescing actually fired (duplicate concurrent requests shared one
  evaluation) and nothing was shed at the provisioned admission bound;
* a saturated gateway sheds deterministically (503-style) while the
  admitted leader still completes;
* a replica booted from the serving replica's streamed snapshot ranks
  identically to its donor, with verdict rows surviving the trip;
* sustained throughput is ≥3× the naive-serialized baseline (measured
  ~10–18×; 3× keeps the gate robust on noisy CI machines);
* the recorded trajectory entry carries the client-visible p99 latency
  and the memory high-water mark every bench record samples.

Profiles (``REPRO_BENCH_PROFILE`` env var, see ``conftest.py``):

* ``quick`` — 3 sessions × 6 duplicates × 2 rounds, 16 candidates;
* ``full``  — 4 sessions × 8 duplicates × 2 rounds, 24 candidates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.experiments.gateway_exp import run_gateway_serving

MIN_SPEEDUP = 3.0


@dataclass(frozen=True)
class GatewayBenchConfig:
    applicants: int
    candidate_pool: int
    labeled_per_side: int
    labelings: int
    duplicates: int
    rounds: int


PROFILES = {
    "quick": GatewayBenchConfig(
        applicants=30,
        candidate_pool=16,
        labeled_per_side=8,
        labelings=3,
        duplicates=6,
        rounds=2,
    ),
    "full": GatewayBenchConfig(
        applicants=40,
        candidate_pool=24,
        labeled_per_side=12,
        labelings=4,
        duplicates=8,
        rounds=2,
    ),
}


def test_bench_gateway(bench_profile, bench_trajectory):
    config = PROFILES[bench_profile]
    result = run_gateway_serving(
        applicants=config.applicants,
        candidate_pool=config.candidate_pool,
        labeled_per_side=config.labeled_per_side,
        labelings=config.labelings,
        duplicates=config.duplicates,
        rounds=config.rounds,
    )
    serving_row = result.rows[0]
    shed_row = result.rows[1]
    shipping_row = result.rows[2]

    assert serving_row["identical_rankings"] is True, (
        "gateway-served rankings diverged from the naive-serialized baseline"
    )
    assert serving_row["coalesced_hits"] > 0, (
        "no requests coalesced — duplicate concurrent traffic never shared work"
    )
    assert serving_row["shed_requests"] == 0, (
        "the provisioned gateway shed requests during the serving measurement"
    )
    assert serving_row["cold_builds"] == config.labelings, (
        "each distinct session must be evaluated exactly once (coalesced + warm)"
    )
    assert serving_row["p99_seconds"] is not None, (
        "the gateway recorded no latency samples"
    )

    assert shed_row["deterministic_shed"] is True, (
        "a saturated gateway must shed with GatewayOverloaded"
    )
    assert shed_row["leader_completed"] is True, (
        "shedding corrupted the admitted leader evaluation"
    )

    assert shipping_row["warm_boot"] is True, (
        "the replica failed to boot warm from the donor's streamed snapshot"
    )
    assert shipping_row["identical_rankings"] is True, (
        "a snapshot-shipped replica ranked differently from its donor"
    )
    assert shipping_row["fingerprints_match"] is True, (
        "donor and replica disagree on the shipped content fingerprint"
    )
    assert shipping_row["loaded_verdict_rows"] > 0, (
        "no verdict rows survived the shipping round trip"
    )

    speedup = serving_row["speedup"] if serving_row["speedup"] is not None else float("inf")
    path = bench_trajectory(
        "gateway",
        speedup=serving_row["speedup"],
        requests=serving_row["requests"],
        gateway_rps=serving_row["gateway_rps"],
        naive_rps=serving_row["naive_rps"],
        coalesced_hits=serving_row["coalesced_hits"],
        p50_seconds=serving_row["p50_seconds"],
        p99_seconds=serving_row["p99_seconds"],
    )
    recorded = json.loads(path.read_text())[-1]
    assert "peak_rss_bytes" in recorded, (
        "trajectory records must sample the memory high-water mark"
    )
    assert recorded["p99_seconds"] is not None, (
        "the trajectory record must carry the client-visible p99 latency"
    )
    print()
    print(f"gateway bench [{bench_profile}]")
    print(result.render())
    print(f"  gate: speedup >= {MIN_SPEEDUP} x (warm-coalesced vs naive-serialized)")
    assert speedup >= MIN_SPEEDUP, (
        f"gateway serving only {speedup:.1f}x faster than naive-serialized "
        f"workers (required >= {MIN_SPEEDUP}x)"
    )
