"""E5 — Figure 1 pipeline: certain answers, rewriting vs chase."""

from repro.experiments import run_certain_answers


def test_bench_certain_answers(benchmark, bench_scale):
    sizes = (50, 100, 200) if bench_scale == "full" else (40, 80)
    result = benchmark(run_certain_answers, sizes=sizes)
    print()
    print(result.render())
    assert all(result.column("strategies_agree"))
    q3_rows = [row for row in result.rows if row["query"] == "q3"]
    assert all(row["ontology_gain"] > 0 for row in q3_rows)
