"""E14 — database drift: incremental delta propagation vs cold rebuilds.

A streaming-updates deployment sees the *source database* change
between requests.  The cold answer rebuilds the whole substrate
(borders, retrieved ABoxes, saturations, verdict rows) against the
post-update database on every request; the incremental path
(:meth:`~repro.service.ExplanationService.apply_delta`) mutates the
database in place, invalidates only the state the delta can touch and
re-evaluates only the verdict columns whose border content actually
changed.

This bench drives the E14 experiment
(:func:`repro.experiments.database_drift_exp.run_database_drift` — one
shared workload definition, no duplicated harness) and asserts:

* rankings are identical step-for-step between the incremental and
  cold paths, after each delta+inverse round trip, and with the
  ``engine.delta.enabled`` toggle off (legacy full reset per delta);
* the deltas actually exercised the incremental machinery (borders
  touched, session matrices updated, zero cold resets on the
  incremental row — and ``steps`` cold resets on the toggle-off row);
* absorbing a stream of localized updates incrementally is at least 3×
  faster than per-step cold rebuilds (measured ~6–8×; 3× keeps the
  gate robust on noisy CI machines);
* the recorded trajectory entry carries the memory high-water mark
  (``peak_rss_bytes``) every bench record now samples.

Profiles (``REPRO_BENCH_PROFILE`` env var, see ``conftest.py``):

* ``quick`` — 16 candidates × 4 deltas of 2 facts, 16 borders;
* ``full``  — 24 candidates × 6 deltas of 1 fact, 24 borders.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.experiments.database_drift_exp import run_database_drift

MIN_SPEEDUP = 3.0


@dataclass(frozen=True)
class DriftBenchConfig:
    applicants: int
    candidate_pool: int
    labeled_per_side: int
    steps: int
    facts_per_step: int


PROFILES = {
    "quick": DriftBenchConfig(
        applicants=30, candidate_pool=16, labeled_per_side=8, steps=4, facts_per_step=2
    ),
    "full": DriftBenchConfig(
        applicants=40, candidate_pool=24, labeled_per_side=12, steps=6, facts_per_step=1
    ),
}


def test_bench_database_drift(bench_profile, bench_trajectory):
    config = PROFILES[bench_profile]
    result = run_database_drift(
        applicants=config.applicants,
        candidate_pool=config.candidate_pool,
        labeled_per_side=config.labeled_per_side,
        steps=config.steps,
        facts_per_step=config.facts_per_step,
    )
    incremental_row = result.rows[0]
    identity_row = result.rows[1]
    toggle_row = result.rows[2]

    assert incremental_row["identical_rankings"] is True, (
        "incremental post-delta rankings diverged from cold rebuilds"
    )
    assert identity_row["identical_rankings"] is True, (
        "a delta + inverse round trip did not restore the original ranking"
    )
    assert toggle_row["identical_rankings"] is True, (
        "the legacy (toggle-off) path diverged from cold rebuilds"
    )
    assert incremental_row["borders_touched"] > 0, (
        "no borders touched — the delta stream never exercised invalidation"
    )
    assert incremental_row["sessions_updated"] >= 1, (
        "no session matrix was incrementally updated"
    )
    assert incremental_row["cold_resets"] == 0, (
        "the incremental row fell back to legacy full resets"
    )
    assert toggle_row["cold_resets"] == config.steps, (
        "toggle-off must reset cold once per delta"
    )

    speedup = (
        incremental_row["speedup"]
        if incremental_row["speedup"] is not None
        else float("inf")
    )
    path = bench_trajectory(
        "database_drift",
        speedup=incremental_row["speedup"],
        steps=incremental_row["steps"],
        borders_touched=incremental_row["borders_touched"],
        sessions_updated=incremental_row["sessions_updated"],
    )
    recorded = json.loads(path.read_text())[-1]
    assert "peak_rss_bytes" in recorded, (
        "trajectory records must sample the memory high-water mark"
    )
    print()
    print(f"database drift bench [{bench_profile}]")
    print(result.render())
    print(f"  gate: speedup >= {MIN_SPEEDUP} x (incremental delta vs cold rebuild)")
    assert speedup >= MIN_SPEEDUP, (
        f"incremental drift serving only {speedup:.1f}x faster than per-step cold "
        f"rebuilds (required >= {MIN_SPEEDUP}x)"
    )
