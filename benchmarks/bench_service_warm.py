"""E11 — long-lived explanation service: warm drift serving vs cold rebuilds.

A stateless deployment rebuilds the whole evaluation substrate (border
ABoxes, J-match verdicts, verdict rows) on every request; the resident
:class:`~repro.service.ExplanationService` builds it once, then absorbs
labeling drift by permuting verdict-bitset columns
(:meth:`~repro.engine.verdicts.VerdictMatrix.apply_drift`) and serving
the rest from the bounded shared cache.

This bench drives the E11 experiment
(:func:`repro.experiments.service_exp.run_service_warm` — one shared
workload definition, no duplicated harness) at gate-worthy sizes and
asserts:

* reports are identical request-for-request between the cold and warm
  paths, after a snapshot restart, and under cache limits tight enough
  to thrash (evictions must actually occur on that row);
* the resident service — *with eviction enabled* (bounded
  :class:`~repro.engine.cache.CacheLimits`) — is at least 3× faster
  than per-request rebuilds on the drift workload (measured ~4–8×; 3×
  keeps the gate robust on noisy CI machines).

Profiles (``REPRO_BENCH_PROFILE`` env var, see ``conftest.py``):

* ``quick`` — 20 candidates × 5 drifting requests, 20 borders;
* ``full``  — 28 candidates × 8 drifting requests, 28 borders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.service_exp import run_service_warm

MIN_SPEEDUP = 3.0


@dataclass(frozen=True)
class ServiceBenchConfig:
    applicants: int
    candidate_pool: int
    labeled_per_side: int
    steps: int
    drift_per_step: int


PROFILES = {
    "quick": ServiceBenchConfig(
        applicants=34, candidate_pool=20, labeled_per_side=10, steps=5, drift_per_step=1
    ),
    "full": ServiceBenchConfig(
        applicants=44, candidate_pool=28, labeled_per_side=14, steps=8, drift_per_step=2
    ),
}


def test_bench_service_warm(bench_profile, bench_trajectory):
    config = PROFILES[bench_profile]
    result = run_service_warm(
        applicants=config.applicants,
        candidate_pool=config.candidate_pool,
        labeled_per_side=config.labeled_per_side,
        steps=config.steps,
        drift_per_step=config.drift_per_step,
    )
    warm_row = result.rows[0]
    persistence_row = result.rows[1]
    eviction_row = result.rows[2]

    assert warm_row["requests"] >= 5, "the drift workload needs >= 5 requests"
    assert warm_row["drift_updates"] >= warm_row["requests"] - 2, (
        "the warm service should absorb almost every request incrementally"
    )
    assert warm_row["identical_rankings"] is True, (
        "warm-service rankings diverged from per-request cold rebuilds"
    )
    assert persistence_row["identical_rankings"] is True, (
        "rankings diverged after a save()/load() snapshot restart"
    )
    assert eviction_row["identical_rankings"] is True, (
        "rankings diverged under tight cache limits"
    )
    assert eviction_row["evictions"] > 0, (
        "the tight-limits row never evicted — the eviction path went untested"
    )

    speedup = warm_row["speedup"] if warm_row["speedup"] is not None else float("inf")
    bench_trajectory(
        "service_warm",
        speedup=warm_row["speedup"],
        requests=warm_row["requests"],
        drift_updates=warm_row["drift_updates"],
    )
    print()
    print(f"service warm bench [{bench_profile}]")
    print(result.render())
    print(f"  gate: speedup >= {MIN_SPEEDUP} x (eviction enabled on the warm service)")
    assert speedup >= MIN_SPEEDUP, (
        f"warm drift serving only {speedup:.1f}x faster than per-request rebuilds "
        f"(required >= {MIN_SPEEDUP}x)"
    )
