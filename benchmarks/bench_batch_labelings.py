"""E13 — bit-sliced multi-labeling batching vs per-labeling kernel passes.

PR 5's pool-level kernel already answers one labeling's whole verdict
matrix in a single set-at-a-time pass.  A monitoring fleet asks the
same question for *many* overlapping labelings (one per classifier
snapshot, cohort, or drift step) — and the per-labeling loop re-matches
the shared borders once per layout.  The batch kernel
(:mod:`repro.engine.batch_kernel`) merges the layouts' borders into one
union index, J-matches each candidate once, and slices every layout's
rows out of the global bit rows with numpy popcounts.

This bench drives the E13 experiment
(:func:`repro.experiments.batch_kernel_exp.run_batch_labelings` — one
shared workload definition, the pool comes from the ``bench_pool``
fixture's builder) at gate-worthy sizes and asserts:

* one ``build_batch`` dispatch yields rows byte-identical to the
  per-labeling PR-5 loop, at least 3× faster (measured ~3.7–4.4×;
  retrieval warmed on both sides);
* ``explain_batch`` reports stay byte-identical to per-labeling legacy
  reports across all four domain ontologies × {thread, process};
* generator-level provenance pruning discards a non-zero number of
  refinement-lattice conjunctions before materialisation while leaving
  every domain's top-k ranking unchanged.

Profiles (``REPRO_BENCH_PROFILE`` env var, see ``conftest.py``):

* ``quick`` — 36 candidates × 6 labelings on a 48-applicant database;
* ``full``  — 36 candidates × 8 labelings on a 56-applicant database.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.engine.batch_kernel import batch_available
from repro.experiments.batch_kernel_exp import run_batch_labelings

MIN_SPEEDUP = 3.0

pytestmark = pytest.mark.kernel


@dataclass(frozen=True)
class BatchBenchConfig:
    applicants: int
    candidate_pool: int
    labeled_per_side: int
    labelings: int
    rounds: int


PROFILES = {
    "quick": BatchBenchConfig(
        applicants=48, candidate_pool=36, labeled_per_side=14, labelings=6, rounds=3
    ),
    "full": BatchBenchConfig(
        applicants=56, candidate_pool=36, labeled_per_side=16, labelings=8, rounds=3
    ),
}


def test_bench_batch_labelings(bench_profile, bench_pool, bench_trajectory):
    if not batch_available():
        pytest.skip("numpy bit-slicing unavailable; the batch gate needs it")
    config = PROFILES[bench_profile]
    workload = bench_pool(
        applicants=config.applicants,
        candidate_pool=config.candidate_pool,
        labeled_per_side=config.labeled_per_side,
        labelings=config.labelings,
    )
    result = run_batch_labelings(
        applicants=config.applicants,
        candidate_pool=config.candidate_pool,
        labeled_per_side=config.labeled_per_side,
        labelings=config.labelings,
        rounds=config.rounds,
        workload=workload,
    )
    dispatch_row = result.rows[0]
    identity_row = result.rows[1]
    pruning_row = result.rows[2]

    assert dispatch_row["candidates"] >= 20, "the acceptance gate requires >= 20 candidates"
    assert dispatch_row["labelings"] >= 4, "the acceptance gate requires >= 4 labelings"
    assert dispatch_row["identical"] is True, (
        "bit-sliced batch rows diverged from the per-labeling kernel loop"
    )
    assert identity_row["identical"] is True, (
        "batched explain reports diverged from the per-labeling path across "
        "domains × executors"
    )
    assert identity_row["cells"] >= 16, (
        "the identity sweep must cover 4 domains × {thread, process} × 2 labelings"
    )
    assert pruning_row["identical"] is True, (
        "generator pruning changed a domain's top-k ranking"
    )
    assert pruning_row["pruned"] > 0, (
        "the provenance pruner discarded nothing — the generator-level "
        "pruning path went unexercised"
    )
    assert pruning_row["pruned"] < pruning_row["checked"], (
        "the pruner discarded every checked body — the bound is vacuous"
    )

    speedup = dispatch_row["speedup"] if dispatch_row["speedup"] is not None else float("inf")
    bench_trajectory(
        "batch_labelings",
        speedup=dispatch_row["speedup"],
        candidates=dispatch_row["candidates"],
        labelings=dispatch_row["labelings"],
        pruned=pruning_row["pruned"],
        checked=pruning_row["checked"],
    )
    print()
    print(f"batch labelings bench [{bench_profile}]")
    print(result.render())
    print(f"  gate: speedup >= {MIN_SPEEDUP} x (one dispatch vs per-labeling kernel loop)")
    assert speedup >= MIN_SPEEDUP, (
        f"batch dispatch only {speedup:.1f}x faster than the per-labeling loop "
        f"(required >= {MIN_SPEEDUP}x)"
    )
