"""E17 — whole-rewriting SQL pushdown + memory-mapped batch bit matrices.

PR 10 claims the certain-answer phase itself — not just fact storage —
can be pushed into SQLite: the entire rewritten UCQ compiles to one
``UNION`` of per-disjunct self-join SELECTs (the ABox restriction a
pushed-down constant filter), so one sqlite3 execution replaces
``O(|disjuncts| × |border facts|)`` Python evaluation.  And the batch
kernel's global bit matrix can live in a ``numpy.memmap`` temp file
under ``engine.kernel.spill`` without moving a verdict bit.  This bench
drives the E17 experiment
(:func:`repro.experiments.pushdown_exp.run_pushdown_rewriting` — one
shared workload definition, no duplicated harness) and asserts:

* end-to-end served rankings are byte-identical across the memory
  backend, SQLite with pushdown, and SQLite with pushdown disabled —
  with verdicts and the kernel off, so serving routes through
  ``is_certain_answer`` per (query, tuple, border), the regime the
  pushdown accelerates; the sqlite phase must show pushdown traffic
  with zero fallbacks and the non-SQL phases must fall back cleanly;
* at a workload ``scale >= 10``× the base size, a single pass over
  distinct (query, tuple) work items runs ``>= 3``× faster with
  ``engine.pushdown.enabled`` than the legacy in-memory evaluation
  (per-mode one-time ABox setup timed separately), with answer sets
  and membership verdicts identical item for item;
* the memmap matrix path (``pack_rows`` → ``gather_packed_spilled`` →
  ``masked_popcounts``) reproduces the in-RAM ints and δ-counts bit
  for bit with a strictly lower Python/numpy heap peak
  (:mod:`tracemalloc` — memmap pages are untracked, which is the
  point), and the real batch-kernel dispatch is bit-identical with
  spill on vs off;
* the recorded trajectory entry carries the memory high-water mark
  (``peak_rss_bytes``) every bench record samples.

Profiles (``REPRO_BENCH_PROFILE`` env var, see ``conftest.py``):

* ``quick`` — 24 base applicants scaled 60×, 16 candidates;
* ``full``  — 24 base applicants scaled 80×, 20 candidates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.experiments.pushdown_exp import run_pushdown_rewriting

pytestmark = pytest.mark.backend


@dataclass(frozen=True)
class PushdownBenchConfig:
    base_applicants: int
    scale: int
    candidate_pool: int
    labeled_per_side: int
    repeats: int
    matrix_rows: int
    matrix_width: int


PROFILES = {
    "quick": PushdownBenchConfig(
        base_applicants=24,
        scale=60,
        candidate_pool=16,
        labeled_per_side=8,
        repeats=3,
        matrix_rows=1024,
        matrix_width=384,
    ),
    "full": PushdownBenchConfig(
        base_applicants=24,
        scale=80,
        candidate_pool=20,
        labeled_per_side=8,
        repeats=3,
        matrix_rows=4096,
        matrix_width=512,
    ),
}

MIN_SCALE = 10
MIN_SPEEDUP = 3.0


def test_bench_pushdown_rewriting(bench_profile, bench_trajectory):
    config = PROFILES[bench_profile]
    result = run_pushdown_rewriting(
        base_applicants=config.base_applicants,
        scale=config.scale,
        candidate_pool=config.candidate_pool,
        labeled_per_side=config.labeled_per_side,
        repeats=config.repeats,
        matrix_rows=config.matrix_rows,
        matrix_width=config.matrix_width,
    )
    identity_row = result.rows[0]
    speedup_row = result.rows[1]
    matrix_row = result.rows[2]
    batch_row = result.rows[3]

    assert identity_row["identical_rankings"] is True, (
        "served rankings diverged across memory / sqlite / sqlite-without-pushdown"
    )
    assert identity_row["pushdown_served"] is True, (
        "the sqlite phase did not serve through the pushdown "
        f"(checks={identity_row['sqlite_pushdown_checks']}, "
        f"fallbacks={identity_row['sqlite_fallbacks']})"
    )
    assert identity_row["fallback_served"] is True, (
        "the non-SQL phases should fall back on every check "
        "(the toggle is inert off the SQL backend, never wrong)"
    )

    assert speedup_row["scale"] >= MIN_SCALE, (
        f"workload only {speedup_row['scale']}x the base size "
        f"(the pushdown claim needs >= {MIN_SCALE}x)"
    )
    assert speedup_row["identical_answers"] is True, (
        "pushdown answer sets diverged from the legacy in-memory evaluation"
    )
    assert speedup_row["identical_verdicts"] is True, (
        "pushdown membership verdicts diverged from legacy contains_tuple"
    )

    assert matrix_row["identical_ints"] is True, (
        "spilled gather produced different packed rows than the in-RAM path"
    )
    assert matrix_row["identical_counts"] is True, (
        "spilled masked popcounts diverged from the in-RAM path"
    )
    assert batch_row.get("identical_rows") is True, (
        "batch-kernel dispatch rows diverged between spill off and on"
    )

    path = bench_trajectory(
        "pushdown_rewriting",
        scale=speedup_row["scale"],
        scaled_facts=speedup_row["scaled_facts"],
        legacy_seconds=speedup_row["legacy_seconds"],
        pushdown_seconds=speedup_row["pushdown_seconds"],
        speedup=speedup_row["speedup"],
        matrix_ram_peak_bytes=matrix_row["ram_peak_bytes"],
        matrix_spill_peak_bytes=matrix_row["spill_peak_bytes"],
    )
    recorded = json.loads(path.read_text())[-1]
    assert "peak_rss_bytes" in recorded, (
        "trajectory records must sample the memory high-water mark"
    )
    print()
    print(f"pushdown-rewriting bench [{bench_profile}]")
    print(result.render())
    print(
        f"  gates: certain-answer speedup >= {MIN_SPEEDUP}x at >= {MIN_SCALE}x scale; "
        "spilled matrix heap peak < in-RAM peak"
    )
    assert speedup_row["speedup"] >= MIN_SPEEDUP, (
        f"pushdown only {speedup_row['speedup']}x faster "
        f"({speedup_row['legacy_seconds']}s legacy vs "
        f"{speedup_row['pushdown_seconds']}s pushed down; "
        f"gate is >= {MIN_SPEEDUP}x)"
    )
    assert matrix_row["spill_peak_bytes"] < matrix_row["ram_peak_bytes"], (
        f"memmap path peaked at {matrix_row['spill_peak_bytes']} bytes on the "
        f"Python heap, not below the in-RAM path's "
        f"{matrix_row['ram_peak_bytes']} — the matrix is not off-heap"
    )
