"""Setuptools shim.

The environment ships an older setuptools without the ``wheel`` package,
so PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.
This setup.py enables the legacy editable install path::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
