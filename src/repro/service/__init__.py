"""``repro.service`` — long-lived explanation serving on a warm substrate.

The paper's best-describe search is a one-shot batch computation; this
package turns it into a *resident service*: one
:class:`~repro.service.explanation_service.ExplanationService` owns one
long-lived OBDM system and its shared
:class:`~repro.engine.cache.EvaluationCache`, and answers repeated
``explain(labeling, …)`` requests against the warm memos instead of
rebuilding them per call.  Three lifecycle mechanisms (detailed in
:mod:`repro.service.explanation_service`) keep that sound and bounded:
per-layer LRU eviction with eviction-aware invalidation of warm verdict
matrices, snapshot persistence (``save()``/``load()``) so a restarted
service starts warm, and incremental verdict maintenance
(:meth:`~repro.engine.verdicts.VerdictMatrix.apply_drift`) that absorbs
labeling drift by permuting bitset columns instead of recomputing
J-matches.
"""

from __future__ import annotations

from .explanation_service import ExplanationService, ServiceStats

__all__ = ["ExplanationService", "ServiceStats"]
