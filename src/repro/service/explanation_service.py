"""The long-lived explanation service: warm cache, bounded memory, drift.

Lifecycle and invalidation model
--------------------------------

A service instance owns exactly one :class:`~repro.obdm.system.OBDMSystem`
and, through its specification, one shared
:class:`~repro.engine.cache.EvaluationCache`.  Every request flows
through the same warm substrate, and three mechanisms keep that sound
over an unbounded request stream:

1. **Bounded memo layers.**  The cache's expensive layers (chase
   saturations, retrieved border ABoxes, J-match verdicts, verdict-row
   layouts) are LRU-bounded via
   :class:`~repro.engine.cache.CacheLimits`; evictions are counted in
   ``cache.stats.evictions`` and occupancy is visible through
   :meth:`ExplanationService.size_report`.  Because every key is
   content-addressed, eviction can only cost recomputation, never
   correctness.

2. **Warm sessions + eviction-aware invalidation.**  Per (labeling
   signature, radius) the service keeps a *session*: the labeling and
   its built :class:`~repro.engine.verdicts.VerdictMatrix`.  Sessions
   live in their own LRU ring (``max_sessions``).  Before a session is
   reused its matrix is probed with
   :meth:`~repro.engine.verdicts.VerdictMatrix.is_live`: if the cache
   has evicted the matrix's column layout, the matrix no longer feeds
   the shared row store and the session is rebuilt instead of reused —
   eviction invalidates dependent matrix reuse, it never yields stale
   or disconnected serving.

3. **Incremental verdict maintenance.**  When a request carries a
   labeling with the *same name* as a warm session but different
   content — the classic production situation of a classifier whose
   predictions drift between retrainings — the service computes the
   :class:`~repro.core.labeling.LabelingDrift` and applies it to the
   warm matrix (:meth:`VerdictMatrix.apply_drift`): surviving tuples
   keep their verdict bits by permutation, only genuinely new tuples
   cost J-match evaluations.  The drifted matrix is byte-identical to a
   cold rebuild (differential-pinned in
   ``tests/engine/test_cache_lifecycle.py``).

4. **Database drift.**  :meth:`ExplanationService.apply_delta` takes a
   fact-level :class:`~repro.obdm.database.DatabaseDelta`, mutates the
   source database in place and propagates the change incrementally:
   the border computer reports which cached borders the delta can touch
   (:meth:`~repro.core.border.BorderComputer.apply_delta`), the shared
   cache drops exactly the entries built over those borders
   (:meth:`~repro.engine.cache.EvaluationCache.invalidate_borders`) and
   every live session's matrix re-evaluates only the columns whose
   border content actually changed
   (:meth:`~repro.engine.verdicts.VerdictMatrix.apply_database_delta`).
   Untouched sessions, borders and memo entries stay warm.  With
   ``specification.engine.delta.enabled = False`` the same call falls
   back to the legacy cold path — full cache clear plus session reset —
   which the differential suite pins as behaviour-identical.

Persistence: :meth:`ExplanationService.save` snapshots the cache's
content-addressed memo state to disk and
:meth:`ExplanationService.load` merges it back, so a restarted service
answers its first requests at warm-cache speed.  Live entries win over
persisted ones and merged entries respect the configured limits.
Snapshots are stamped with the specification fingerprint *and* the
database content fingerprint, so a service whose database has drifted
since the snapshot refuses to load it (stale border/verdict memos would
otherwise silently survive the drift).

Typical use::

    from repro.service import ExplanationService
    from repro.ontologies.university import build_university_system

    service = ExplanationService(build_university_system(), radius=1)
    report = service.explain(labeling)            # cold: builds the matrix
    report = service.explain(labeling)            # warm: popcounts only
    report = service.explain(drifted_labeling)    # drift: permutes columns
    service.save("/tmp/cache.snapshot")           # survive a restart
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.best_describe import BestDescriptionSearch
from ..core.border import BorderComputer
from ..core.candidates import CandidateConfig
from ..core.criteria import DEFAULT_REGISTRY, DELTA_1, DELTA_4, DELTA_5, Criterion, CriteriaRegistry
from ..core.explainer import execute_search
from ..core.labeling import Labeling, LabelingDrift
from ..core.matching import MatchEvaluator
from ..core.refinement import RefinementConfig
from ..core.report import ExplanationReport
from ..core.scoring import ScoringExpression, example_3_8_expression
from ..errors import ExplanationError
from ..queries.parser import parse_query
from ..obdm.certain_answers import OntologyQuery
from ..obdm.database import DatabaseDelta
from ..obdm.system import OBDMSystem
from ..engine.cache import CacheLimits, CacheStats, LRUStore


class ServiceStats(CacheStats):
    """Request-path counters: how each request's matrix was obtained.

    Inherits the locked-counter machinery (``count``/``as_dict``/
    ``merge``/``delta_since``, pickling) from
    :class:`~repro.engine.cache.CacheStats`; only the counter set
    differs.  The ``delta_*`` counters account the database-drift path:
    deltas applied, borders they touched, sessions whose matrix was
    incrementally updated, and legacy full resets (toggle off).
    """

    _COUNTERS = (
        "requests",
        "warm_hits",
        "drift_updates",
        "cold_builds",
        "database_deltas",
        "delta_borders_touched",
        "delta_sessions_updated",
        "delta_cold_resets",
    )


class _Session:
    """One warm (labeling, radius) serving state: the labeling + its matrix.

    ``matrix`` is ``None`` when the bitset path is disabled
    (``specification.engine.verdicts.enabled = False``); the session then
    only pins the labeling identity, and warmth comes from the shared
    memo layers alone.
    """

    __slots__ = ("labeling", "radius", "matrix")

    def __init__(self, labeling: Labeling, radius: int, matrix):
        self.labeling = labeling
        self.radius = radius
        self.matrix = matrix

    def is_live(self) -> bool:
        return self.matrix is None or self.matrix.is_live()


class ExplanationService:
    """Serves repeated ``explain`` requests against one warm OBDM system.

    Parameters
    ----------
    system:
        The long-lived ``Σ = <J, D>``.  The service shares its
        specification's evaluation cache with every other consumer of
        the same specification.
    radius:
        Default border radius for requests that do not override it.
    criteria / expression / registry:
        Default (Δ, F, Z) configuration; each request may override them
        without invalidating warm state (verdicts are criteria-free).
    cache_limits:
        Optional :class:`~repro.engine.cache.CacheLimits` applied to the
        shared cache — the memory bound of the resident service.
    max_sessions:
        How many warm (labeling, radius) sessions to keep; the least
        recently served session is dropped first (its memo entries stay
        in the shared cache until *their* layers evict them).
    """

    def __init__(
        self,
        system: OBDMSystem,
        radius: int = 1,
        criteria: Sequence[Union[str, Criterion]] = (DELTA_1, DELTA_4, DELTA_5),
        expression: Optional[ScoringExpression] = None,
        registry: CriteriaRegistry = DEFAULT_REGISTRY,
        cache_limits: Optional[CacheLimits] = None,
        max_sessions: int = 32,
    ):
        if max_sessions < 1:
            raise ExplanationError(f"max_sessions must be >= 1, got {max_sessions}")
        self.system = system
        self.radius = radius
        self.criteria = criteria
        self.expression = expression or example_3_8_expression()
        self.registry = registry
        self.stats = ServiceStats()
        # The border cache shares the border-ABox layer's bound: the two
        # grow in lockstep (one retrieved ABox per distinct border), and a
        # long-lived computer must not pin every border ever served.  The
        # evaluators' ABox lookups delegate to the shared (LRU-bounded)
        # cache layer whenever it is enabled, so they add no unbounded
        # state of their own.
        self._border_computer = BorderComputer(
            system.database,
            capacity=cache_limits.border_aboxes if cache_limits is not None else None,
            stats=self.cache.stats,
        )
        self._evaluators: Dict[int, MatchEvaluator] = {}
        # Evaluator creation is a check-then-set on a plain dict; under
        # concurrent explain() callers (the gateway's normal traffic
        # shape) two threads could each build an evaluator for the same
        # radius and race the insert.  A dedicated lock keeps one
        # evaluator per radius without re-entering the session guard
        # (which _resolve_session holds while calling evaluator()).
        self._evaluator_guard = threading.Lock()
        # Session resolution is a non-atomic lookup → diff → drift → put
        # sequence; one lock makes it atomic so concurrent requests can
        # never race two drifts from the same predecessor or interleave
        # the name-index updates.  Scoring itself runs outside the lock
        # (the memo layers are individually locked and idempotent).
        self._session_guard = threading.Lock()
        self._sessions = LRUStore(capacity=max_sessions)
        # (labeling name, radius) → session key of the labeling last served
        # under that name: the hook that turns a renamed-content request
        # into an incremental drift update instead of a cold rebuild.
        # Bounded like the session ring — only names whose session may
        # still be resident are worth remembering, so the same capacity
        # keeps the index from growing with every distinct name ever seen.
        self._name_index = LRUStore(capacity=max_sessions)
        if cache_limits is not None:
            self.cache.configure_limits(cache_limits)

    # -- shared substrate --------------------------------------------------

    @property
    def cache(self):
        """The specification's shared evaluation cache."""
        return self.system.specification.engine.cache

    @property
    def cache_stats(self):
        return self.cache.stats

    @property
    def backend_name(self) -> str:
        """The storage backend kind the source database lives on.

        ``"memory"`` for the seed's dict-indexed store, ``"sqlite"``
        for the out-of-core SQL-pushdown backend
        (:mod:`repro.obdm.backend`).  Serving is backend-oblivious —
        borders arrive through indexed point lookups and the retrieved
        ABox through streaming mapping application either way — but
        operators reading a :meth:`size_report` want to know whether
        fact storage is on or off the Python heap.
        """
        return self.system.database.backend_name

    def size_report(self) -> Dict[str, object]:
        """Occupancy of the cache layers plus the service's own stores.

        ``borders`` is the service's border-computer cache — bounded by
        the same ``border_aboxes`` limit and evicting into the same
        ``evictions`` counter, so operators can reconcile every eviction
        against a reported layer.  ``backend`` names the database's
        storage backend (the one non-count entry).  The three
        ``pushdown_*`` counters surface whole-rewriting SQL pushdown
        traffic: a workload whose fallbacks dominate its hits + misses
        is quietly running the slow per-disjunct path (wrong backend, or
        queries the compiler rejects) and should be looked at.
        """
        report = self.cache.size_report()
        report["sessions"] = len(self._sessions)
        report["borders"] = len(self._border_computer._cache)
        report["backend"] = self.backend_name
        stats = self.cache_stats
        report["pushdown_hits"] = stats.pushdown_hits
        report["pushdown_misses"] = stats.pushdown_misses
        report["pushdown_fallbacks"] = stats.pushdown_fallbacks
        return report

    def evaluator(self, radius: Optional[int] = None) -> MatchEvaluator:
        """The shared J-match evaluator of one radius (created once).

        Thread-safe: concurrent callers of the same radius always
        receive the *same* instance (double-checked under
        ``_evaluator_guard``), so warm sessions never end up split
        across racing evaluator identities.
        """
        radius = self.radius if radius is None else radius
        evaluator = self._evaluators.get(radius)
        if evaluator is None:
            with self._evaluator_guard:
                evaluator = self._evaluators.get(radius)
                if evaluator is None:
                    evaluator = MatchEvaluator(self.system, radius, self._border_computer)
                    self._evaluators[radius] = evaluator
        return evaluator

    # -- persistence -------------------------------------------------------

    def _snapshot_fingerprint(self) -> str:
        """Content hash the memo values depend on: specification + data.

        The engine's fingerprint covers the ontology and mapping; the
        database fingerprint covers the facts every border, saturation
        and verdict was computed over.  Stamping both keeps snapshots
        honest under database drift: a delta applied between save and
        load changes the database fingerprint, so the stale snapshot is
        refused instead of silently serving pre-delta verdicts.
        """
        engine = self.system.specification.engine
        return f"{engine.cache_fingerprint()}:{self.system.database.fingerprint()}"

    def content_fingerprint(self) -> str:
        """Public identity of this service's servable content.

        The hash snapshots are stamped with (specification + database
        fingerprints); the gateway's
        :class:`~repro.gateway.registry.ServiceRegistry` keys live
        instances by it, and snapshot shipping advertises it so a
        receiving replica can check compatibility before loading.
        """
        return self._snapshot_fingerprint()

    def save(self, path) -> Dict[str, int]:
        """Snapshot the shared cache so a restarted service starts warm.

        The snapshot is stamped with the specification's content
        fingerprint and the database's fact-level fingerprint, so
        :meth:`load` on a service over a different (or since-updated)
        specification *or database* refuses it instead of silently
        serving stale memo values.
        """
        return self.cache.save(path, fingerprint=self._snapshot_fingerprint())

    def load(self, path) -> Dict[str, int]:
        """Merge a saved snapshot into the shared cache (live entries win).

        Raises ``ValueError`` for snapshots saved against a different
        specification or a database whose content has drifted since the
        snapshot was taken.
        """
        return self.cache.load(path, fingerprint=self._snapshot_fingerprint())

    # -- database drift ----------------------------------------------------

    def apply_delta(self, delta: DatabaseDelta) -> Dict[str, int]:
        """Apply a fact-level database delta and propagate it incrementally.

        The source database is mutated in place
        (:meth:`~repro.obdm.database.SourceDatabase.apply_delta`; a delta
        that fails validation raises before any state changes), then the
        drift propagates through every layer that memoizes data-derived
        state:

        1. the system's retrieved-ABox snapshot is invalidated;
        2. the border computer evicts exactly the cached borders the
           delta can touch and reports them;
        3. the shared cache drops the entries built over those borders
           (border ABoxes, their saturations, J-match verdicts, verdict
           layouts and tabled subquery states);
        4. every live session's matrix re-evaluates only the columns
           whose border content actually changed
           (:meth:`~repro.engine.verdicts.VerdictMatrix.apply_database_delta`)
           — surviving verdict bits migrate by masking, untouched
           sessions are served warm on their next request.

        With ``specification.engine.delta.enabled = False`` the call
        instead reproduces the legacy cold path exactly: the shared
        cache, border cache and session ring are cleared and the next
        request rebuilds from scratch.

        Returns an accounting dict (facts added/removed, borders
        touched, sessions updated, per-layer cache invalidations).
        An empty delta is a no-op.
        """
        counts = {
            "added": len(delta.added),
            "removed": len(delta.removed),
            "borders_touched": 0,
            "sessions_updated": 0,
            "cache_invalidated": 0,
        }
        if delta.is_empty():
            return counts
        engine = self.system.specification.engine
        with self._session_guard:
            self.system.database.apply_delta(delta)
            self.system.invalidate()
            self.stats.count("database_deltas")
            if not engine.delta.enabled:
                # Legacy path: drop all derived state; the next request
                # cold-builds against the post-delta database.
                counts["cache_invalidated"] = sum(self.cache.size_report().values())
                self.cache.clear()
                self._border_computer._cache.clear()
                self._sessions.clear()
                self._name_index.clear()
                self.stats.count("delta_cold_resets")
                return counts
            touched = self._border_computer.apply_delta(delta)
            dropped = self.cache.invalidate_borders(touched, delta.constants())
            counts["borders_touched"] = len(touched)
            counts["cache_invalidated"] = sum(dropped.values())
            # Every session re-checks its own borders: a session may hold
            # borders already evicted from the computer's LRU cache, so
            # an empty *touched* set does not prove the sessions are
            # clean.  Unchanged matrices return themselves.
            for key, session in list(self._sessions.items()):
                if session.matrix is None:
                    continue
                updated = session.matrix.apply_database_delta()
                if updated is not session.matrix:
                    session.matrix = updated
                    counts["sessions_updated"] += 1
            self.stats.merge(
                {
                    "delta_borders_touched": counts["borders_touched"],
                    "delta_sessions_updated": counts["sessions_updated"],
                }
            )
        return counts

    # -- session lifecycle -------------------------------------------------

    def _uses_matrix(self) -> bool:
        return self.system.specification.engine.verdicts.enabled

    def _session_for(self, labeling: Labeling, radius: int) -> Tuple[_Session, str]:
        """The warm session serving this request, and how it was obtained.

        Resolution order: exact signature hit (warm) → drift from the
        warm session of the same labeling *name* (incremental) → cold
        build.  Sessions whose matrix layout was evicted from the cache
        are discarded, never reused.  The whole sequence runs under the
        session guard so concurrent requests resolve atomically.
        """
        with self._session_guard:
            return self._resolve_session(labeling, radius)

    def _resolve_session(self, labeling: Labeling, radius: int) -> Tuple[_Session, str]:
        key = (labeling.signature(), radius)
        session = self._sessions.get(key)
        if session is not None:
            if session.is_live():
                if session.matrix is not None:
                    # Row reads go through the session's own reference, so
                    # the LRU layer would otherwise never see warm traffic
                    # and evict the hottest layout first under pressure.
                    session.matrix.touch()
                self._name_index.put((labeling.name, radius), key)
                return session, "warm"
            session = None  # evicted layout: fall through to rebuild
        if not self._uses_matrix():
            session = _Session(labeling, radius, None)
            self._remember(key, labeling, radius, session)
            return session, "cold"
        predecessor = self._drift_predecessor(labeling, radius, key)
        if predecessor is not None:
            drift = predecessor.labeling.diff(labeling)
            matrix = predecessor.matrix.apply_drift(
                drift.added, drift.removed, drift.flipped
            )
            session = _Session(labeling, radius, matrix)
            self._remember(key, labeling, radius, session)
            return session, "drift"
        from ..engine.verdicts import BorderColumns, VerdictMatrix

        evaluator = self.evaluator(radius)
        columns = BorderColumns.from_labeling(evaluator, labeling, radius)
        session = _Session(labeling, radius, VerdictMatrix(evaluator, columns))
        self._remember(key, labeling, radius, session)
        return session, "cold"

    def _drift_predecessor(
        self, labeling: Labeling, radius: int, key: Tuple, touch: bool = True
    ) -> Optional[_Session]:
        """The live warm session of the same labeling name, if any.

        *touch=False* reads without promoting LRU recency — the
        observability path (:meth:`drift_of`) must not change which
        sessions survive eviction.
        """
        previous_key = self._name_index.get((labeling.name, radius), touch=touch)
        if previous_key is None or previous_key == key:
            return None
        predecessor = self._sessions.get(previous_key, touch=touch)
        if predecessor is None or predecessor.matrix is None:
            return None
        if not predecessor.is_live():
            return None
        if not (predecessor.labeling.tuples() & labeling.tuples()):
            # No surviving columns: nothing to migrate, so "drift" would
            # just be a cold build that additionally evaluates the
            # predecessor's whole pool against every new border.  This
            # happens when unrelated labelings share a name (e.g. the
            # constructor default); build cold and report it as such.
            return None
        return predecessor

    def _remember(self, key: Tuple, labeling: Labeling, radius: int, session: _Session) -> None:
        self._sessions.put(key, session)
        self._name_index.put((labeling.name, radius), key)

    # -- the request path --------------------------------------------------

    def explain(
        self,
        labeling: Labeling,
        radius: Optional[int] = None,
        criteria: Optional[Sequence[Union[str, Criterion]]] = None,
        expression: Optional[ScoringExpression] = None,
        strategy: str = "enumerate",
        candidates: Optional[Iterable[Union[str, OntologyQuery]]] = None,
        candidate_config: Optional[CandidateConfig] = None,
        refinement_config: Optional[RefinementConfig] = None,
        top_k: Optional[int] = 10,
    ) -> ExplanationReport:
        """One explanation request, served from the warm substrate.

        Semantically identical to
        :meth:`repro.core.explainer.OntologyExplainer.explain` with the
        same arguments on a fresh system — warmth only skips
        recomputation (the lifecycle tests pin report-identical output
        across cold, warm, drifted and reloaded services).
        """
        radius = self.radius if radius is None else radius
        session, how = self._session_for(labeling, radius)
        # One atomic bump for the request and its outcome: concurrent
        # explain() callers (the gateway) must never observe — or lose —
        # a request whose outcome counter is missing.
        self.stats.count(
            "requests",
            {"warm": "warm_hits", "drift": "drift_updates", "cold": "cold_builds"}[how],
        )
        expression = expression or self.expression
        search = BestDescriptionSearch(
            self.system,
            labeling,
            radius,
            criteria if criteria is not None else self.criteria,
            expression,
            self.registry,
            border_computer=self._border_computer,
            evaluator=self.evaluator(radius),
            matrix=session.matrix,
        )
        return execute_search(
            search,
            expression,
            candidates=candidates,
            strategy=strategy,
            candidate_config=candidate_config,
            refinement_config=refinement_config,
            top_k=top_k,
        )

    def warm_start(
        self,
        labelings: Sequence[Labeling],
        radius: Optional[int] = None,
        candidates: Optional[Iterable[Union[str, "OntologyQuery"]]] = None,
        strategy: str = "enumerate",
        candidate_config: Optional[CandidateConfig] = None,
        refinement_config: Optional[RefinementConfig] = None,
    ) -> Dict[str, int]:
        """Pre-warm many labelings' sessions in one bit-sliced dispatch.

        Resolves (or builds) the warm session of every labeling, derives
        each session's candidate pool (a shared ``candidates`` list, or
        the pool the chosen ``strategy`` would generate per labeling)
        and hands all (matrix, pool) pairs to
        :meth:`~repro.engine.verdicts.VerdictMatrix.build_batch` — when
        the batch kernel is enabled the whole fleet's verdict rows come
        from one J-match pass over the union of the labelings' borders.
        Subsequent :meth:`explain` calls for these labelings then run at
        warm-cache speed.

        Returns an accounting dict: labeling count, how each session was
        obtained (``warm``/``drift``/``cold``), ``rows`` newly stored,
        and ``batched`` (1 when the multi-layout kernel served the whole
        fleet in one dispatch, 0 on the per-matrix fallback).
        """
        radius = self.radius if radius is None else radius
        labelings = list(labelings)
        shared: Optional[List] = None
        if candidates is not None:
            shared = [
                parse_query(candidate) if isinstance(candidate, str) else candidate
                for candidate in candidates
            ]
        counts = {
            "labelings": len(labelings),
            "warm": 0,
            "drift": 0,
            "cold": 0,
            "rows": 0,
            "batched": 0,
        }
        matrices, pools = [], []
        for labeling in labelings:
            session, how = self._session_for(labeling, radius)
            counts[how] += 1
            if session.matrix is None:
                continue  # bitset path disabled: nothing to pre-build
            if shared is not None:
                pool: List = list(shared)
            else:
                search = BestDescriptionSearch(
                    self.system,
                    labeling,
                    radius,
                    self.criteria,
                    self.expression,
                    self.registry,
                    border_computer=self._border_computer,
                    evaluator=self.evaluator(radius),
                    matrix=session.matrix,
                )
                pool = list(
                    search.candidate_pool(strategy, candidate_config, refinement_config)
                )
            matrices.append(session.matrix)
            pools.append(pool)
        if matrices:
            from ..engine.verdicts import VerdictMatrix

            before = sum(matrix.known_rows() for matrix in matrices)
            batched = VerdictMatrix.build_batch(matrices, pools)
            counts["batched"] = int(batched)
            counts["rows"] = sum(matrix.known_rows() for matrix in matrices) - before
        return counts

    def drift_of(self, labeling: Labeling, radius: Optional[int] = None) -> Optional[LabelingDrift]:
        """The drift the service *would* apply for this labeling, or ``None``.

        Observability helper: ``None`` means the request would be served
        warm (exact signature hit) or cold (no usable predecessor).
        """
        radius = self.radius if radius is None else radius
        key = (labeling.signature(), radius)
        session = self._sessions.get(key, touch=False)
        if session is not None and session.is_live():
            return None  # exact hit: would be served warm
        # A dead exact-hit session (evicted layout) follows the same path
        # explain() takes: a live same-name predecessor still drifts.
        predecessor = self._drift_predecessor(labeling, radius, key, touch=False)
        if predecessor is None:
            return None
        return predecessor.labeling.diff(labeling)

    def __str__(self):
        return (
            f"ExplanationService({self.system.name!r}, radius={self.radius}, "
            f"sessions={len(self._sessions)}, {self.stats})"
        )
