"""The credit/loan domain.

A loan-approval scenario: applicants apply for loans; a classifier
predicts approval.  The OBDM specification exposes the applicants
through a small credit ontology so that approvals can be explained in
domain terms ("applicants with high income applying for small car loans").

Source schema ``S``::

    APPLICANT(id, income_band, employment, age_band)
    LOANAPP(id, applicant, amount_band, purpose)
    RESIDES(applicant, city)
    GUARANTEE(applicant, guarantor)

Ontology ``O`` (DL-Lite_R)::

    appliesFor ⊑ involvedIn            (role hierarchy)
    ∃appliesFor ⊑ Applicant            (domain)
    ∃appliesFor⁻ ⊑ Loan                (range)
    HighIncomeApplicant ⊑ Applicant
    SalariedApplicant ⊑ Applicant
    SmallLoan ⊑ Loan
    ∃guaranteedBy ⊑ Applicant
    HighIncomeApplicant ⊑ ¬LowIncomeApplicant   (disjointness)

Mapping ``M`` (sound GAV): band/categorical columns are mapped to the
corresponding concepts, and the relation structure to roles.  One
assertion deliberately uses the SQL source-query form to exercise that
code path end-to-end.
"""

from __future__ import annotations

from typing import Optional

from ..dl.ontology import Ontology, disjoint, domain_of, range_of, subclass, subrole
from ..obdm.database import SourceDatabase
from ..obdm.mapping import Mapping
from ..obdm.schema import SourceSchema
from ..obdm.specification import OBDMSpecification
from ..obdm.system import OBDMSystem


def build_loan_schema() -> SourceSchema:
    """The source schema of the loan domain."""
    schema = SourceSchema(name="loan_source")
    schema.declare("APPLICANT", ("id", "income_band", "employment", "age_band"))
    schema.declare("LOANAPP", ("id", "applicant", "amount_band", "purpose"))
    schema.declare("RESIDES", ("applicant", "city"))
    schema.declare("GUARANTEE", ("applicant", "guarantor"))
    return schema


def build_loan_ontology() -> Ontology:
    """The credit ontology."""
    ontology = Ontology(
        name="loan_O",
        concept_names=(
            "Applicant",
            "HighIncomeApplicant",
            "MediumIncomeApplicant",
            "LowIncomeApplicant",
            "SalariedApplicant",
            "SelfEmployedApplicant",
            "UnemployedApplicant",
            "YoungApplicant",
            "SeniorApplicant",
            "Loan",
            "SmallLoan",
            "MediumLoan",
            "LargeLoan",
            "CarLoan",
            "HomeLoan",
            "BusinessLoan",
        ),
        role_names=("appliesFor", "involvedIn", "hasPurpose", "residesIn", "guaranteedBy"),
    )
    ontology.add_axioms(
        [
            subrole("appliesFor", "involvedIn"),
            domain_of("appliesFor", "Applicant"),
            range_of("appliesFor", "Loan"),
            domain_of("guaranteedBy", "Applicant"),
            range_of("guaranteedBy", "Applicant"),
            domain_of("residesIn", "Applicant"),
            subclass("HighIncomeApplicant", "Applicant"),
            subclass("MediumIncomeApplicant", "Applicant"),
            subclass("LowIncomeApplicant", "Applicant"),
            subclass("SalariedApplicant", "Applicant"),
            subclass("SelfEmployedApplicant", "Applicant"),
            subclass("UnemployedApplicant", "Applicant"),
            subclass("YoungApplicant", "Applicant"),
            subclass("SeniorApplicant", "Applicant"),
            subclass("SmallLoan", "Loan"),
            subclass("MediumLoan", "Loan"),
            subclass("LargeLoan", "Loan"),
            subclass("CarLoan", "Loan"),
            subclass("HomeLoan", "Loan"),
            subclass("BusinessLoan", "Loan"),
            disjoint("HighIncomeApplicant", "LowIncomeApplicant"),
            disjoint("SmallLoan", "LargeLoan"),
        ]
    )
    return ontology


def build_loan_mapping() -> Mapping:
    """The mapping between the loan source and the credit ontology."""
    mapping = Mapping(name="loan_M")
    # Applicants and their income/employment/age bands.
    mapping.add_assertion("APPLICANT(x, b, e, a)", "Applicant(x)", label="applicant")
    mapping.add_assertion(
        "APPLICANT(x, 'high', e, a)", "HighIncomeApplicant(x)", label="income_high"
    )
    mapping.add_assertion(
        "APPLICANT(x, 'medium', e, a)", "MediumIncomeApplicant(x)", label="income_medium"
    )
    mapping.add_assertion(
        "APPLICANT(x, 'low', e, a)", "LowIncomeApplicant(x)", label="income_low"
    )
    mapping.add_assertion(
        "APPLICANT(x, b, 'salaried', a)", "SalariedApplicant(x)", label="salaried"
    )
    mapping.add_assertion(
        "APPLICANT(x, b, 'self-employed', a)", "SelfEmployedApplicant(x)", label="self_employed"
    )
    mapping.add_assertion(
        "APPLICANT(x, b, 'unemployed', a)", "UnemployedApplicant(x)", label="unemployed"
    )
    mapping.add_assertion(
        "APPLICANT(x, b, e, 'young')", "YoungApplicant(x)", label="young"
    )
    mapping.add_assertion(
        "APPLICANT(x, b, e, 'senior')", "SeniorApplicant(x)", label="senior"
    )
    # Loan applications: structure and loan categories.
    mapping.add_assertion("LOANAPP(l, x, s, p)", "appliesFor(x, l)", label="applies")
    mapping.add_assertion("LOANAPP(l, x, s, p)", "hasPurpose(l, p)", label="purpose")
    mapping.add_assertion("LOANAPP(l, x, 'small', p)", "SmallLoan(l)", label="small")
    mapping.add_assertion("LOANAPP(l, x, 'medium', p)", "MediumLoan(l)", label="medium")
    mapping.add_assertion("LOANAPP(l, x, 'large', p)", "LargeLoan(l)", label="large")
    mapping.add_assertion("LOANAPP(l, x, s, 'car')", "CarLoan(l)", label="car")
    mapping.add_assertion("LOANAPP(l, x, s, 'home')", "HomeLoan(l)", label="home")
    mapping.add_assertion("LOANAPP(l, x, s, 'business')", "BusinessLoan(l)", label="business")
    # Residence uses the SQL source-query form on purpose, to exercise the
    # relational algebra path of the mapping layer.
    mapping.add_assertion(
        "SELECT r.applicant, r.city FROM RESIDES AS r",
        "residesIn(x, y)",
        label="residence_sql",
    )
    mapping.add_assertion("GUARANTEE(x, g)", "guaranteedBy(x, g)", label="guarantee")
    return mapping


def build_loan_specification() -> OBDMSpecification:
    """The OBDM specification ``J`` of the loan domain."""
    return OBDMSpecification(
        build_loan_ontology(), build_loan_schema(), build_loan_mapping(), name="loan_J"
    )


def build_loan_system(database: Optional[SourceDatabase] = None) -> OBDMSystem:
    """An OBDM system over a supplied or generated loan database.

    When *database* is ``None`` a small default workload is generated
    (see :mod:`repro.workloads.loans_gen`).
    """
    specification = build_loan_specification()
    if database is None:
        from ..workloads.loans_gen import LoanWorkloadConfig, generate_loan_workload

        database = generate_loan_workload(LoanWorkloadConfig(applicants=60, seed=7)).database
    return OBDMSystem(specification, database, name="loan_Sigma")
