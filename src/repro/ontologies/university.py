"""The university domain: the paper's running example (Examples 3.3–3.8).

The source database contains the relations of Example 3.6::

    STUD(student)                      -- classified objects
    LOC(university, city)              -- where universities are located
    ENR(student, subject, university)  -- enrolments

The ontology has the single axiom ``studies ⊑ likes`` and the mapping is

    ENR(x, y, z) ⇝ studies(x, y)
    ENR(x, y, z) ⇝ taughtIn(y, z)
    LOC(x, y)    ⇝ locatedIn(x, y)

The module also exposes the labeling ``λ`` of the example (A10, B80,
C12, D50 positive; E25 negative), the three candidate queries q1/q2/q3
and the abstract database of Example 3.3.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.labeling import Labeling
from ..dl.ontology import Ontology, subrole
from ..obdm.database import SourceDatabase
from ..obdm.mapping import Mapping
from ..obdm.schema import SourceSchema
from ..obdm.specification import OBDMSpecification
from ..obdm.system import OBDMSystem
from ..queries.cq import ConjunctiveQuery
from ..queries.parser import parse_cq

# The rows of Example 3.6.
STUDENTS: Tuple[str, ...] = ("A10", "B80", "C12", "D50", "E25")
ENROLMENTS: Tuple[Tuple[str, str, str], ...] = (
    ("A10", "Math", "TV"),
    ("B80", "Math", "Sap"),
    ("C12", "Science", "Norm"),
    ("D50", "Science", "TV"),
    ("E25", "Math", "Pol"),
)
LOCATIONS: Tuple[Tuple[str, str], ...] = (
    ("Sap", "Rome"),
    ("TV", "Rome"),
    ("Pol", "Milan"),
)

POSITIVE_STUDENTS: Tuple[str, ...] = ("A10", "B80", "C12", "D50")
NEGATIVE_STUDENTS: Tuple[str, ...] = ("E25",)


def build_university_schema() -> SourceSchema:
    """The source schema ``S`` of the running example."""
    schema = SourceSchema(name="university_source")
    schema.declare("STUD", ("student",))
    schema.declare("ENR", ("student", "subject", "university"))
    schema.declare("LOC", ("university", "city"))
    return schema


def build_university_database(schema: SourceSchema = None) -> SourceDatabase:
    """The ``S``-database ``D`` of Example 3.6."""
    schema = schema or build_university_schema()
    database = SourceDatabase(schema, name="university_D")
    for student in STUDENTS:
        database.add("STUD", student)
    for student, subject, university in ENROLMENTS:
        database.add("ENR", student, subject, university)
    for university, city in LOCATIONS:
        database.add("LOC", university, city)
    return database


def build_university_ontology() -> Ontology:
    """The ontology ``O = {studies ⊑ likes}`` plus mapping-only vocabulary."""
    ontology = Ontology(name="university_O", role_names=("studies", "likes", "taughtIn", "locatedIn"))
    ontology.add_axiom(subrole("studies", "likes"))
    return ontology


def build_university_mapping() -> Mapping:
    """The mapping ``M`` of Example 3.6."""
    mapping = Mapping(name="university_M")
    mapping.add_assertion("ENR(x, y, z)", "studies(x, y)", label="m1")
    mapping.add_assertion("ENR(x, y, z)", "taughtIn(y, z)", label="m2")
    mapping.add_assertion("LOC(x, y)", "locatedIn(x, y)", label="m3")
    return mapping


def build_university_specification() -> OBDMSpecification:
    """The OBDM specification ``J = <O, S, M>`` of the running example."""
    return OBDMSpecification(
        build_university_ontology(),
        build_university_schema(),
        build_university_mapping(),
        name="university_J",
    )


def build_university_system() -> OBDMSystem:
    """The OBDM system ``Σ = <J, D>`` of the running example."""
    specification = build_university_specification()
    database = build_university_database(specification.schema)
    return OBDMSystem(specification, database, name="university_Sigma")


def build_university_labeling() -> Labeling:
    """The labeling ``λ`` of Example 3.6 (4 positives, 1 negative)."""
    return Labeling(POSITIVE_STUDENTS, NEGATIVE_STUDENTS, name="university_lambda")


def example_queries() -> Dict[str, ConjunctiveQuery]:
    """The candidate queries q1, q2, q3 discussed in Examples 3.6 and 3.8."""
    return {
        "q1": parse_cq("q1(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, 'Rome')"),
        "q2": parse_cq("q2(x) :- studies(x, 'Math')"),
        "q3": parse_cq("q3(x) :- likes(x, 'Science')"),
    }


def build_example_3_3_database() -> SourceDatabase:
    """The abstract database of Example 3.3 (borders of radius 0..2)."""
    schema = SourceSchema(name="example33_source")
    schema.declare("R", ("a1", "a2"))
    schema.declare("S", ("a1", "a2"))
    schema.declare("Z", ("a1", "a2"))
    schema.declare("W", ("a1", "a2"))
    database = SourceDatabase(schema, name="example33_D")
    database.add("R", "a", "b")
    database.add("S", "a", "c")
    database.add("Z", "c", "d")
    database.add("W", "d", "e")
    database.add("W", "e", "h")
    database.add("R", "f", "g")
    return database
