"""Ready-made domain ontologies, mappings and OBDM systems.

Each module builds a complete OBDM specification (ontology, source
schema, mapping) and helpers to populate it:

* :mod:`repro.ontologies.university` — the paper's running example;
* :mod:`repro.ontologies.loans`      — a credit/loan approval domain;
* :mod:`repro.ontologies.compas`     — a synthetic recidivism-risk domain
  (motivated by the paper's introduction on bias);
* :mod:`repro.ontologies.movies`     — a movie recommendation domain.
"""

from . import compas, loans, movies, university

__all__ = ["compas", "loans", "movies", "university"]
