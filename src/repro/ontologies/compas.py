"""A synthetic recidivism-risk (COMPAS-like) domain.

The paper's introduction motivates explanation with the COMPAS
controversy: a risk-assessment classifier whose errors were distributed
unevenly across demographic groups.  The real COMPAS data cannot be
shipped here, so this module defines a *synthetic* domain with the same
shape — defendants with prior records, charge degrees, age bands and a
sensitive group attribute, plus a risk classifier to be explained.  The
point of the benchmark built on top of it (E6/E8) is that the explainer
surfaces whether the best-describing query mentions the sensitive
attribute (``belongsToGroup``) or only the legitimate ones.

Source schema ``S``::

    PERSON(id, age_band, group, priors_band)
    CHARGE(id, person, degree)
    SUPERVISION(person, officer)

Ontology ``O``::

    YoungDefendant ⊑ Defendant
    RepeatOffender ⊑ Defendant
    FirstTimeOffender ⊑ Defendant
    RepeatOffender ⊑ ¬FirstTimeOffender
    ∃chargedWith ⊑ Defendant
    ∃chargedWith⁻ ⊑ Charge
    FelonyCharge ⊑ Charge
    MisdemeanorCharge ⊑ Charge
"""

from __future__ import annotations

from typing import Optional

from ..dl.ontology import Ontology, disjoint, domain_of, range_of, subclass, subrole
from ..obdm.database import SourceDatabase
from ..obdm.mapping import Mapping
from ..obdm.schema import SourceSchema
from ..obdm.specification import OBDMSpecification
from ..obdm.system import OBDMSystem


def build_compas_schema() -> SourceSchema:
    schema = SourceSchema(name="compas_source")
    schema.declare("PERSON", ("id", "age_band", "grp", "priors_band"))
    schema.declare("CHARGE", ("id", "person", "degree"))
    schema.declare("SUPERVISION", ("person", "officer"))
    return schema


def build_compas_ontology() -> Ontology:
    ontology = Ontology(
        name="compas_O",
        concept_names=(
            "Defendant",
            "YoungDefendant",
            "AdultDefendant",
            "SeniorDefendant",
            "RepeatOffender",
            "FirstTimeOffender",
            "Charge",
            "FelonyCharge",
            "MisdemeanorCharge",
        ),
        role_names=("chargedWith", "belongsToGroup", "hasAgeBand", "supervisedBy"),
    )
    ontology.add_axioms(
        [
            subclass("YoungDefendant", "Defendant"),
            subclass("AdultDefendant", "Defendant"),
            subclass("SeniorDefendant", "Defendant"),
            subclass("RepeatOffender", "Defendant"),
            subclass("FirstTimeOffender", "Defendant"),
            subclass("FelonyCharge", "Charge"),
            subclass("MisdemeanorCharge", "Charge"),
            domain_of("chargedWith", "Defendant"),
            range_of("chargedWith", "Charge"),
            domain_of("belongsToGroup", "Defendant"),
            domain_of("supervisedBy", "Defendant"),
            disjoint("RepeatOffender", "FirstTimeOffender"),
            disjoint("FelonyCharge", "MisdemeanorCharge"),
        ]
    )
    return ontology


def build_compas_mapping() -> Mapping:
    mapping = Mapping(name="compas_M")
    mapping.add_assertion("PERSON(x, a, g, p)", "Defendant(x)", label="defendant")
    mapping.add_assertion("PERSON(x, 'young', g, p)", "YoungDefendant(x)", label="young")
    mapping.add_assertion("PERSON(x, 'adult', g, p)", "AdultDefendant(x)", label="adult")
    mapping.add_assertion("PERSON(x, 'senior', g, p)", "SeniorDefendant(x)", label="senior")
    mapping.add_assertion("PERSON(x, a, g, 'many')", "RepeatOffender(x)", label="repeat")
    mapping.add_assertion("PERSON(x, a, g, 'none')", "FirstTimeOffender(x)", label="first_time")
    mapping.add_assertion("PERSON(x, a, g, p)", "belongsToGroup(x, g)", label="group")
    mapping.add_assertion("PERSON(x, a, g, p)", "hasAgeBand(x, a)", label="age_band")
    mapping.add_assertion("CHARGE(c, x, d)", "chargedWith(x, c)", label="charged")
    mapping.add_assertion("CHARGE(c, x, 'felony')", "FelonyCharge(c)", label="felony")
    mapping.add_assertion("CHARGE(c, x, 'misdemeanor')", "MisdemeanorCharge(c)", label="misdemeanor")
    mapping.add_assertion("SUPERVISION(x, o)", "supervisedBy(x, o)", label="supervision")
    return mapping


def build_compas_specification() -> OBDMSpecification:
    return OBDMSpecification(
        build_compas_ontology(), build_compas_schema(), build_compas_mapping(), name="compas_J"
    )


def build_compas_system(database: Optional[SourceDatabase] = None) -> OBDMSystem:
    """An OBDM system over a supplied or generated recidivism database."""
    specification = build_compas_specification()
    if database is None:
        from ..workloads.compas_gen import CompasWorkloadConfig, generate_compas_workload

        database = generate_compas_workload(CompasWorkloadConfig(persons=60, seed=11)).database
    return OBDMSystem(specification, database, name="compas_Sigma")
