"""A movie-recommendation domain.

A third, structurally different domain used by the extended experiments:
the classified objects (movies) are connected to users and directors by
binary relations, so explanations naturally involve role chains (e.g.
"movies directed by an award-winning director and liked by a critic"),
which stresses borders of radius greater than 1.

Source schema ``S``::

    MOVIE(id, genre, decade)
    DIRECTED(director, movie)
    AWARDED(director)
    RATED(user, movie, rating_band)
    CRITIC(user)

Ontology ``O``::

    ∃directed ⊑ Director
    ∃directed⁻ ⊑ Movie
    ∃rated ⊑ Viewer
    ∃rated⁻ ⊑ Movie
    Critic ⊑ Viewer
    AwardedDirector ⊑ Director
    likedBy⁻ ⊑ rated         (a liked movie was rated by that viewer)
"""

from __future__ import annotations

from typing import Optional

from ..dl.ontology import Ontology, domain_of, range_of, subclass, subrole
from ..dl.syntax import AtomicRole, RoleInclusion
from ..obdm.database import SourceDatabase
from ..obdm.mapping import Mapping
from ..obdm.schema import SourceSchema
from ..obdm.specification import OBDMSpecification
from ..obdm.system import OBDMSystem


def build_movie_schema() -> SourceSchema:
    schema = SourceSchema(name="movie_source")
    schema.declare("MOVIE", ("id", "genre", "decade"))
    schema.declare("DIRECTED", ("director", "movie"))
    schema.declare("AWARDED", ("director",))
    schema.declare("RATED", ("user", "movie", "rating_band"))
    schema.declare("CRITIC", ("user",))
    return schema


def build_movie_ontology() -> Ontology:
    ontology = Ontology(
        name="movie_O",
        concept_names=(
            "Movie",
            "DramaMovie",
            "ComedyMovie",
            "ThrillerMovie",
            "ClassicMovie",
            "RecentMovie",
            "Director",
            "AwardedDirector",
            "Viewer",
            "Critic",
        ),
        role_names=("directedBy", "ratedBy", "likedBy", "hasGenre"),
    )
    ontology.add_axioms(
        [
            subclass("DramaMovie", "Movie"),
            subclass("ComedyMovie", "Movie"),
            subclass("ThrillerMovie", "Movie"),
            subclass("ClassicMovie", "Movie"),
            subclass("RecentMovie", "Movie"),
            subclass("AwardedDirector", "Director"),
            subclass("Critic", "Viewer"),
            domain_of("directedBy", "Movie"),
            range_of("directedBy", "Director"),
            domain_of("ratedBy", "Movie"),
            range_of("ratedBy", "Viewer"),
            domain_of("likedBy", "Movie"),
            range_of("likedBy", "Viewer"),
            RoleInclusion(AtomicRole("likedBy"), AtomicRole("ratedBy")),
        ]
    )
    return ontology


def build_movie_mapping() -> Mapping:
    mapping = Mapping(name="movie_M")
    mapping.add_assertion("MOVIE(m, g, d)", "Movie(m)", label="movie")
    mapping.add_assertion("MOVIE(m, g, d)", "hasGenre(m, g)", label="genre_role")
    mapping.add_assertion("MOVIE(m, 'drama', d)", "DramaMovie(m)", label="drama")
    mapping.add_assertion("MOVIE(m, 'comedy', d)", "ComedyMovie(m)", label="comedy")
    mapping.add_assertion("MOVIE(m, 'thriller', d)", "ThrillerMovie(m)", label="thriller")
    mapping.add_assertion("MOVIE(m, g, 'classic')", "ClassicMovie(m)", label="classic")
    mapping.add_assertion("MOVIE(m, g, 'recent')", "RecentMovie(m)", label="recent")
    mapping.add_assertion("DIRECTED(p, m)", "directedBy(m, p)", label="directed")
    mapping.add_assertion("AWARDED(p)", "AwardedDirector(p)", label="awarded")
    mapping.add_assertion("RATED(u, m, b)", "ratedBy(m, u)", label="rated")
    mapping.add_assertion("RATED(u, m, 'high')", "likedBy(m, u)", label="liked")
    mapping.add_assertion("CRITIC(u)", "Critic(u)", label="critic")
    return mapping


def build_movie_specification() -> OBDMSpecification:
    return OBDMSpecification(
        build_movie_ontology(), build_movie_schema(), build_movie_mapping(), name="movie_J"
    )


def build_movie_system(database: Optional[SourceDatabase] = None) -> OBDMSystem:
    """An OBDM system over a supplied or generated movie database."""
    specification = build_movie_specification()
    if database is None:
        from ..workloads.movies_gen import MovieWorkloadConfig, generate_movie_workload

        database = generate_movie_workload(MovieWorkloadConfig(movies=40, seed=3)).database
    return OBDMSystem(specification, database, name="movie_Sigma")
