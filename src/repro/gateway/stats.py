"""Gateway observability: request counters, queue depth, latency percentiles.

:class:`GatewayStats` extends the locked-counter machinery of
:class:`~repro.engine.cache.CacheStats` with the two kinds of state a
serving front end needs beyond monotone counters:

* a **queue-depth high-water mark** — the deepest the admission-control
  pending set ever got, the number an operator compares against
  ``max_pending`` to know how close the gateway ran to shedding;
* a **latency reservoir** — a bounded ring of recent request latencies
  from which :meth:`GatewayStats.latency_percentiles` derives p50/p99
  (the benchmark gate's tail-latency numbers come from here).

Both are updated under the same lock as the counters, so a stats
snapshot is always internally consistent.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Optional

from ..engine.cache import CacheStats

#: How many recent latencies the percentile reservoir keeps.  Old
#: samples age out, so percentiles track the *current* serving regime
#: rather than averaging over a replica's whole lifetime.
LATENCY_RESERVOIR = 4096


class GatewayStats(CacheStats):
    """Counters + latency/queue observability for one gateway instance.

    Counter groups:

    * request path — ``requests``, ``coalesced_hits`` (followers that
      attached to an in-flight evaluation), ``completed``, ``errors``;
    * admission control — ``shed_requests`` (503-style fast fails),
      ``timeouts``, ``cancelled``;
    * registry lifecycle — ``service_builds``, ``service_reuses``,
      ``evictions`` (LRU-dropped warm services);
    * snapshot shipping — ``snapshots_shipped`` (donor side),
      ``warm_boots`` / ``cold_boots`` (replica side).
    """

    _COUNTERS = (
        "requests",
        "coalesced_hits",
        "completed",
        "errors",
        "shed_requests",
        "timeouts",
        "cancelled",
        "service_builds",
        "service_reuses",
        "evictions",
        "snapshots_shipped",
        "warm_boots",
        "cold_boots",
    )

    def __init__(self):
        super().__init__()
        self.queue_depth_high_water = 0
        self._latencies = deque(maxlen=LATENCY_RESERVOIR)

    # -- observations ------------------------------------------------------

    def observe_queue_depth(self, depth: int) -> None:
        """Record the pending-set depth after an admission."""
        with self._lock:
            if depth > self.queue_depth_high_water:
                self.queue_depth_high_water = depth

    def observe_latency(self, seconds: float) -> None:
        """Record one completed request's wall-clock latency."""
        with self._lock:
            self._latencies.append(seconds)

    # -- derived views -----------------------------------------------------

    def latency_percentiles(self) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p99": ..., "samples": n}`` over the reservoir.

        Percentiles are ``None`` until at least one latency was
        observed.  The nearest-rank method keeps the numbers honest on
        small samples (no interpolation beyond observed values).
        """
        with self._lock:
            samples = sorted(self._latencies)
        if not samples:
            return {"p50": None, "p99": None, "samples": 0}

        def nearest_rank(quantile: float) -> float:
            rank = max(1, math.ceil(quantile * len(samples)))
            return samples[rank - 1]

        return {
            "p50": nearest_rank(0.50),
            "p99": nearest_rank(0.99),
            "samples": len(samples),
        }

    def as_dict(self) -> Dict[str, object]:
        report: Dict[str, object] = super().as_dict()
        report["queue_depth_high_water"] = self.queue_depth_high_water
        report.update(
            (f"latency_{key}", value)
            for key, value in self.latency_percentiles().items()
            if key != "samples"
        )
        return report
