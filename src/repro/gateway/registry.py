"""Per-tenant registry of lazily built, LRU-bounded explanation services.

A multi-tenant gateway process cannot afford one permanently resident
:class:`~repro.service.ExplanationService` per tenant ever seen — each
service pins a warm OBDM system, bounded caches and live verdict
matrices.  The registry keeps the hot set:

* tenants **register a builder** (``tenant name → OBDMSystem``), not a
  live system, so registration is free and a tenant that never sends
  traffic never costs memory;
* the first request **lazily constructs** the service and keys the live
  instance by its *content fingerprint* — the specification fingerprint
  (ontology + mapping) combined with the database fact fingerprint.
  Tenants whose builders produce byte-identical specifications *and*
  databases therefore share one warm service (the same
  content-addressing argument that makes the evaluation cache shareable:
  equal fingerprints mean equal answers);
* live instances sit in an **LRU ring** (``capacity``): the least
  recently served tenant's service is dropped first, counted into
  ``stats.evictions``.  Eviction costs a rebuild (a cold start, or a
  warm boot when a ``snapshot_path`` was registered), never correctness;
* an optional per-tenant **snapshot path** makes rebuilds boot warm via
  :func:`repro.gateway.shipping.boot_warm` — the fleet-scale-out hook:
  a new replica registers the shipped artifact and its first request
  starts from the donor's memo state.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from ..engine.cache import CacheLimits, LRUStore
from ..errors import UnknownTenantError
from ..obdm.system import OBDMSystem
from ..service import ExplanationService
from .stats import GatewayStats

SystemBuilder = Callable[[], OBDMSystem]


class _Tenant:
    """Registration record: how to (re)build one tenant's service."""

    __slots__ = ("builder", "radius", "cache_limits", "max_sessions", "snapshot_path", "fingerprint")

    def __init__(
        self,
        builder: SystemBuilder,
        radius: int,
        cache_limits: Optional[CacheLimits],
        max_sessions: int,
        snapshot_path,
    ):
        self.builder = builder
        self.radius = radius
        self.cache_limits = cache_limits
        self.max_sessions = max_sessions
        self.snapshot_path = snapshot_path
        self.fingerprint: Optional[str] = None  # learned on first build


class ServiceRegistry:
    """Lazy, bounded map from tenant names to warm explanation services.

    Parameters
    ----------
    capacity:
        How many live services to keep warm; the least recently served
        is evicted first.  ``None`` keeps every built service resident.
    stats:
        Optional :class:`GatewayStats` to count builds / reuses /
        evictions / boot outcomes into; the gateway passes its own so
        one stats object tells the whole serving story.
    """

    def __init__(self, capacity: Optional[int] = 8, stats: Optional[GatewayStats] = None):
        self.stats = stats if stats is not None else GatewayStats()
        self._tenants: Dict[str, _Tenant] = {}
        self._services = LRUStore(capacity=capacity, stats=self.stats)
        self._guard = threading.Lock()

    # -- registration ------------------------------------------------------

    def register(
        self,
        tenant: str,
        builder: SystemBuilder,
        radius: int = 1,
        cache_limits: Optional[CacheLimits] = None,
        max_sessions: int = 32,
        snapshot_path=None,
    ) -> None:
        """Register (or re-register) a tenant's system builder.

        Re-registering replaces the recipe but deliberately keeps any
        live service until its next build: the fingerprint learned from
        the *new* builder decides whether the old instance is reused.
        """
        with self._guard:
            self._tenants[tenant] = _Tenant(
                builder, radius, cache_limits, max_sessions, snapshot_path
            )

    def tenants(self) -> List[str]:
        with self._guard:
            return sorted(self._tenants)

    def __contains__(self, tenant: str) -> bool:
        with self._guard:
            return tenant in self._tenants

    def __len__(self) -> int:
        return len(self._services)

    # -- resolution --------------------------------------------------------

    def service(self, tenant: str) -> ExplanationService:
        """The warm service of *tenant*, built lazily on first use.

        Raises :class:`~repro.errors.UnknownTenantError` for a tenant
        that was never registered.  Builds run under the registry guard
        (one build at a time keeps two threads from constructing the
        same tenant's substrate twice); the returned service does its
        own internal locking, so serving runs outside the guard.
        """
        with self._guard:
            entry = self._tenants.get(tenant)
            if entry is None:
                raise UnknownTenantError(
                    f"unknown tenant {tenant!r}; registered: {sorted(self._tenants)}"
                )
            if entry.fingerprint is not None:
                service = self._services.get(entry.fingerprint)
                if service is not None:
                    self.stats.count("service_reuses")
                    return service
            service = self._build(entry)
            return service

    def fingerprint(self, tenant: str) -> Optional[str]:
        """The content fingerprint a tenant's service is keyed by.

        ``None`` until the first build (the fingerprint is a property of
        the *built* system, not of the recipe).
        """
        with self._guard:
            entry = self._tenants.get(tenant)
            if entry is None:
                raise UnknownTenantError(f"unknown tenant {tenant!r}")
            return entry.fingerprint

    def _build(self, entry: _Tenant) -> ExplanationService:
        # Caller holds the guard.
        service = ExplanationService(
            entry.builder(),
            radius=entry.radius,
            cache_limits=entry.cache_limits,
            max_sessions=entry.max_sessions,
        )
        entry.fingerprint = service.content_fingerprint()
        existing = self._services.get(entry.fingerprint)
        if existing is not None:
            # Another tenant's builder produced a content-identical
            # specification and database: share its warm instance and
            # let the speculative build be garbage collected.
            self.stats.count("service_reuses")
            return existing
        self.stats.count("service_builds")
        if entry.snapshot_path is not None:
            from .shipping import boot_warm

            boot_warm(service, entry.snapshot_path, stats=self.stats)
        self._services.put(entry.fingerprint, service)
        return service

    def pushdown_totals(self) -> Dict[str, int]:
        """Whole-rewriting SQL pushdown traffic summed over live services.

        ``GatewayStats`` counts the gateway's own request lifecycle; the
        pushdown counters live in each service's evaluation-cache stats.
        Aggregating them here (at report time, over whatever instances
        are currently resident) gives operators the fleet-level hit /
        miss / fallback split without double-counting evicted services'
        history into the gateway's own counters.
        """
        totals = {"pushdown_hits": 0, "pushdown_misses": 0, "pushdown_fallbacks": 0}
        with self._guard:
            services = [service for _, service in self._services.items()]
        for service in services:
            stats = service.cache_stats
            for counter in totals:
                totals[counter] += getattr(stats, counter, 0)
        return totals

    def evict(self, tenant: str) -> bool:
        """Drop a tenant's live service (if any); the recipe stays.

        Returns whether a live instance was actually dropped.  Used by
        operators to force the next request through a (possibly
        snapshot-warmed) rebuild.
        """
        with self._guard:
            entry = self._tenants.get(tenant)
            if entry is None or entry.fingerprint is None:
                return False
            dropped = self._services.get(entry.fingerprint, touch=False) is not None
            self._services.discard_where(lambda key, _v: key == entry.fingerprint)
            return dropped

    def __str__(self):
        return (
            f"ServiceRegistry(tenants={len(self._tenants)}, "
            f"live={len(self._services)}, capacity={self._services.capacity})"
        )
