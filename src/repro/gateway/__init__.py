"""``repro.gateway`` — the async serving front end over warm explanation services.

The engine stack below (cache → bitset verdicts → pool/batch kernels →
database drift) makes one :class:`~repro.service.ExplanationService`
fast; this package makes a *process* of them servable: one
:class:`~repro.gateway.gateway.ExplanationGateway` multiplexes many
specifications and tenants behind an asyncio surface, in four layers:

**Registry** (:mod:`repro.gateway.registry`)
    A :class:`~repro.gateway.registry.ServiceRegistry` maps tenant
    names to *builders* and lazily constructs the live
    ``ExplanationService`` on first traffic, keyed by content
    fingerprint (specification + database) and LRU-bounded so the hot
    tenant set stays warm and the cold one costs nothing.  Tenants with
    byte-identical content share one instance.

**Coalescing** (:mod:`repro.gateway.gateway`)
    Concurrent ``explain`` calls with the same ``(tenant, labeling
    signature, radius)`` — and identical option overrides — await one
    in-flight future instead of racing the service's session guard: N
    identical requests cost one evaluation.  Per-request timeouts and
    cancellation are shielded from the shared evaluation, so a session
    is never left half-built; the work completes and serves the next
    request warm.

**Backpressure** (:mod:`repro.gateway.gateway`)
    A bounded pending set plus a concurrency semaphore: when admission
    is saturated, new requests fast-fail with
    :class:`~repro.errors.GatewayOverloaded` (503-style) instead of
    queueing unboundedly.  :class:`~repro.gateway.stats.GatewayStats`
    counts coalesced hits, shed requests, the queue-depth high-water
    mark and serves p50/p99 latency percentiles from a bounded
    reservoir.

**Shipping** (:mod:`repro.gateway.shipping`)
    A new replica boots *warm* from another replica's
    ``EvaluationCache.save()`` artifact — by file handoff
    (:func:`~repro.gateway.shipping.boot_warm`) or over a simple
    asyncio stream (:class:`~repro.gateway.shipping.SnapshotDonor` /
    :func:`~repro.gateway.shipping.boot_from_donor`).  Snapshots are
    written and downloaded atomically (temp file + ``os.replace``) and
    corrupt or foreign artifacts degrade to a cold start, never a
    crash.

The gateway adds *no* evaluation semantics of its own: every request is
served by :meth:`ExplanationService.explain` on a worker thread, so all
``engine.*`` toggles are respected unchanged —
``engine.cache/verdicts/kernel/kernel.batch/delta.enabled`` flip the
substrate under the gateway exactly as they do under direct service
use, and the differential suites' identity guarantees carry over
verbatim.  Multiplexing only changes who pays, never the report
(pinned across all four domains in ``tests/gateway/``).

Quickstart: ``examples/gateway_serving.py``; benchmark gate:
``benchmarks/bench_gateway.py`` (≥3× warm-coalesced vs
naive-serialized serving, identical rankings).
"""

from __future__ import annotations

from ..errors import GatewayError, GatewayOverloaded, GatewayTimeout, UnknownTenantError
from .gateway import ExplanationGateway
from .registry import ServiceRegistry
from .shipping import SnapshotDonor, boot_from_donor, boot_warm, fetch_snapshot
from .stats import GatewayStats

__all__ = [
    "ExplanationGateway",
    "ServiceRegistry",
    "GatewayStats",
    "SnapshotDonor",
    "boot_from_donor",
    "boot_warm",
    "fetch_snapshot",
    "GatewayError",
    "GatewayOverloaded",
    "GatewayTimeout",
    "UnknownTenantError",
]
