"""The asyncio explanation gateway: coalescing, admission control, timeouts.

One :class:`ExplanationGateway` multiplexes many tenants' ``explain``
traffic over one process.  The event loop owns all bookkeeping (the
in-flight table and the pending counter are only touched from loop
callbacks, so they need no locks); the actual evaluations run in a
bounded thread pool, where the engine substrate below is already
thread-safe (locked caches, the service's session guard).

Request lifecycle
-----------------

1. **Admission.**  A request that cannot attach to in-flight work must
   be *admitted*: if the pending set (admitted but unfinished leader
   evaluations) is at ``max_pending``, the request is shed immediately
   with :class:`~repro.errors.GatewayOverloaded` — the 503-style
   fast-fail that lets a load balancer retry elsewhere instead of
   queueing unboundedly.  Admitted leaders then queue on a semaphore
   bounding *concurrent* evaluations at ``max_concurrency``.

2. **Coalescing.**  Requests are keyed by
   ``(tenant, labeling name, labeling signature, radius, options)``.
   A request whose key is already being evaluated becomes a *follower*:
   it awaits the leader's future instead of racing the service's
   session guard, so N concurrent identical requests cost one
   evaluation (``stats.coalesced_hits`` counts the other N−1) — the
   same share-the-work discipline the engine's subquery tabling applies
   inside one evaluation, lifted to whole requests.

3. **Timeout / cancellation.**  Each awaiter wraps the shared future in
   :func:`asyncio.shield`: cancelling one follower (or timing out) can
   never cancel the leader's evaluation, so a session is never left
   half-built — the work completes, warms the cache, and the next
   request for that key is a warm hit.  Timeouts raise
   :class:`~repro.errors.GatewayTimeout` (504-style).

4. **Accounting.**  Completion latency (admission → result) feeds the
   stats reservoir; :meth:`GatewayStats.latency_percentiles` serves the
   p50/p99 the benchmark gates.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Dict, Optional, Tuple

from ..core.labeling import Labeling
from ..core.report import ExplanationReport
from ..errors import GatewayOverloaded, GatewayTimeout
from .registry import ServiceRegistry
from .stats import GatewayStats

_UNSET = object()


def _options_token(options: Dict[str, object]) -> Tuple:
    """A hashable, content-reflecting key for the explain() overrides.

    Two requests may only share an evaluation when *every* override
    (criteria, expression, strategy, candidate list, top_k, …) agrees;
    the canonical ``repr`` of each value reflects its content for all
    the library's option types.  Differing tokens merely skip
    coalescing — never correctness.
    """
    return tuple(sorted((name, repr(value)) for name, value in options.items()))


class _InFlight:
    """One leader evaluation plus the count of requests awaiting it."""

    __slots__ = ("task", "waiters")

    def __init__(self, task: "asyncio.Task"):
        self.task = task
        self.waiters = 0


class ExplanationGateway:
    """Async front end multiplexing tenants over warm explanation services.

    Parameters
    ----------
    registry:
        The :class:`~repro.gateway.registry.ServiceRegistry` resolving
        tenant names to warm services; a fresh bounded registry sharing
        this gateway's stats is created when omitted.
    max_concurrency:
        Evaluations running simultaneously in the worker pool.
    max_pending:
        Admitted-but-unfinished leader evaluations before new
        (non-coalescable) requests are shed with ``GatewayOverloaded``.
    default_timeout:
        Per-request timeout in seconds applied when ``explain`` is not
        given an explicit one (``None`` = wait indefinitely).
    """

    def __init__(
        self,
        registry: Optional[ServiceRegistry] = None,
        max_concurrency: int = 4,
        max_pending: int = 64,
        default_timeout: Optional[float] = None,
    ):
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        # One stats object tells the whole serving story: when a
        # registry is supplied the gateway adopts its stats, so request
        # counters and registry lifecycle counters land in one place.
        if registry is None:
            self.stats = GatewayStats()
            self.registry = ServiceRegistry(stats=self.stats)
        else:
            self.registry = registry
            self.stats = registry.stats
        self.max_pending = max_pending
        self.default_timeout = default_timeout
        self._semaphore = asyncio.Semaphore(max_concurrency)
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="gateway"
        )
        self._inflight: Dict[Tuple, _InFlight] = {}
        self._pending = 0
        self._closed = False

    # -- the request path --------------------------------------------------

    async def explain(
        self,
        tenant: str,
        labeling: Labeling,
        radius: Optional[int] = None,
        timeout=_UNSET,
        **options,
    ) -> ExplanationReport:
        """One explanation request, coalesced with identical in-flight ones.

        Semantically identical to
        :meth:`~repro.service.ExplanationService.explain` with the same
        arguments on the tenant's service — multiplexing only changes
        who pays, never the report.  Raises ``GatewayOverloaded`` when
        shed, ``GatewayTimeout`` when *timeout* (default: the gateway's
        ``default_timeout``) elapses first, and re-raises evaluation
        errors to every coalesced awaiter.
        """
        if self._closed:
            raise RuntimeError("gateway is closed")
        timeout = self.default_timeout if timeout is _UNSET else timeout
        loop = asyncio.get_running_loop()
        started = loop.time()
        self.stats.count("requests")
        key = (tenant, labeling.name, labeling.signature(), radius, _options_token(options))
        entry = self._inflight.get(key)
        if entry is None:
            if self._pending >= self.max_pending:
                self.stats.count("shed_requests")
                raise GatewayOverloaded(
                    f"gateway saturated ({self._pending} pending evaluations, "
                    f"max_pending={self.max_pending}); request shed"
                )
            self._pending += 1
            self.stats.observe_queue_depth(self._pending)
            task = asyncio.ensure_future(
                self._evaluate(key, tenant, labeling, radius, options)
            )
            # A leader whose awaiters all timed out or were cancelled
            # still runs to completion (that is the point of the
            # shield); retrieve its outcome so an orphaned failure is
            # counted instead of warning about a never-retrieved
            # exception at garbage-collection time.
            task.add_done_callback(_swallow_orphaned_result)
            entry = self._inflight[key] = _InFlight(task)
        else:
            self.stats.count("coalesced_hits")
        entry.waiters += 1
        try:
            if timeout is None:
                report = await asyncio.shield(entry.task)
            else:
                report = await asyncio.wait_for(asyncio.shield(entry.task), timeout)
            # Awaiter-side latency: admission (or coalesce attach) to
            # result, the number a client actually experiences —
            # followers included, queueing included.
            self.stats.observe_latency(loop.time() - started)
            return report
        except asyncio.TimeoutError:
            self.stats.count("timeouts")
            raise GatewayTimeout(
                f"request for tenant {tenant!r} timed out after {timeout}s; "
                "the evaluation continues and will serve later requests warm"
            ) from None
        except asyncio.CancelledError:
            self.stats.count("cancelled")
            raise
        finally:
            entry.waiters -= 1

    async def _evaluate(self, key, tenant, labeling, radius, options):
        """The leader body: admission queue → worker thread → accounting."""
        loop = asyncio.get_running_loop()
        try:
            async with self._semaphore:
                report = await loop.run_in_executor(
                    self._executor,
                    partial(self._serve, tenant, labeling, radius, options),
                )
            self.stats.count("completed")
            return report
        except Exception:
            self.stats.count("errors")
            raise
        finally:
            self._pending -= 1
            self._inflight.pop(key, None)

    def _serve(self, tenant, labeling, radius, options) -> ExplanationReport:
        """Worker-thread body: resolve the tenant's service and explain.

        Lazy service construction happens here too, so a tenant's first
        (cold) build consumes a worker slot instead of blocking the
        event loop.
        """
        service = self.registry.service(tenant)
        return service.explain(labeling, radius=radius, **options)

    # -- introspection -----------------------------------------------------

    @property
    def pending(self) -> int:
        """Admitted-but-unfinished leader evaluations right now."""
        return self._pending

    def inflight_keys(self) -> Tuple[Tuple, ...]:
        return tuple(self._inflight)

    def stats_report(self) -> Dict[str, object]:
        """One dict telling the serving story: counters + percentiles.

        Includes the live services' aggregated whole-rewriting pushdown
        counters (``pushdown_hits`` / ``pushdown_misses`` /
        ``pushdown_fallbacks``), so a fleet quietly falling back to the
        per-disjunct path shows up at the gateway surface too.
        """
        report = self.stats.as_dict()
        report["pending"] = self._pending
        report["inflight"] = len(self._inflight)
        report.update(self.registry.pushdown_totals())
        return report

    # -- lifecycle ---------------------------------------------------------

    async def drain(self) -> None:
        """Wait for every in-flight evaluation to finish (errors included)."""
        tasks = [entry.task for entry in self._inflight.values()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def aclose(self) -> None:
        """Drain in-flight work and release the worker pool."""
        self._closed = True
        await self.drain()
        self._executor.shutdown(wait=True)

    def __str__(self):
        return (
            f"ExplanationGateway(pending={self._pending}, "
            f"inflight={len(self._inflight)}, max_pending={self.max_pending}, "
            f"registry={self.registry})"
        )


def _swallow_orphaned_result(task: "asyncio.Task") -> None:
    if not task.cancelled():
        task.exception()  # mark retrieved; awaiters re-raise it themselves
