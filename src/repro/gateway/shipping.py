"""Snapshot shipping: replicas boot warm from another replica's cache.

Fleet scale-out with cold starts wastes exactly the work the engine
exists to avoid: a new replica would re-chase, re-retrieve and re-match
everything the fleet already knows.  Shipping moves a donor replica's
:meth:`~repro.service.ExplanationService.save` artifact to the new
replica, whose first request then runs at warm-cache speed.

Two transports, both ending in the same ``load()``:

* **file handoff** — :func:`boot_warm` loads a snapshot path a deployer
  placed next to the process (shared volume, object store download).
  Missing, truncated, garbage or foreign-content artifacts *degrade to
  a cold start* (the load refuses with ``ValueError``, never crashes
  the boot) — the corrupt-snapshot refusal contract pinned in
  ``tests/gateway/test_snapshot_lifecycle.py``;
* **asyncio stream** — a donor runs :class:`SnapshotDonor` and a
  booting replica calls :func:`fetch_snapshot` /
  :func:`boot_from_donor`.  The wire format is deliberately dumb: one
  request line (the tenant name), one magic line, one JSON header
  (content fingerprint + payload size), then the raw snapshot bytes.
  The header fingerprint lets a receiver refuse incompatible donors
  before downloading the payload into its cache.

Atomicity discipline: the donor snapshots through the cache's atomic
``save`` (temp file + ``os.replace``), and the receiver downloads to a
same-directory temp file and replaces it into place — a replica killed
mid-fetch can never leave a truncated artifact where the next boot will
look for one.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
from typing import Dict, Optional, Union

from ..errors import GatewayError
from ..service import ExplanationService
from .registry import ServiceRegistry
from .stats import GatewayStats

SHIP_MAGIC = b"repro-snapshot-ship/1"

#: Upper bound on the JSON header line; anything longer is not ours.
_MAX_HEADER = 64 * 1024

ServiceSource = Union[ExplanationService, ServiceRegistry]


# -- file handoff -----------------------------------------------------------


def boot_warm(
    service: ExplanationService, path, stats: Optional[GatewayStats] = None
) -> Dict[str, object]:
    """Load a shipped snapshot into *service*, degrading to a cold start.

    Returns ``{"warm": True, "loaded": {layer: survivors}}`` on success
    and ``{"warm": False, "reason": ...}`` when the artifact is missing,
    unreadable, corrupt, or was produced by a replica over different
    content — every refusal the cache's ``load`` expresses as
    ``ValueError`` plus the filesystem's ``OSError`` family.  A boot can
    therefore never crash on a bad snapshot; it just starts cold.
    """
    try:
        loaded = service.load(path)
    except (ValueError, OSError) as error:
        if stats is not None:
            stats.count("cold_boots")
        return {"warm": False, "reason": f"{type(error).__name__}: {error}"}
    if stats is not None:
        stats.count("warm_boots")
    return {"warm": True, "loaded": loaded}


def snapshot_to_bytes(service: ExplanationService) -> bytes:
    """The service's snapshot artifact as bytes (exactly what ``save`` writes).

    Goes through the atomic ``save`` into a private temp file rather
    than re-implementing the serialization, so the shipped bytes are
    byte-identical to a local snapshot and carry the same fingerprint
    stamp.
    """
    handle, path = tempfile.mkstemp(prefix="repro_ship_", suffix=".snapshot")
    os.close(handle)
    try:
        service.save(path)
        with open(path, "rb") as stream:
            return stream.read()
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass


# -- the donor side ---------------------------------------------------------


class SnapshotDonor:
    """Serves this replica's warm snapshots to booting replicas.

    *source* is either one :class:`ExplanationService` (single-tenant
    donor; the request's tenant line is ignored) or a
    :class:`ServiceRegistry` (the tenant line selects whose snapshot to
    ship).  ``stats.snapshots_shipped`` counts successful transfers.
    """

    def __init__(self, source: ServiceSource, stats: Optional[GatewayStats] = None):
        self._source = source
        self.stats = stats if stats is not None else GatewayStats()
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> "tuple[str, int]":
        """Start listening; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle, host, port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _resolve(self, tenant: str) -> ExplanationService:
        if isinstance(self._source, ServiceRegistry):
            return self._source.service(tenant)
        return self._source

    async def _handle(self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter") -> None:
        loop = asyncio.get_running_loop()
        try:
            tenant = (await reader.readline()).decode("utf-8", "replace").strip()
            try:
                service = self._resolve(tenant)
                # Snapshotting walks the whole memo state: off the loop.
                payload = await loop.run_in_executor(None, snapshot_to_bytes, service)
            except Exception as error:  # ship the refusal, not a hang
                header = {"error": f"{type(error).__name__}: {error}"}
                writer.write(SHIP_MAGIC + b"\n")
                writer.write(json.dumps(header).encode("utf-8") + b"\n")
                await writer.drain()
                return
            header = {
                "fingerprint": service.content_fingerprint(),
                "size": len(payload),
                "tenant": tenant,
            }
            writer.write(SHIP_MAGIC + b"\n")
            writer.write(json.dumps(header).encode("utf-8") + b"\n")
            writer.write(payload)
            await writer.drain()
            self.stats.count("snapshots_shipped")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# -- the receiving side -----------------------------------------------------


async def fetch_snapshot(host: str, port: int, path, tenant: str = "") -> Dict[str, object]:
    """Download a donor's snapshot to *path* (atomically); returns the header.

    Raises :class:`~repro.errors.GatewayError` when the peer does not
    speak the shipping protocol, reports an error, or closes the stream
    before delivering the advertised payload — in which case nothing is
    written at *path*.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(tenant.encode("utf-8") + b"\n")
        await writer.drain()
        magic = (await reader.readline()).rstrip(b"\r\n")
        if magic != SHIP_MAGIC:
            raise GatewayError(
                f"peer {host}:{port} did not speak snapshot shipping "
                f"(got {magic[:32]!r})"
            )
        header_line = await reader.readline()
        if len(header_line) > _MAX_HEADER:
            raise GatewayError(f"peer {host}:{port} sent an oversized header")
        try:
            header = json.loads(header_line.decode("utf-8"))
        except ValueError as error:
            raise GatewayError(f"unreadable shipping header: {error}") from error
        if "error" in header:
            raise GatewayError(f"donor refused to ship: {header['error']}")
        size = header.get("size")
        if not isinstance(size, int) or size < 0:
            raise GatewayError(f"shipping header advertises no size: {header!r}")
        try:
            payload = await reader.readexactly(size)
        except asyncio.IncompleteReadError as error:
            raise GatewayError(
                f"donor stream ended after {len(error.partial)}/{size} bytes"
            ) from error
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    handle, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(payload)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return header


async def boot_from_donor(
    service: ExplanationService,
    host: str,
    port: int,
    tenant: str = "",
    stats: Optional[GatewayStats] = None,
) -> Dict[str, object]:
    """Fetch a donor's snapshot over the wire and warm-boot *service*.

    The whole path degrades to a cold start: transport failures and
    refused artifacts both produce ``{"warm": False, "reason": ...}``.
    On success the result carries the donor's header plus the per-layer
    survivor counts from the merge.
    """
    handle, path = tempfile.mkstemp(prefix="repro_boot_", suffix=".snapshot")
    os.close(handle)
    try:
        try:
            header = await fetch_snapshot(host, port, path, tenant)
        except (GatewayError, OSError) as error:
            if stats is not None:
                stats.count("cold_boots")
            return {"warm": False, "reason": f"{type(error).__name__}: {error}"}
        result = boot_warm(service, path, stats=stats)
        if result["warm"]:
            result["donor"] = header
        return result
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass
