"""Synthetic loan-approval workload.

Each applicant gets numeric features (age, income, employment years)
and a loan application (amount, purpose).  The relational source stores
the *banded* categorical view (the one the ontology talks about); the
tabular dataset stores the numeric view (the one classifiers train on).
Labels follow a known ground-truth policy plus noise:

    approve  iff  income_band != 'low'
             and  not (amount_band == 'large' and employment == 'unemployed')

so the ideal ontology-level explanation is, roughly, "applicants that
are not low-income applying for a loan that is not large-and-unsecured",
and the fidelity experiment can check how close the discovered query
comes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..ml.dataset import TabularDataset
from ..obdm.database import SourceDatabase
from ..ontologies.loans import build_loan_schema
from .generator import SeededGenerator, Workload, banded

INCOME_BANDS = (("low", 25_000.0), ("medium", 60_000.0), ("high", float("inf")))
AMOUNT_BANDS = (("small", 10_000.0), ("medium", 50_000.0), ("large", float("inf")))
AGE_BANDS = (("young", 30.0), ("adult", 60.0), ("senior", float("inf")))
EMPLOYMENTS = ("salaried", "self-employed", "unemployed")
PURPOSES = ("car", "home", "business")
CITIES = ("Rome", "Milan", "Turin", "Naples", "Florence")


@dataclass(frozen=True)
class LoanWorkloadConfig:
    """Parameters of the loan workload generator."""

    applicants: int = 200
    seed: int = 7
    label_noise: float = 0.02
    guarantee_probability: float = 0.25


def generate_loan_workload(config: LoanWorkloadConfig = LoanWorkloadConfig()) -> Workload:
    """Generate the loan workload described in the module docstring."""
    generator = SeededGenerator(config.seed)
    schema = build_loan_schema()
    database = SourceDatabase(schema, name=f"loan_D_{config.applicants}")
    records: List[Dict[str, object]] = []

    for index in range(config.applicants):
        applicant = f"APP{index:04d}"
        loan = f"LOAN{index:04d}"
        age = generator.uniform(20, 75)
        employment = generator.choice(EMPLOYMENTS, probabilities=(0.6, 0.25, 0.15))
        base_income = {"salaried": 45_000, "self-employed": 38_000, "unemployed": 12_000}[employment]
        income = max(5_000.0, generator.normal(base_income, 15_000))
        amount = max(1_000.0, generator.normal(30_000, 25_000))
        purpose = generator.choice(PURPOSES, probabilities=(0.45, 0.35, 0.2))
        city = generator.choice(CITIES)

        income_band = banded(income, INCOME_BANDS)
        amount_band = banded(amount, AMOUNT_BANDS)
        age_band = banded(age, AGE_BANDS)

        database.add("APPLICANT", applicant, income_band, employment, age_band)
        database.add("LOANAPP", loan, applicant, amount_band, purpose)
        database.add("RESIDES", applicant, city)
        if generator.boolean(config.guarantee_probability):
            guarantor = f"APP{generator.integer(0, max(0, config.applicants - 1)):04d}"
            if guarantor != applicant:
                database.add("GUARANTEE", applicant, guarantor)

        approve = income_band != "low" and not (
            amount_band == "large" and employment == "unemployed"
        )
        if generator.boolean(config.label_noise):
            approve = not approve
        records.append(
            {
                "id": applicant,
                "age": round(age, 1),
                "income": round(income, 2),
                "amount": round(amount, 2),
                "employment_code": float(EMPLOYMENTS.index(employment)),
                "purpose_code": float(PURPOSES.index(purpose)),
                "label": 1 if approve else -1,
            }
        )

    dataset = TabularDataset.from_records(
        records,
        key_column="id",
        label_column="label",
        feature_columns=("age", "income", "amount", "employment_code", "purpose_code"),
        name=f"loan_dataset_{config.applicants}",
    )
    return Workload(
        name="loan",
        database=database,
        dataset=dataset,
        ground_truth=(
            "approve iff income_band != 'low' and not "
            "(amount_band == 'large' and employment == 'unemployed')"
        ),
        parameters={"applicants": config.applicants, "seed": config.seed},
    )
