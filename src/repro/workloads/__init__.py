"""Deterministic synthetic workload generators for the benchmark harness."""

from .compas_gen import CompasWorkloadConfig, generate_compas_workload
from .generator import SeededGenerator, Workload, banded
from .loans_gen import LoanWorkloadConfig, generate_loan_workload
from .movies_gen import MovieWorkloadConfig, generate_movie_workload
from .university_gen import UniversityWorkloadConfig, generate_university_workload

__all__ = [
    "CompasWorkloadConfig",
    "LoanWorkloadConfig",
    "MovieWorkloadConfig",
    "SeededGenerator",
    "UniversityWorkloadConfig",
    "Workload",
    "banded",
    "generate_compas_workload",
    "generate_loan_workload",
    "generate_movie_workload",
    "generate_university_workload",
]
