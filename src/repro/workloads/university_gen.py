"""Scaled-up university workload.

The paper's Example 3.6 has five students; the scalability benchmark
(E7) needs the same structure at arbitrary sizes.  This generator
produces ``students`` students enrolled in subjects taught at
universities located in cities, with a labelling that follows the
"studies something taught in Rome" pattern of the example's query q1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..obdm.database import SourceDatabase
from ..ontologies.university import build_university_schema
from .generator import SeededGenerator, Workload

SUBJECTS = ("Math", "Science", "History", "Law", "Medicine", "Engineering")
UNIVERSITIES = ("Sap", "TV", "Pol", "Norm", "Bocconi", "Fed2", "Unibo", "Unipd")
CITIES = {
    "Sap": "Rome",
    "TV": "Rome",
    "Pol": "Milan",
    "Norm": "Pisa",
    "Bocconi": "Milan",
    "Fed2": "Naples",
    "Unibo": "Bologna",
    "Unipd": "Padua",
}


@dataclass(frozen=True)
class UniversityWorkloadConfig:
    """Parameters of the scaled university workload."""

    students: int = 100
    enrolments_per_student: int = 1
    seed: int = 13
    label_noise: float = 0.0


def generate_university_workload(
    config: UniversityWorkloadConfig = UniversityWorkloadConfig(),
) -> Workload:
    """Generate a university workload of the requested size."""
    generator = SeededGenerator(config.seed)
    schema = build_university_schema()
    database = SourceDatabase(schema, name=f"university_D_{config.students}")

    for university, city in CITIES.items():
        database.add("LOC", university, city)

    positives: List[str] = []
    negatives: List[str] = []
    for index in range(config.students):
        student = f"S{index:05d}"
        database.add("STUD", student)
        studies_in_rome = False
        for _ in range(max(1, config.enrolments_per_student)):
            subject = generator.choice(SUBJECTS)
            university = generator.choice(UNIVERSITIES)
            database.add("ENR", student, subject, university)
            if CITIES[university] == "Rome":
                studies_in_rome = True
        label_positive = studies_in_rome
        if generator.boolean(config.label_noise):
            label_positive = not label_positive
        (positives if label_positive else negatives).append(student)

    return Workload(
        name="university",
        database=database,
        dataset=None,
        ground_truth="positive iff enrolled in a subject taught at a university located in Rome",
        parameters={
            "students": config.students,
            "enrolments_per_student": config.enrolments_per_student,
            "seed": config.seed,
            "positives": positives,
            "negatives": negatives,
        },
    )
