"""Shared infrastructure of the synthetic workload generators.

The paper defers evaluation on real-world data to future work; the
benchmarks here therefore run on deterministic synthetic workloads.
Every generator returns a :class:`Workload`: the relational source
database (for the OBDM side) plus, when meaningful, a tabular dataset
(for the classifier side) and a description of the ground-truth rule
that generated the labels — so fidelity experiments can compare the
discovered explanation against a known target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ml.dataset import TabularDataset
from ..obdm.database import SourceDatabase


@dataclass
class Workload:
    """The output of one synthetic workload generator."""

    name: str
    database: SourceDatabase
    dataset: Optional[TabularDataset] = None
    ground_truth: str = ""
    parameters: Dict[str, object] = field(default_factory=dict)

    def __str__(self):
        dataset = f", dataset={len(self.dataset)} rows" if self.dataset is not None else ""
        return f"Workload({self.name!r}: |D|={len(self.database)} facts{dataset})"


class SeededGenerator:
    """Small wrapper around :class:`numpy.random.Generator` with helpers.

    Every workload generator owns one of these, seeded explicitly, so
    that workloads — and therefore every benchmark number — are exactly
    reproducible across runs and machines.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    def choice(self, options: Sequence, probabilities: Optional[Sequence[float]] = None):
        """Pick one option (optionally with the given probabilities)."""
        index = self.rng.choice(len(options), p=probabilities)
        return options[int(index)]

    def uniform(self, low: float, high: float) -> float:
        return float(self.rng.uniform(low, high))

    def normal(self, mean: float, std: float) -> float:
        return float(self.rng.normal(mean, std))

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` (inclusive)."""
        return int(self.rng.integers(low, high + 1))

    def boolean(self, probability_true: float = 0.5) -> bool:
        return bool(self.rng.random() < probability_true)


def banded(value: float, bands: Sequence[Tuple[str, float]]) -> str:
    """Map a numeric value onto a named band.

    *bands* is a list of ``(name, upper_bound)`` pairs ordered by bound;
    the first band whose bound is >= value wins, and the last band is
    used as the catch-all.
    """
    for name, upper in bands:
        if value <= upper:
            return name
    return bands[-1][0]
