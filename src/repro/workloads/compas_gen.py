"""Synthetic recidivism-risk workload (COMPAS-like).

Persons have an age band, a priors band and a sensitive group
attribute; charges have a degree.  The generator can produce either an
*unbiased* labelling (risk depends only on priors and charge degree) or
a *biased* one (risk additionally depends on the sensitive group),
controlled by :attr:`CompasWorkloadConfig.bias_strength`.  The bias-
audit example and benchmark E8 compare the explanations discovered in
the two regimes: with bias injected, the best-describing query starts
mentioning ``belongsToGroup(x, 'B')``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..ml.dataset import TabularDataset
from ..obdm.database import SourceDatabase
from ..ontologies.compas import build_compas_schema
from .generator import SeededGenerator, Workload, banded

AGE_BANDS = (("young", 25.0), ("adult", 50.0), ("senior", float("inf")))
PRIORS_BANDS = (("none", 0.0), ("few", 3.0), ("many", float("inf")))
GROUPS = ("A", "B")
DEGREES = ("felony", "misdemeanor")


@dataclass(frozen=True)
class CompasWorkloadConfig:
    """Parameters of the recidivism workload generator."""

    persons: int = 200
    seed: int = 11
    bias_strength: float = 0.0
    """0 = labels ignore the group; 1 = group-B membership strongly raises risk."""

    label_noise: float = 0.02


def generate_compas_workload(config: CompasWorkloadConfig = CompasWorkloadConfig()) -> Workload:
    """Generate the synthetic recidivism workload."""
    generator = SeededGenerator(config.seed)
    schema = build_compas_schema()
    database = SourceDatabase(schema, name=f"compas_D_{config.persons}")
    records: List[Dict[str, object]] = []

    for index in range(config.persons):
        person = f"DEF{index:04d}"
        charge = f"CH{index:04d}"
        age = generator.uniform(18, 70)
        priors = max(0, int(round(generator.normal(2.0, 2.5))))
        group = generator.choice(GROUPS, probabilities=(0.55, 0.45))
        degree = generator.choice(DEGREES, probabilities=(0.4, 0.6))

        age_band = banded(age, AGE_BANDS)
        priors_band = banded(float(priors), PRIORS_BANDS)

        database.add("PERSON", person, age_band, group, priors_band)
        database.add("CHARGE", charge, person, degree)
        if generator.boolean(0.3):
            database.add("SUPERVISION", person, f"OFF{generator.integer(0, 9):02d}")

        # Ground-truth risk: many priors, or a felony charge with some priors.
        risk_score = 0.0
        if priors_band == "many":
            risk_score += 0.8
        elif priors_band == "few":
            risk_score += 0.35
        if degree == "felony":
            risk_score += 0.35
        if age_band == "young":
            risk_score += 0.15
        # Injected bias: group B raises the score regardless of behaviour.
        # At full strength the increment alone crosses the decision threshold,
        # so every group-B defendant is labelled high risk.
        if group == "B":
            risk_score += 0.75 * config.bias_strength
        high_risk = risk_score >= 0.7
        if generator.boolean(config.label_noise):
            high_risk = not high_risk

        records.append(
            {
                "id": person,
                "age": round(age, 1),
                "priors": float(priors),
                "is_felony": 1.0 if degree == "felony" else 0.0,
                "group_code": float(GROUPS.index(group)),
                "label": 1 if high_risk else -1,
            }
        )

    dataset = TabularDataset.from_records(
        records,
        key_column="id",
        label_column="label",
        feature_columns=("age", "priors", "is_felony", "group_code"),
        name=f"compas_dataset_{config.persons}",
    )
    return Workload(
        name="compas",
        database=database,
        dataset=dataset,
        ground_truth=(
            "high risk iff many priors, or felony with some priors, or young with both; "
            f"group bias strength = {config.bias_strength}"
        ),
        parameters={
            "persons": config.persons,
            "seed": config.seed,
            "bias_strength": config.bias_strength,
        },
    )
