"""Synthetic movie-recommendation workload.

Movies are connected to directors (some awarded) and to viewers (some
critics) through ratings.  The classified objects are the movies; the
ground-truth label marks a movie "promoted" when it is a drama liked by
at least one critic, or directed by an awarded director — a rule whose
natural ontology-level explanation needs role atoms and a radius of at
least 1 (and benefits from radius 2, which benchmark E7 exercises).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..ml.dataset import TabularDataset
from ..obdm.database import SourceDatabase
from ..ontologies.movies import build_movie_schema
from .generator import SeededGenerator, Workload

GENRES = ("drama", "comedy", "thriller")
DECADES = ("classic", "recent")
RATING_BANDS = ("low", "medium", "high")


@dataclass(frozen=True)
class MovieWorkloadConfig:
    """Parameters of the movie workload generator."""

    movies: int = 80
    directors: int = 15
    viewers: int = 30
    critics: int = 6
    ratings_per_movie: int = 3
    seed: int = 3
    label_noise: float = 0.0


def generate_movie_workload(config: MovieWorkloadConfig = MovieWorkloadConfig()) -> Workload:
    """Generate the movie workload."""
    generator = SeededGenerator(config.seed)
    schema = build_movie_schema()
    database = SourceDatabase(schema, name=f"movie_D_{config.movies}")
    records: List[Dict[str, object]] = []

    directors = [f"DIR{i:03d}" for i in range(config.directors)]
    awarded = set()
    for director in directors:
        if generator.boolean(0.3):
            awarded.add(director)
            database.add("AWARDED", director)

    viewers = [f"USR{i:03d}" for i in range(config.viewers)]
    critics = set(viewers[: config.critics])
    for critic in critics:
        database.add("CRITIC", critic)

    for index in range(config.movies):
        movie = f"MOV{index:04d}"
        genre = generator.choice(GENRES, probabilities=(0.4, 0.35, 0.25))
        decade = generator.choice(DECADES, probabilities=(0.35, 0.65))
        director = generator.choice(directors)
        database.add("MOVIE", movie, genre, decade)
        database.add("DIRECTED", director, movie)

        liked_by_critic = False
        high_ratings = 0
        for _ in range(config.ratings_per_movie):
            viewer = generator.choice(viewers)
            band = generator.choice(RATING_BANDS, probabilities=(0.25, 0.4, 0.35))
            database.add("RATED", viewer, movie, band)
            if band == "high":
                high_ratings += 1
                if viewer in critics:
                    liked_by_critic = True

        promoted = (genre == "drama" and liked_by_critic) or director in awarded
        if generator.boolean(config.label_noise):
            promoted = not promoted
        records.append(
            {
                "id": movie,
                "genre_code": float(GENRES.index(genre)),
                "is_recent": 1.0 if decade == "recent" else 0.0,
                "high_ratings": float(high_ratings),
                "director_awarded": 1.0 if director in awarded else 0.0,
                "label": 1 if promoted else -1,
            }
        )

    dataset = TabularDataset.from_records(
        records,
        key_column="id",
        label_column="label",
        feature_columns=("genre_code", "is_recent", "high_ratings", "director_awarded"),
        name=f"movie_dataset_{config.movies}",
    )
    return Workload(
        name="movies",
        database=database,
        dataset=dataset,
        ground_truth="promoted iff (drama liked by a critic) or (directed by an awarded director)",
        parameters={"movies": config.movies, "seed": config.seed},
    )
