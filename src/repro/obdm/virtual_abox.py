"""Retrieval of the virtual ABox.

Given a mapping ``M`` and a source database ``D``, the *retrieved* (or
virtual) ABox ``A(M, D)`` is the set of ontology facts obtained by
applying every mapping assertion to ``D``.  Under sound mappings, the
models of ``<J, D>`` are exactly the models of the DL knowledge base
``<O, A(M, D)>``, which is why certain answers can be computed by
rewriting over the retrieved ABox (split approach) or by saturating it
(chase approach).

The :class:`VirtualABox` wrapper keeps the retrieved facts together with
a fact index so repeated query evaluations (the explanation framework
evaluates many candidate queries over the same border) are cheap.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..queries.atoms import Atom
from ..queries.evaluation import FactIndex
from .database import SourceDatabase
from .mapping import Mapping


class VirtualABox:
    """The ontology-level facts retrieved from a source database."""

    def __init__(self, facts: Iterable[Atom], source_name: str = "D"):
        self._facts: FrozenSet[Atom] = frozenset(facts)
        self.source_name = source_name
        self._index: Optional[FactIndex] = None
        self._sorted: Optional[Tuple[Atom, ...]] = None

    @property
    def facts(self) -> FrozenSet[Atom]:
        return self._facts

    @property
    def index(self) -> FactIndex:
        if self._index is None:
            self._index = FactIndex(self._facts)
        return self._index

    def __getstate__(self):
        # The fact index and the sorted view are derivable content:
        # pickling them would only fatten snapshots and shard payloads
        # (the same discipline as Border's cached hash/atom union).
        # Both are rebuilt lazily in the receiving process.
        state = dict(self.__dict__)
        state["_index"] = None
        state["_sorted"] = None
        return state

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self):
        # Sorting thousands of retrieved facts on *every* iteration made
        # repeated scans quadratic in practice; the fact set is frozen,
        # so the sorted view is computed once and cached.
        if self._sorted is None:
            self._sorted = tuple(sorted(self._facts))
        return iter(self._sorted)

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def predicates(self) -> Set[str]:
        return {fact.predicate for fact in self._facts}

    def __str__(self):
        return f"VirtualABox({len(self)} facts from {self.source_name!r})"


def retrieve_abox(mapping: Mapping, database: SourceDatabase) -> VirtualABox:
    """Apply the mapping to the database and wrap the result.

    The mapping's facts are consumed as a stream
    (:meth:`~repro.obdm.mapping.Mapping.iter_apply`): on a pushdown
    backend the retrieved ABox is the only thing materialised — never
    the source fact set, a fact index, or a catalog copy.
    """
    return VirtualABox(mapping.iter_apply(database), source_name=database.name)
