"""Source schemas ``S`` for OBDM specifications.

A source schema declares the relation names of the data layer together
with their arities and (optionally) attribute names.  The schema is the
``S`` component of an OBDM specification ``J = <O, S, M>`` and is used
to validate source databases and mapping source queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import SchemaError, UnknownRelationError
from ..sql.catalog import Catalog
from ..sql.relation import RelationSchema


@dataclass(frozen=True)
class RelationSignature:
    """Name, arity and attribute names of a source relation."""

    name: str
    attributes: Tuple[str, ...]

    def __post_init__(self):
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        attributes = tuple(self.attributes)
        if not attributes:
            raise SchemaError(f"relation {self.name!r} needs at least one attribute")
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"relation {self.name!r} has duplicate attributes")
        object.__setattr__(self, "attributes", attributes)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __str__(self):
        return f"{self.name}({', '.join(self.attributes)})"


class SourceSchema:
    """The schema ``S`` of the data source: a set of relation signatures."""

    def __init__(self, relations: Iterable[RelationSignature] = (), name: str = "S"):
        self.name = name
        self._relations: Dict[str, RelationSignature] = {}
        for relation in relations:
            self.add_relation(relation)

    # -- construction -------------------------------------------------------

    def add_relation(self, relation: RelationSignature) -> None:
        if relation.name in self._relations:
            existing = self._relations[relation.name]
            if existing != relation:
                raise SchemaError(
                    f"conflicting declarations for relation {relation.name!r}: "
                    f"{existing} vs {relation}"
                )
            return
        self._relations[relation.name] = relation

    def declare(self, name: str, attributes: Sequence[str]) -> RelationSignature:
        """Declare a relation by name and attribute names."""
        signature = RelationSignature(name, tuple(attributes))
        self.add_relation(signature)
        return signature

    def declare_arity(self, name: str, arity: int) -> RelationSignature:
        """Declare a relation with synthetic attribute names ``a1..an``."""
        return self.declare(name, tuple(f"a{i + 1}" for i in range(arity)))

    # -- lookup ----------------------------------------------------------------

    def relation(self, name: str) -> RelationSignature:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(
                f"relation {name!r} is not part of schema {self.name!r}; "
                f"known relations: {sorted(self._relations)}"
            ) from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def arity_of(self, name: str) -> int:
        return self.relation(name).arity

    def relation_names(self) -> List[str]:
        return sorted(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __iter__(self) -> Iterator[RelationSignature]:
        for name in self.relation_names():
            yield self._relations[name]

    # -- conversions ---------------------------------------------------------------

    def to_catalog(self, name: Optional[str] = None) -> Catalog:
        """Create an empty catalog whose relations follow this schema."""
        catalog = Catalog(name or self.name)
        for signature in self:
            catalog.create_relation(signature.name, signature.attributes)
        return catalog

    @staticmethod
    def from_catalog(catalog: Catalog, name: Optional[str] = None) -> "SourceSchema":
        """Extract the schema of an existing catalog."""
        schema = SourceSchema(name=name or catalog.name)
        for relation_schema in catalog.schemas():
            schema.declare(relation_schema.name, relation_schema.attributes)
        return schema

    def __str__(self):
        rendered = ", ".join(str(signature) for signature in self)
        return f"SourceSchema({self.name!r}: {rendered})"
