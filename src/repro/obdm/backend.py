"""Pluggable storage backends for :class:`~repro.obdm.database.SourceDatabase`.

The seed stored every source database as in-memory Python dicts.  That
representation is perfect for the paper's examples but caps the system
at "fits in RAM": the ROADMAP's beyond-RAM open item asks for databases
whose fact sets never materialise as Python objects.  This module is
the seam: :class:`SourceDatabase` delegates all storage to a
:class:`StorageBackend` and keeps only schema validation and the
content-fingerprint accumulator for itself.

Two backends ship:

:class:`MemoryBackend`
    The seed's dict/set layout, extracted verbatim: a fact set plus
    by-predicate and by-constant indexes.  The default — every
    behaviour of the seed is preserved byte for byte.

:class:`SQLiteBackend`
    One table per relation over the stdlib ``sqlite3`` (columns
    ``c0..c{n-1}``, a composite primary key for set semantics and one
    index per column for constant lookups), in a temp file by default.
    Facts live on disk; Python only ever holds the rows a lookup
    returns.  The backend additionally supports **SQL pushdown**: a
    mapping source query (conjunctive query or relational algebra
    tree) is compiled to one SQLite ``SELECT`` and executed inside the
    database instead of materialising the fact set for the in-memory
    executor (:meth:`SQLiteBackend.execute_source`).

Values are stored under a canonical **tagged text encoding**
(:func:`encode_value` / :func:`decode_value`) whose equality matches
:class:`~repro.queries.terms.Constant` equality exactly: booleans are
tagged apart from the integers they coerce to, while an integral float
canonicalises to its integer form (``Constant(1) == Constant(1.0)``).
This makes SQLite's primary-key deduplication and ``WHERE`` equality
agree with the in-memory set semantics, which is what keeps
fingerprints and deltas byte-identical across backends.  One documented
deviation: pushed-down algebra conditions compare at *Constant*
granularity, so a literal ``1`` never equals a stored ``True`` (the
in-memory executor compares raw Python values, where ``True == 1``);
no domain mixes booleans with 0/1 integers in a source query.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import threading
from collections import OrderedDict
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..errors import SchemaError, UnknownRelationError
from ..queries.atoms import Atom
from ..queries.cq import ConjunctiveQuery
from ..queries.terms import Constant, is_constant, is_variable
from ..queries.ucq import query_key
from ..sql.algebra import (
    AlgebraNode,
    Condition,
    CrossProduct,
    Project,
    Rename,
    Scan,
    Select,
    Union as AlgebraUnion,
)
from ..sql.relation import RelationSchema

Value = Union[str, int, float, bool]

_FETCH_BATCH = 1024


class PushdownUnsupported(Exception):
    """Raised when a source query cannot be compiled to backend SQL.

    The mapping layer catches this and falls back to the in-memory
    executor over a materialised catalog, so an exotic query is slower,
    never wrong.
    """


# ---------------------------------------------------------------------------
# value codec
# ---------------------------------------------------------------------------


def encode_value(value: Value) -> str:
    """Canonical tagged text encoding of one database value.

    ``encode_value(a) == encode_value(b)`` iff ``Constant(a) ==
    Constant(b)``: booleans carry their own tag (``bool`` is an ``int``
    subclass, but ``Constant(True) != Constant(1)``), and an integral
    float collapses onto the integer tag (``Constant(1) ==
    Constant(1.0)``), so storage-level deduplication reproduces the
    in-memory set semantics exactly.
    """
    if isinstance(value, bool):
        return "b:1" if value else "b:0"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        if value.is_integer():
            return f"i:{int(value)}"
        return f"f:{value!r}"
    if isinstance(value, str):
        return f"s:{value}"
    raise SchemaError(f"unsupported database value type: {type(value).__name__}")


def decode_value(text: str) -> Value:
    """Inverse of :func:`encode_value` (up to Constant equality)."""
    tag, payload = text[0], text[2:]
    if tag == "s":
        return payload
    if tag == "i":
        return int(payload)
    if tag == "f":
        return float(payload)
    if tag == "b":
        return payload == "1"
    raise SchemaError(f"corrupt encoded value {text!r}")


def encode_constants(args: Sequence[Constant]) -> bytes:
    """Length-prefixed binary encoding of a constant tuple.

    Shared with the spill-mode argument store of
    :class:`~repro.engine.kernel.UnifiedBorderIndex`: each value is the
    UTF-8 bytes of its tagged encoding behind a 4-byte little-endian
    length, so tuples concatenate without separator collisions.
    """
    parts: List[bytes] = []
    for constant in args:
        data = encode_value(constant.value).encode("utf-8")
        parts.append(len(data).to_bytes(4, "little"))
        parts.append(data)
    return b"".join(parts)


def decode_constants(blob: bytes) -> Tuple[Constant, ...]:
    """Inverse of :func:`encode_constants`."""
    out: List[Constant] = []
    position = 0
    total = len(blob)
    while position < total:
        length = int.from_bytes(blob[position : position + 4], "little")
        position += 4
        out.append(Constant(decode_value(blob[position : position + length].decode("utf-8"))))
        position += length
    return tuple(out)


# ---------------------------------------------------------------------------
# the backend protocol
# ---------------------------------------------------------------------------


class StorageBackend:
    """Storage protocol behind :class:`~repro.obdm.database.SourceDatabase`.

    A backend stores ground atoms and answers indexed point lookups; it
    never validates against a schema (that stays in ``SourceDatabase``)
    and never maintains the content fingerprint (the database XORs
    per-fact digests around :meth:`add` / :meth:`remove`, which is what
    makes fingerprints backend-independent for free).  ``add`` and
    ``remove`` report whether they changed anything, so the owner can
    digest exactly the facts that entered or left storage.
    """

    kind: str = "abstract"
    supports_pushdown: bool = False

    def add(self, fact: Atom) -> bool:
        raise NotImplementedError

    def remove(self, fact: Atom) -> bool:
        raise NotImplementedError

    def __contains__(self, fact: Atom) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def iter_facts(self) -> Iterator[Atom]:
        raise NotImplementedError

    def facts_with_predicate(self, predicate: str) -> FrozenSet[Atom]:
        raise NotImplementedError

    def facts_with_constant(self, constant: Constant) -> FrozenSet[Atom]:
        raise NotImplementedError

    def facts_with_any_constant(self, constants: Iterable[Constant]) -> FrozenSet[Atom]:
        """Atoms mentioning *any* of the constants (one batched lookup).

        The border computer expands whole BFS frontiers through this —
        per-constant loops would cost one query per constant on a disk
        backend.
        """
        raise NotImplementedError

    def predicates(self) -> FrozenSet[str]:
        raise NotImplementedError

    def domain(self) -> FrozenSet[Constant]:
        raise NotImplementedError

    def close(self) -> None:
        """Release external resources (files, connections); idempotent."""


class MemoryBackend(StorageBackend):
    """The seed's in-memory layout: a fact set plus two dict indexes."""

    kind = "memory"

    def __init__(self):
        self._facts: Set[Atom] = set()
        self._by_predicate: Dict[str, Set[Atom]] = {}
        self._by_constant: Dict[Constant, Set[Atom]] = {}

    def add(self, fact: Atom) -> bool:
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._by_predicate.setdefault(fact.predicate, set()).add(fact)
        for argument in fact.args:
            self._by_constant.setdefault(argument, set()).add(fact)
        return True

    def remove(self, fact: Atom) -> bool:
        if fact not in self._facts:
            return False
        self._facts.discard(fact)
        bucket = self._by_predicate[fact.predicate]
        bucket.discard(fact)
        if not bucket:
            del self._by_predicate[fact.predicate]
        for argument in set(fact.args):
            owners = self._by_constant[argument]
            owners.discard(fact)
            if not owners:
                del self._by_constant[argument]
        return True

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def iter_facts(self) -> Iterator[Atom]:
        return iter(self._facts)

    def facts_with_predicate(self, predicate: str) -> FrozenSet[Atom]:
        return frozenset(self._by_predicate.get(predicate, ()))

    def facts_with_constant(self, constant: Constant) -> FrozenSet[Atom]:
        return frozenset(self._by_constant.get(constant, ()))

    def facts_with_any_constant(self, constants: Iterable[Constant]) -> FrozenSet[Atom]:
        collected: Set[Atom] = set()
        for constant in constants:
            bucket = self._by_constant.get(constant)
            if bucket:
                collected |= bucket
        return frozenset(collected)

    def predicates(self) -> FrozenSet[str]:
        return frozenset(self._by_predicate)

    def domain(self) -> FrozenSet[Constant]:
        return frozenset(self._by_constant)


# ---------------------------------------------------------------------------
# SQLite backend
# ---------------------------------------------------------------------------


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


class SQLiteBackend(StorageBackend):
    """Facts in SQLite: one table per relation, indexed per column.

    A relation ``R`` of arity ``n`` becomes table ``fact_R`` with
    ``TEXT`` columns ``c0..c{n-1}`` holding tagged value encodings, a
    composite primary key over all columns (``WITHOUT ROWID`` — the
    fact *is* the key, set semantics come from ``INSERT OR IGNORE``)
    and one secondary index per column, so both primitives behind the
    explanation framework — facts of a predicate, facts mentioning a
    constant — are index lookups.

    The connection lives in a temp file by default (deleted on
    :meth:`close`/GC) and is shared across threads behind a lock:
    callers like the batch explainer's thread pool only ever read
    concurrently, and mutation is serialised a level up by the service.
    Pickling round-trips by value (dump facts, rebuild a fresh temp
    database on the other side) — a convenience for the process
    executor's small sharded pools, not a way to ship a big database.
    """

    kind = "sqlite"

    def __init__(self, path: Optional[str] = None, pushdown: bool = True):
        self.pushdown = pushdown
        self._owns_file = path is None
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro_sqlite_", suffix=".db")
            os.close(handle)
        self.path = path
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._connection.execute("PRAGMA journal_mode=MEMORY")
        self._connection.execute("PRAGMA synchronous=OFF")
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS meta_relations ("
            "name TEXT PRIMARY KEY, arity INTEGER NOT NULL)"
        )
        self._arities: Dict[str, int] = {}
        self._counts: Dict[str, int] = {}
        for name, arity in self._connection.execute(
            "SELECT name, arity FROM meta_relations"
        ).fetchall():
            self._arities[name] = arity
            (count,), = self._connection.execute(
                f"SELECT COUNT(*) FROM {self._table(name)}"
            ).fetchall()
            self._counts[name] = count
        # Whole-rewriting pushdown state: registered ABoxes (content-
        # addressed by their fact set, LRU-bounded with DELETE-on-evict)
        # and compiled per-(rewriting, abox) disjunct plans.
        self._abox_ids: "OrderedDict[FrozenSet[Atom], Tuple[int, Dict[str, int], Dict[str, int]]]" = OrderedDict()
        self._abox_arities: Dict[str, int] = {}
        self._next_abox_id = 1
        self._ucq_plans: Dict[Tuple, List] = {}

    @property
    def supports_pushdown(self) -> bool:
        return self.pushdown

    @property
    def supports_ucq_pushdown(self) -> bool:
        """Whether whole-rewriting certain-answer pushdown is available."""
        return self.pushdown

    # -- schema ----------------------------------------------------------

    @staticmethod
    def _table(predicate: str) -> str:
        return _quote(f"fact_{predicate}")

    def _ensure_table(self, predicate: str, arity: int) -> None:
        known = self._arities.get(predicate)
        if known is not None:
            if known != arity:
                raise SchemaError(
                    f"relation {predicate!r} stored with arity {known}, got {arity}"
                )
            return
        columns = ", ".join(f"c{i} TEXT NOT NULL" for i in range(arity))
        key = ", ".join(f"c{i}" for i in range(arity))
        table = self._table(predicate)
        self._connection.execute(
            f"CREATE TABLE IF NOT EXISTS {table} ({columns}, "
            f"PRIMARY KEY ({key})) WITHOUT ROWID"
        )
        for i in range(arity):
            index_name = _quote(f"idx_fact_{predicate}_c{i}")
            self._connection.execute(
                f"CREATE INDEX IF NOT EXISTS {index_name} ON {table} (c{i})"
            )
        self._connection.execute(
            "INSERT OR REPLACE INTO meta_relations (name, arity) VALUES (?, ?)",
            (predicate, arity),
        )
        self._arities[predicate] = arity
        self._counts.setdefault(predicate, 0)

    # -- mutation --------------------------------------------------------

    def _encoded(self, fact: Atom) -> Tuple[str, ...]:
        return tuple(encode_value(argument.value) for argument in fact.args)

    def add(self, fact: Atom) -> bool:
        with self._lock:
            self._ensure_table(fact.predicate, fact.arity)
            placeholders = ", ".join("?" for _ in fact.args)
            cursor = self._connection.execute(
                f"INSERT OR IGNORE INTO {self._table(fact.predicate)} "
                f"VALUES ({placeholders})",
                self._encoded(fact),
            )
            if cursor.rowcount == 1:
                self._counts[fact.predicate] += 1
                return True
            return False

    def remove(self, fact: Atom) -> bool:
        with self._lock:
            if self._arities.get(fact.predicate) != fact.arity:
                return False
            condition = " AND ".join(f"c{i} = ?" for i in range(fact.arity))
            cursor = self._connection.execute(
                f"DELETE FROM {self._table(fact.predicate)} WHERE {condition}",
                self._encoded(fact),
            )
            if cursor.rowcount == 1:
                self._counts[fact.predicate] -= 1
                return True
            return False

    # -- lookups ---------------------------------------------------------

    def __contains__(self, fact: Atom) -> bool:
        with self._lock:
            if self._arities.get(fact.predicate) != fact.arity:
                return False
            condition = " AND ".join(f"c{i} = ?" for i in range(fact.arity))
            rows = self._connection.execute(
                f"SELECT 1 FROM {self._table(fact.predicate)} WHERE {condition} LIMIT 1",
                self._encoded(fact),
            ).fetchall()
            return bool(rows)

    def __len__(self) -> int:
        return sum(self._counts.values())

    def _decode_row(self, predicate: str, row: Sequence[str]) -> Atom:
        return Atom(predicate, tuple(Constant(decode_value(text)) for text in row))

    def iter_facts(self) -> Iterator[Atom]:
        for predicate in sorted(self._arities):
            if not self._counts.get(predicate):
                continue
            with self._lock:
                cursor = self._connection.execute(
                    f"SELECT * FROM {self._table(predicate)}"
                )
            while True:
                with self._lock:
                    batch = cursor.fetchmany(_FETCH_BATCH)
                if not batch:
                    break
                for row in batch:
                    yield self._decode_row(predicate, row)

    def facts_with_predicate(self, predicate: str) -> FrozenSet[Atom]:
        if not self._counts.get(predicate):
            return frozenset()
        with self._lock:
            rows = self._connection.execute(
                f"SELECT * FROM {self._table(predicate)}"
            ).fetchall()
        return frozenset(self._decode_row(predicate, row) for row in rows)

    def facts_with_constant(self, constant: Constant) -> FrozenSet[Atom]:
        return self.facts_with_any_constant((constant,))

    def facts_with_any_constant(self, constants: Iterable[Constant]) -> FrozenSet[Atom]:
        encoded = sorted({encode_value(constant.value) for constant in constants})
        if not encoded:
            return frozenset()
        collected: Set[Atom] = set()
        # Chunk the IN lists: SQLite's default parameter ceiling is 999,
        # and a radius-r frontier can mention thousands of constants.
        chunk_size = 400
        for predicate, arity in sorted(self._arities.items()):
            if not self._counts.get(predicate):
                continue
            table = self._table(predicate)
            for start in range(0, len(encoded), chunk_size):
                chunk = encoded[start : start + chunk_size]
                marks = ", ".join("?" for _ in chunk)
                condition = " OR ".join(f"c{i} IN ({marks})" for i in range(arity))
                with self._lock:
                    rows = self._connection.execute(
                        f"SELECT * FROM {table} WHERE {condition}",
                        tuple(chunk) * arity,
                    ).fetchall()
                for row in rows:
                    collected.add(self._decode_row(predicate, row))
        return frozenset(collected)

    def predicates(self) -> FrozenSet[str]:
        return frozenset(
            predicate for predicate, count in self._counts.items() if count
        )

    def domain(self) -> FrozenSet[Constant]:
        collected: Set[Constant] = set()
        for predicate, arity in sorted(self._arities.items()):
            if not self._counts.get(predicate):
                continue
            table = self._table(predicate)
            for i in range(arity):
                with self._lock:
                    rows = self._connection.execute(
                        f"SELECT DISTINCT c{i} FROM {table}"
                    ).fetchall()
                for (text,) in rows:
                    collected.add(Constant(decode_value(text)))
        return frozenset(collected)

    # -- SQL pushdown ----------------------------------------------------

    def execute_source(self, query, schema=None) -> Iterator[Tuple[Value, ...]]:
        """Run a mapping source query inside SQLite, streaming answers.

        *query* is a :class:`~repro.queries.cq.ConjunctiveQuery` or an
        algebra tree; *schema* (a ``SourceSchema``) supplies attribute
        names for algebra ``Scan`` nodes.  Compilation happens eagerly —
        :class:`PushdownUnsupported` is raised before the first row, so
        the mapping layer can fall back to the in-memory executor.
        Answer tuples are decoded to raw Python values and deduplicated
        by ``DISTINCT`` (set semantics, like the in-memory paths).
        """
        if isinstance(query, ConjunctiveQuery):
            compiled = self._compile_cq(query)
        elif isinstance(query, AlgebraNode):
            compiled = _AlgebraCompiler(self, schema).compile(query)
            compiled = (f"SELECT * FROM ({compiled.sql})", compiled.params)
        else:
            raise PushdownUnsupported(f"cannot push down {type(query).__name__}")
        if compiled is None:
            return iter(())
        sql, params = compiled
        return self._stream(sql, params)

    def _stream(self, sql: str, params: Sequence) -> Iterator[Tuple[Value, ...]]:
        with self._lock:
            cursor = self._connection.execute(sql, tuple(params))
        while True:
            with self._lock:
                batch = cursor.fetchmany(_FETCH_BATCH)
            if not batch:
                return
            for row in batch:
                yield tuple(decode_value(text) for text in row)

    def _compile_cq(self, query: ConjunctiveQuery):
        """CQ → one SELECT: body atoms as scans, joins on shared variables."""
        if not query.head:
            raise PushdownUnsupported("boolean CQ sources stay on the legacy path")
        conditions: List[str] = []
        params: List[str] = []
        tables: List[str] = []
        variable_site: Dict = {}
        for i, atom in enumerate(query.body):
            arity = self._arities.get(atom.predicate)
            if arity != atom.arity or not self._counts.get(atom.predicate):
                # No stored fact can match this atom, so the CQ is empty
                # (the in-memory evaluator reaches the same answer via an
                # empty candidate bucket).
                return None
            tables.append(f"{self._table(atom.predicate)} AS t{i}")
            for j, argument in enumerate(atom.args):
                column = f"t{i}.c{j}"
                if is_constant(argument):
                    conditions.append(f"{column} = ?")
                    params.append(encode_value(argument.value))
                elif argument in variable_site:
                    conditions.append(f"{column} = {variable_site[argument]}")
                else:
                    variable_site[argument] = column
        head_columns = ", ".join(
            f"{variable_site[variable]} AS h{i}"
            for i, variable in enumerate(query.head)
        )
        sql = f"SELECT DISTINCT {head_columns} FROM {', '.join(tables)}"
        if conditions:
            sql += f" WHERE {' AND '.join(conditions)}"
        return sql, params

    # -- whole-rewriting pushdown ----------------------------------------
    #
    # The perfect rewriting of a certain-answer check is a UCQ evaluated
    # over one (border or retrieved) ABox.  Instead of round-tripping
    # every ABox fact back into Python homomorphism search, the ABox is
    # registered once into per-ontology-predicate tables (``abox_<pred>``,
    # an integer ABox id as the leading key — the pushed-down border
    # restriction) and the whole UCQ compiles to one SQL statement: each
    # disjunct a self-join SELECT reusing the ``_compile_cq`` machinery,
    # disjuncts combined with UNION.

    _ABOX_CAPACITY = 64

    @staticmethod
    def _abox_table(predicate: str) -> str:
        return _quote(f"abox_{predicate}")

    def _ensure_abox_table(self, predicate: str, arity: int) -> None:
        known = self._abox_arities.get(predicate)
        if known is not None:
            if known != arity:
                raise PushdownUnsupported(
                    f"ABox predicate {predicate!r} seen with arity {known} "
                    f"and {arity}"
                )
            return
        columns = ", ".join(f"c{i} TEXT NOT NULL" for i in range(arity))
        key = ", ".join(["a"] + [f"c{i}" for i in range(arity)])
        table = self._abox_table(predicate)
        self._connection.execute(
            f"CREATE TABLE IF NOT EXISTS {table} (a INTEGER NOT NULL, "
            f"{columns}, PRIMARY KEY ({key})) WITHOUT ROWID"
        )
        for i in range(arity):
            index_name = _quote(f"idx_abox_{predicate}_c{i}")
            self._connection.execute(
                f"CREATE INDEX IF NOT EXISTS {index_name} ON {table} (a, c{i})"
            )
        self._abox_arities[predicate] = arity

    def _register_abox(self, facts: FrozenSet[Atom]) -> Tuple[int, Dict[str, int], Dict[str, int]]:
        """Load *facts* into the ABox tables once; return (id, counts, arities).

        Content-addressed by the fact set itself: re-registering a warm
        ABox is an ``OrderedDict`` touch.  The registry is LRU-bounded at
        ``_ABOX_CAPACITY``; eviction DELETEs the evicted id's rows (and
        its compiled plans), so the tables never outgrow the working set.
        Must be called under ``self._lock``.
        """
        entry = self._abox_ids.get(facts)
        if entry is not None:
            self._abox_ids.move_to_end(facts)
            return entry
        arities: Dict[str, int] = {}
        for fact in facts:
            known = arities.setdefault(fact.predicate, fact.arity)
            if known != fact.arity:
                raise PushdownUnsupported(
                    f"ABox predicate {fact.predicate!r} has mixed arities"
                )
            if not all(is_constant(argument) for argument in fact.args):
                raise PushdownUnsupported("non-ground ABox fact")
        for predicate, arity in sorted(arities.items()):
            self._ensure_abox_table(predicate, arity)
        abox_id = self._next_abox_id
        self._next_abox_id += 1
        counts: Dict[str, int] = {}
        for fact in facts:
            placeholders = ", ".join("?" for _ in range(fact.arity + 1))
            cursor = self._connection.execute(
                f"INSERT OR IGNORE INTO {self._abox_table(fact.predicate)} "
                f"VALUES ({placeholders})",
                (abox_id,) + self._encoded(fact),
            )
            if cursor.rowcount == 1:
                counts[fact.predicate] = counts.get(fact.predicate, 0) + 1
        entry = (abox_id, counts, arities)
        self._abox_ids[facts] = entry
        while len(self._abox_ids) > self._ABOX_CAPACITY:
            _, (evicted, evicted_counts, _evicted_arities) = self._abox_ids.popitem(
                last=False
            )
            for predicate in evicted_counts:
                self._connection.execute(
                    f"DELETE FROM {self._abox_table(predicate)} WHERE a = ?",
                    (evicted,),
                )
            self._ucq_plans = {
                key: plans
                for key, plans in self._ucq_plans.items()
                if key[1] != evicted
            }
        return entry

    def _compile_disjunct(self, cq: ConjunctiveQuery, abox_id: int, counts, arities):
        """One rewritten CQ disjunct → a self-join SELECT over ABox tables.

        Returns ``(sql, params, head_sites)`` or ``None`` when no
        registered fact can match some body atom (the in-memory
        evaluator reaches the same answer via an empty candidate
        bucket).  The ABox restriction is the pushed-down ``t{i}.a = ?``
        filter on every scanned table.
        """
        conditions: List[str] = []
        params: List = []
        tables: List[str] = []
        variable_site: Dict = {}
        for i, atom in enumerate(cq.body):
            if arities.get(atom.predicate) != atom.arity or not counts.get(atom.predicate):
                return None
            tables.append(f"{self._abox_table(atom.predicate)} AS t{i}")
            conditions.append(f"t{i}.a = ?")
            params.append(abox_id)
            for j, argument in enumerate(atom.args):
                column = f"t{i}.c{j}"
                if is_constant(argument):
                    conditions.append(f"{column} = ?")
                    params.append(encode_value(argument.value))
                elif argument in variable_site:
                    conditions.append(f"{column} = {variable_site[argument]}")
                else:
                    variable_site[argument] = column
        head_sites: List[str] = []
        for variable in cq.head:
            site = variable_site.get(variable)
            if site is None:
                raise PushdownUnsupported(
                    f"head variable {variable} not bound in the body"
                )
            head_sites.append(site)
        if head_sites:
            head_columns = ", ".join(
                f"{site} AS h{i}" for i, site in enumerate(head_sites)
            )
        else:
            head_columns = "1 AS h0"
        sql = (
            f"SELECT DISTINCT {head_columns} FROM {', '.join(tables)} "
            f"WHERE {' AND '.join(conditions)}"
        )
        return sql, tuple(params), tuple(head_sites)

    def _plan_ucq(self, query, facts: FrozenSet[Atom]) -> List:
        """Compiled disjunct plans for (*query*, *facts*), memoized.

        Must be called under ``self._lock``.  An empty list means every
        disjunct is unsatisfiable over this ABox.
        """
        if self._connection is None:
            raise PushdownUnsupported("backend is closed")
        if not self.pushdown:
            raise PushdownUnsupported("pushdown disabled on this backend")
        abox_id, counts, arities = self._register_abox(facts)
        memo_key = (query_key(query), abox_id)
        plans = self._ucq_plans.get(memo_key)
        if plans is None:
            disjuncts = getattr(query, "disjuncts", None) or (query,)
            plans = []
            for cq in disjuncts:
                plan = self._compile_disjunct(cq, abox_id, counts, arities)
                if plan is not None:
                    plans.append(plan)
            self._ucq_plans[memo_key] = plans
        return plans

    def ucq_certain_answers(self, query, facts: FrozenSet[Atom]) -> Set[Tuple[Constant, ...]]:
        """All answers of a rewritten UCQ over *facts*: one sqlite3 execution.

        Byte-identical to ``query.evaluate(facts)``: per-disjunct
        ``SELECT DISTINCT`` joined with ``UNION`` reproduces set
        semantics, and the tagged codec round-trips every value to a
        ``Constant`` equal to the in-memory one.
        """
        with self._lock:
            plans = self._plan_ucq(query, facts)
            if not plans:
                return set()
            sql = " UNION ".join(sql for sql, _, _ in plans)
            params = tuple(p for _, ps, _ in plans for p in ps)
            rows = self._connection.execute(sql, params).fetchall()
        if not rows:
            return set()
        if not plans[0][2]:  # boolean query: rows carry the literal 1
            return {()}
        return {
            tuple(Constant(decode_value(text)) for text in row) for row in rows
        }

    def ucq_contains_tuple(self, query, answer: Sequence[Constant], facts: FrozenSet[Atom]) -> bool:
        """Membership check of *answer* pushed down as constant filters.

        The answer constants become per-disjunct equality conditions on
        the head sites (duplicate head variables contribute one
        condition per occurrence, so a conflicting binding is correctly
        empty — legacy ``contains_tuple`` parity), and the whole UNION
        runs under ``LIMIT 1``.
        """
        encoded = tuple(encode_value(constant.value) for constant in answer)
        with self._lock:
            plans = self._plan_ucq(query, facts)
            selects: List[str] = []
            params: List = []
            for sql, base_params, sites in plans:
                if len(sites) != len(encoded):
                    # Arity mismatch: this disjunct can never contain the
                    # tuple (legacy contains_tuple returns False).
                    continue
                if sites:
                    bound = " AND ".join(f"{site} = ?" for site in sites)
                    sql = f"{sql} AND {bound}"
                selects.append(sql)
                params.extend(base_params)
                params.extend(encoded if sites else ())
            if not selects:
                return False
            full = " UNION ".join(selects) + " LIMIT 1"
            rows = self._connection.execute(full, tuple(params)).fetchall()
        return bool(rows)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        connection, self._connection = getattr(self, "_connection", None), None
        if connection is not None:
            try:
                connection.close()
            except Exception:
                pass
        if self._owns_file and self.path and os.path.exists(self.path):
            try:
                os.unlink(self.path)
            except OSError:
                pass
            self._owns_file = False

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __getstate__(self):
        # Round-trip by value: a rebuilt temp database on the receiving
        # side.  Meant for the process executor's small sharded pools.
        return {
            "pushdown": self.pushdown,
            "facts": sorted(self.iter_facts()),
            "arities": dict(self._arities),
        }

    def __setstate__(self, state):
        self.__init__(pushdown=state["pushdown"])
        for predicate, arity in sorted(state["arities"].items()):
            self._ensure_table(predicate, arity)
        for fact in state["facts"]:
            self.add(fact)


class _Compiled:
    """One compiled algebra node: SQL text, parameters, output attributes."""

    __slots__ = ("sql", "params", "attributes")

    def __init__(self, sql: str, params: Tuple, attributes: Tuple[str, ...]):
        self.sql = sql
        self.params = params
        self.attributes = attributes


def _attribute_position(reference: str, attributes: Sequence[str]) -> int:
    """Resolve an attribute reference like the in-memory algebra does.

    Exact match first, then a unique bare-name suffix match; unknown and
    ambiguous references raise the same :class:`SchemaError` messages as
    :meth:`repro.sql.algebra.Condition.resolve`.
    """
    if reference in attributes:
        return list(attributes).index(reference)
    matches = [i for i, a in enumerate(attributes) if a.split(".")[-1] == reference]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise SchemaError(f"unknown attribute {reference!r} among {list(attributes)}")
    raise SchemaError(f"ambiguous attribute {reference!r} among {list(attributes)}")


class _AlgebraCompiler:
    """Compile select-project-join-union-rename trees to SQLite SQL.

    Every compiled node exposes positional output columns ``k0..k{n-1}``
    (attribute names are tracked Python-side, sidestepping quoting of
    dotted references) and produces a deduplicated relation, matching
    the set semantics of :class:`~repro.sql.relation.Relation` at every
    node: scans are deduplicated by primary key, projections and unions
    say ``DISTINCT``/``UNION``, and the remaining operators preserve
    deduplication.
    """

    def __init__(self, backend: SQLiteBackend, schema):
        self._backend = backend
        self._schema = schema
        self._aliases = 0

    def _alias(self) -> str:
        self._aliases += 1
        return f"s{self._aliases}"

    def compile(self, node: AlgebraNode) -> _Compiled:
        if isinstance(node, Scan):
            return self._scan(node)
        if isinstance(node, Select):
            return self._select(node)
        if isinstance(node, Project):
            return self._project(node)
        if isinstance(node, CrossProduct):
            return self._cross(node)
        if isinstance(node, AlgebraUnion):
            return self._union(node)
        if isinstance(node, Rename):
            return self._rename(node)
        raise PushdownUnsupported(
            f"no SQL translation for algebra node {type(node).__name__}"
        )

    def _scan(self, node: Scan) -> _Compiled:
        if self._schema is None or not self._schema.has_relation(node.relation_name):
            raise UnknownRelationError(
                f"unknown relation {node.relation_name!r} in source schema"
            )
        signature = self._schema.relation(node.relation_name)
        label = node.alias or node.relation_name
        attributes = tuple(f"{label}.{a}" for a in signature.attributes)
        columns = ", ".join(f"c{i} AS k{i}" for i in range(signature.arity))
        if self._backend._counts.get(node.relation_name):
            sql = f"SELECT {columns} FROM {self._backend._table(node.relation_name)}"
        else:
            empty = ", ".join(f"NULL AS k{i}" for i in range(signature.arity))
            sql = f"SELECT {empty} WHERE 0"
        return _Compiled(sql, (), attributes)

    def _condition_sql(
        self, condition: Condition, alias: str, attributes: Sequence[str]
    ) -> Tuple[str, Tuple]:
        params: List[str] = []

        def side(value, is_attribute: bool) -> str:
            if is_attribute:
                position = _attribute_position(str(value), attributes)
                return f"{alias}.k{position}"
            params.append(encode_value(value))
            return "?"

        left = side(condition.left, condition.left_is_attribute)
        right = side(condition.right, condition.right_is_attribute)
        return f"{left} = {right}", tuple(params)

    def _select(self, node: Select) -> _Compiled:
        child = self.compile(node.child)
        alias = self._alias()
        clauses: List[str] = []
        params: List = list(child.params)
        for condition in node.conditions:
            clause, clause_params = self._condition_sql(
                condition, alias, child.attributes
            )
            clauses.append(clause)
            params.extend(clause_params)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        sql = f"SELECT * FROM ({child.sql}) AS {alias}{where}"
        return _Compiled(sql, tuple(params), child.attributes)

    def _project(self, node: Project) -> _Compiled:
        child = self.compile(node.child)
        # Validate the output attribute list exactly like the in-memory
        # Project (duplicate names raise the same SchemaError).
        RelationSchema("projection", tuple(node.attributes))
        alias = self._alias()
        columns = ", ".join(
            f"{alias}.k{_attribute_position(reference, child.attributes)} AS k{i}"
            for i, reference in enumerate(node.attributes)
        )
        sql = f"SELECT DISTINCT {columns} FROM ({child.sql}) AS {alias}"
        return _Compiled(sql, child.params, tuple(node.attributes))

    def _cross(self, node: CrossProduct) -> _Compiled:
        left = self.compile(node.left)
        right = self.compile(node.right)
        attributes = left.attributes + right.attributes
        if len(set(attributes)) != len(attributes):
            raise SchemaError(
                "cross product would produce duplicate attribute names; "
                "use aliases to disambiguate"
            )
        left_alias, right_alias = self._alias(), self._alias()
        columns = ", ".join(
            [f"{left_alias}.k{i} AS k{i}" for i in range(len(left.attributes))]
            + [
                f"{right_alias}.k{i} AS k{i + len(left.attributes)}"
                for i in range(len(right.attributes))
            ]
        )
        sql = (
            f"SELECT {columns} FROM ({left.sql}) AS {left_alias}, "
            f"({right.sql}) AS {right_alias}"
        )
        return _Compiled(sql, left.params + right.params, attributes)

    def _union(self, node: AlgebraUnion) -> _Compiled:
        left = self.compile(node.left)
        right = self.compile(node.right)
        if len(left.attributes) != len(right.attributes):
            raise SchemaError(
                f"union of incompatible arities: {len(left.attributes)} vs "
                f"{len(right.attributes)}"
            )
        left_alias, right_alias = self._alias(), self._alias()
        sql = (
            f"SELECT * FROM ({left.sql}) AS {left_alias} "
            f"UNION SELECT * FROM ({right.sql}) AS {right_alias}"
        )
        return _Compiled(sql, left.params + right.params, left.attributes)

    def _rename(self, node: Rename) -> _Compiled:
        child = self.compile(node.child)
        if len(node.attributes) != len(child.attributes):
            raise SchemaError(
                f"rename expects {len(child.attributes)} attribute names, "
                f"got {len(node.attributes)}"
            )
        return _Compiled(child.sql, child.params, tuple(node.attributes))


_BACKENDS = {"memory": MemoryBackend, "sqlite": SQLiteBackend}

BackendSpec = Union[None, str, StorageBackend]


def resolve_backend(backend: BackendSpec) -> StorageBackend:
    """Materialise a backend from ``None``/name/instance specifications."""
    if backend is None:
        return MemoryBackend()
    if isinstance(backend, StorageBackend):
        return backend
    if isinstance(backend, str):
        try:
            return _BACKENDS[backend]()
        except KeyError:
            raise SchemaError(
                f"unknown storage backend {backend!r}; available: {sorted(_BACKENDS)}"
            ) from None
    raise SchemaError(f"unsupported storage backend specification: {backend!r}")
