"""Source databases ``D``: finite sets of ground atoms over a schema ``S``.

The paper (Section 2) defines an ``S``-database as a finite set of atoms
``s(c)`` where ``s`` is a predicate of ``S``.  :class:`SourceDatabase`
stores exactly that behind a pluggable :class:`~repro.obdm.backend.StorageBackend`
(``backend="memory"`` keeps the seed's dict layout; ``backend="sqlite"``
keeps facts on disk and pushes mapping source queries down as SQL), and
maintains the two access paths the explanation framework needs:

* a by-predicate lookup, used by query evaluation;
* a by-constant lookup (constant → atoms mentioning it), which makes the
  border computation of Definition 3.2 a sequence of index lookups
  instead of database scans (:meth:`facts_with_any_constant` batches a
  whole BFS frontier into one backend round trip).

Production traffic mutates the database, so the class also supports
**fact-level deltas**: :class:`DatabaseDelta` carries a normalised set
of added/removed ground atoms and :meth:`SourceDatabase.apply_delta`
applies it in place, maintaining the backend and a **content
fingerprint**.  The fingerprint is an order-independent XOR accumulator
of per-fact digests over a *canonical, type-tagged* serialisation
(sha256 — never Python's salted ``hash()``), so two databases hold the
same fingerprint iff they hold the same fact set, across processes,
restarts *and storage backends*: the accumulator lives here, is bumped
around :meth:`~repro.obdm.backend.StorageBackend.add` /
:meth:`~repro.obdm.backend.StorageBackend.remove`, and therefore never
depends on how the backend lays facts out.  Derived databases
(:meth:`restrict_to`, :meth:`copy`, :meth:`from_catalog`,
:meth:`from_rows`) re-insert their facts through :meth:`add_fact` and
carry consistent fingerprints for free.  The engine's delta path
(``repro.engine`` / ``repro.service``) uses the fingerprint to keep
cache snapshots honest across database drift.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..errors import SchemaError, UnknownRelationError
from ..queries.atoms import Atom
from ..queries.terms import Constant
from ..sql.catalog import Catalog
from .backend import BackendSpec, PushdownUnsupported, StorageBackend, resolve_backend
from .schema import RelationSignature, SourceSchema

Value = Union[str, int, float, bool]

_DIGEST_BITS = 128
_DIGEST_MASK = (1 << _DIGEST_BITS) - 1


def _fact_digest(fact: Atom) -> int:
    """A process-stable 128-bit digest of one ground atom.

    Built from a canonical serialisation that *type-tags* every value
    (``Constant(True) != Constant(1)`` must digest differently), and
    hashed with sha256 rather than Python's per-process-salted
    ``hash()`` so fingerprints survive pickling and restarts.
    """
    parts = [fact.predicate, str(fact.arity)]
    for argument in fact.args:
        value = argument.value
        parts.append(f"{type(value).__name__}:{value!r}")
    payload = "\x1f".join(parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[: _DIGEST_BITS // 8], "big")


@dataclass(frozen=True)
class DatabaseDelta:
    """A fact-level database change: atoms to add and atoms to remove.

    Use :meth:`DatabaseDelta.of` to build one — it normalises the two
    sides (deduplicated, deterministically ordered, all atoms ground)
    and rejects contradictory deltas that both add and remove the same
    fact.  Deltas are immutable values: they can be logged, shipped to
    replicas, inverted (:meth:`inverse`) and applied to any database
    holding the removed facts.
    """

    added: Tuple[Atom, ...]
    removed: Tuple[Atom, ...]

    @staticmethod
    def of(
        added: Iterable[Atom] = (), removed: Iterable[Atom] = ()
    ) -> "DatabaseDelta":
        added_set = frozenset(added)
        removed_set = frozenset(removed)
        for fact in added_set | removed_set:
            if not fact.is_ground():
                raise SchemaError(f"database deltas carry ground atoms only, got {fact}")
        conflict = added_set & removed_set
        if conflict:
            sample = ", ".join(str(a) for a in sorted(conflict)[:3])
            raise SchemaError(f"delta both adds and removes: {sample}")
        return DatabaseDelta(tuple(sorted(added_set)), tuple(sorted(removed_set)))

    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)

    def constants(self) -> FrozenSet[Constant]:
        """Every constant mentioned on either side of the delta."""
        collected: Set[Constant] = set()
        for fact in self.added:
            collected |= fact.constants()
        for fact in self.removed:
            collected |= fact.constants()
        return frozenset(collected)

    def predicates(self) -> FrozenSet[str]:
        """Every predicate mentioned on either side of the delta."""
        return frozenset(
            fact.predicate for side in (self.added, self.removed) for fact in side
        )

    def inverse(self) -> "DatabaseDelta":
        """The delta that undoes this one."""
        return DatabaseDelta(self.removed, self.added)

    def __str__(self):
        return f"DatabaseDelta(+{len(self.added)}, -{len(self.removed)})"


class SourceDatabase:
    """An ``S``-database: a finite set of ground atoms over schema ``S``."""

    def __init__(
        self,
        schema: Optional[SourceSchema] = None,
        facts: Iterable[Atom] = (),
        name: str = "D",
        strict: bool = True,
        backend: BackendSpec = None,
    ):
        """Create a database.

        With ``strict=True`` (the default) every fact must use a relation
        declared in *schema* with the right arity; with ``strict=False``
        unknown relations are auto-declared with synthetic attributes.
        *backend* selects the storage layer: ``None``/``"memory"`` for
        the in-memory dict layout, ``"sqlite"`` for the on-disk backend,
        or a ready :class:`~repro.obdm.backend.StorageBackend` instance.
        """
        self.name = name
        self.schema = schema if schema is not None else SourceSchema()
        self._strict = strict and schema is not None
        self._backend: StorageBackend = resolve_backend(backend)
        self._fingerprint = 0
        for fact in facts:
            self.add_fact(fact)

    # -- storage backend -------------------------------------------------

    @property
    def backend(self) -> StorageBackend:
        """The storage backend holding the fact set."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """The backend kind (``"memory"`` or ``"sqlite"``)."""
        return self._backend.kind

    def supports_pushdown(self) -> bool:
        """Whether mapping source queries can run inside the backend."""
        return bool(getattr(self._backend, "supports_pushdown", False))

    def execute_pushdown(self, source_query) -> Iterator[Tuple[Value, ...]]:
        """Stream a source query's answers from the backend (SQL pushdown).

        Raises :class:`~repro.obdm.backend.PushdownUnsupported` (before
        the first row) when the query has no SQL translation; callers
        fall back to the in-memory executor.
        """
        return self._backend.execute_source(source_query, self.schema)

    def supports_ucq_pushdown(self) -> bool:
        """Whether whole-rewriting certain-answer pushdown is available."""
        return bool(getattr(self._backend, "supports_ucq_pushdown", False))

    def ucq_certain_answers(self, rewriting, facts):
        """Answer a rewritten UCQ over an ABox inside the backend.

        One pushed-down SQL execution; raises
        :class:`~repro.obdm.backend.PushdownUnsupported` when the
        backend cannot take the whole rewriting (callers fall back to
        in-memory UCQ evaluation).
        """
        if not self.supports_ucq_pushdown():
            raise PushdownUnsupported(
                f"backend {self.backend_name!r} cannot push down rewritings"
            )
        return self._backend.ucq_certain_answers(rewriting, facts)

    def ucq_contains_tuple(self, rewriting, answer, facts) -> bool:
        """Pushed-down membership check of *answer* in a rewriting's answers."""
        if not self.supports_ucq_pushdown():
            raise PushdownUnsupported(
                f"backend {self.backend_name!r} cannot push down rewritings"
            )
        return self._backend.ucq_contains_tuple(rewriting, answer, facts)

    def with_backend(self, backend: BackendSpec, name: Optional[str] = None) -> "SourceDatabase":
        """A copy of this database on a different storage backend.

        The copy re-inserts every fact through :meth:`add_fact`, so its
        fingerprint matches this database's by construction.
        """
        return SourceDatabase(
            self.schema,
            self._backend.iter_facts(),
            name or self.name,
            strict=False,
            backend=backend,
        )

    # -- mutation --------------------------------------------------------

    def _validate_fact(self, fact: Atom) -> None:
        """Schema checks for one fact, with no side effects."""
        if not fact.is_ground():
            raise SchemaError(f"cannot insert non-ground atom {fact}")
        if self.schema.has_relation(fact.predicate):
            expected = self.schema.arity_of(fact.predicate)
            if expected != fact.arity:
                raise SchemaError(
                    f"fact {fact} has arity {fact.arity}, schema expects {expected}"
                )
        elif self._strict:
            raise UnknownRelationError(
                f"fact {fact} uses relation {fact.predicate!r} not declared in schema "
                f"{self.schema.name!r}"
            )

    def add_fact(self, fact: Atom) -> None:
        """Insert a ground atom, validating it against the schema."""
        self._validate_fact(fact)
        if not self.schema.has_relation(fact.predicate):
            self.schema.declare_arity(fact.predicate, fact.arity)
        if not self._backend.add(fact):
            return
        self._fingerprint ^= _fact_digest(fact)

    def remove_fact(self, fact: Atom) -> None:
        """Delete a fact, maintaining the backend and the fingerprint."""
        if not self._backend.remove(fact):
            raise SchemaError(
                f"cannot remove fact {fact}: not in database {self.name!r}"
            )
        self._fingerprint ^= _fact_digest(fact)

    def apply_delta(self, delta: DatabaseDelta) -> "SourceDatabase":
        """Apply a fact-level delta in place (removals first, then adds).

        Validates the *whole* delta before mutating anything, so a bad
        delta (unknown removal, non-ground or arity-mismatched add)
        leaves the database untouched.  Returns ``self`` for chaining.
        The content fingerprint is bumped incrementally as each fact is
        indexed/unindexed.
        """
        for fact in delta.removed:
            if fact not in self._backend:
                raise SchemaError(
                    f"delta removes fact {fact} not present in database {self.name!r}"
                )
        for fact in delta.added:
            self._validate_fact(fact)
        for fact in delta.removed:
            self.remove_fact(fact)
        for fact in delta.added:
            self.add_fact(fact)
        return self

    def fingerprint(self) -> str:
        """A process-stable content fingerprint of the current fact set.

        Equal iff the fact sets are equal (order-independent XOR of
        per-fact sha256 digests, prefixed with the fact count), so
        derived databases built from the same facts — ``copy()``,
        ``restrict_to`` over all facts, ``from_catalog`` round trips,
        :meth:`with_backend` conversions — report the same fingerprint,
        and any applied delta bumps it.
        """
        return f"{len(self._backend):x}.{self._fingerprint & _DIGEST_MASK:032x}"

    def add(self, predicate: str, *values: Value) -> Atom:
        """Insert ``predicate(values...)`` and return the created fact."""
        fact = Atom(predicate, tuple(Constant(v) for v in values))
        self.add_fact(fact)
        return fact

    def add_facts(self, facts: Iterable[Atom]) -> None:
        for fact in facts:
            self.add_fact(fact)

    # -- access ------------------------------------------------------------

    @property
    def facts(self) -> FrozenSet[Atom]:
        """The full fact set, materialised.

        Streaming consumers (mapping pushdown, border expansion) avoid
        this property — on a disk backend it loads every fact into
        Python.  Use :meth:`iter_facts` to stream instead.
        """
        return frozenset(self._backend.iter_facts())

    def iter_facts(self) -> Iterator[Atom]:
        """Stream the fact set without materialising it."""
        return self._backend.iter_facts()

    def facts_with_predicate(self, predicate: str) -> FrozenSet[Atom]:
        return self._backend.facts_with_predicate(predicate)

    def facts_with_constant(self, constant: Union[Constant, Value]) -> FrozenSet[Atom]:
        """Atoms in which *constant* occurs — the primitive behind borders."""
        if not isinstance(constant, Constant):
            constant = Constant(constant)
        return self._backend.facts_with_constant(constant)

    def facts_with_any_constant(
        self, constants: Iterable[Union[Constant, Value]]
    ) -> FrozenSet[Atom]:
        """Atoms mentioning any of *constants*, in one batched lookup.

        The border computer expands whole BFS frontiers through this —
        on the SQLite backend a frontier costs a handful of ``IN``
        queries instead of one query per constant.
        """
        normalised = [
            constant if isinstance(constant, Constant) else Constant(constant)
            for constant in constants
        ]
        return self._backend.facts_with_any_constant(normalised)

    def domain(self) -> FrozenSet[Constant]:
        """The active domain ``dom(D)``: every constant occurring in ``D``."""
        return self._backend.domain()

    def domain_values(self) -> FrozenSet[Value]:
        """The active domain as raw Python values."""
        return frozenset(constant.value for constant in self._backend.domain())

    def predicates(self) -> FrozenSet[str]:
        return self._backend.predicates()

    def __len__(self) -> int:
        return len(self._backend)

    def __iter__(self) -> Iterator[Atom]:
        return iter(sorted(self._backend.iter_facts()))

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._backend

    # -- derived databases ----------------------------------------------------

    def restrict_to(self, facts: Iterable[Atom], name: Optional[str] = None) -> "SourceDatabase":
        """Sub-database induced by a subset of facts (e.g. a border).

        The result always lives on the in-memory backend: borders and
        their retrieved ABoxes are small by construction, and keeping
        them in memory preserves the seed's evaluation path regardless
        of where the parent database stores its facts.
        """
        subset = set(facts)
        unknown = [fact for fact in subset if fact not in self._backend]
        if unknown:
            raise SchemaError(
                f"cannot restrict {self.name!r} to facts not in the database: "
                f"{sorted(str(a) for a in unknown)[:3]}..."
            )
        return SourceDatabase(self.schema, subset, name or f"{self.name}|restricted", strict=False)

    def copy(self, name: Optional[str] = None) -> "SourceDatabase":
        """A fact-for-fact copy on the same backend kind."""
        return SourceDatabase(
            self.schema,
            self._backend.iter_facts(),
            name or self.name,
            strict=False,
            backend=self._backend.kind if self._backend.kind != "abstract" else None,
        )

    # -- conversions -------------------------------------------------------------

    def to_catalog(self) -> Catalog:
        """Materialise the database as a relational catalog."""
        catalog = self.schema.to_catalog(self.name)
        for fact in self._backend.iter_facts():
            if not catalog.has_relation(fact.predicate):
                catalog.create_relation(
                    fact.predicate, tuple(f"a{i + 1}" for i in range(fact.arity))
                )
            catalog.insert(fact.predicate, tuple(argument.value for argument in fact.args))
        return catalog

    @staticmethod
    def from_catalog(catalog: Catalog, name: Optional[str] = None) -> "SourceDatabase":
        """Build a database (and schema) from a relational catalog."""
        schema = SourceSchema.from_catalog(catalog)
        database = SourceDatabase(schema, name=name or catalog.name)
        database.add_facts(catalog.to_atoms())
        return database

    @staticmethod
    def from_rows(
        rows_by_relation: Dict[str, Iterable[Sequence[Value]]],
        schema: Optional[SourceSchema] = None,
        name: str = "D",
        backend: BackendSpec = None,
    ) -> "SourceDatabase":
        """Build a database from ``{relation: [row, ...]}`` dictionaries."""
        database = SourceDatabase(
            schema, name=name, strict=schema is not None, backend=backend
        )
        for relation, rows in rows_by_relation.items():
            for row in rows:
                database.add(relation, *row)
        return database

    def __str__(self):
        return (
            f"SourceDatabase({self.name!r}, {len(self)} facts, "
            f"schema={self.schema.name!r}, backend={self.backend_name!r})"
        )
