"""Source databases ``D``: finite sets of ground atoms over a schema ``S``.

The paper (Section 2) defines an ``S``-database as a finite set of atoms
``s(c)`` where ``s`` is a predicate of ``S``.  :class:`SourceDatabase`
stores exactly that, and additionally maintains two indexes needed by
the explanation framework:

* a by-predicate index, used by query evaluation;
* a by-constant index (constant → atoms mentioning it), which makes the
  border computation of Definition 3.2 a sequence of index lookups
  instead of database scans.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..errors import SchemaError, UnknownRelationError
from ..queries.atoms import Atom
from ..queries.terms import Constant
from ..sql.catalog import Catalog
from .schema import RelationSignature, SourceSchema

Value = Union[str, int, float, bool]


class SourceDatabase:
    """An ``S``-database: a finite set of ground atoms over schema ``S``."""

    def __init__(
        self,
        schema: Optional[SourceSchema] = None,
        facts: Iterable[Atom] = (),
        name: str = "D",
        strict: bool = True,
    ):
        """Create a database.

        With ``strict=True`` (the default) every fact must use a relation
        declared in *schema* with the right arity; with ``strict=False``
        unknown relations are auto-declared with synthetic attributes.
        """
        self.name = name
        self.schema = schema if schema is not None else SourceSchema()
        self._strict = strict and schema is not None
        self._facts: Set[Atom] = set()
        self._by_predicate: Dict[str, Set[Atom]] = {}
        self._by_constant: Dict[Constant, Set[Atom]] = {}
        for fact in facts:
            self.add_fact(fact)

    # -- mutation --------------------------------------------------------

    def add_fact(self, fact: Atom) -> None:
        """Insert a ground atom, validating it against the schema."""
        if not fact.is_ground():
            raise SchemaError(f"cannot insert non-ground atom {fact}")
        if self.schema.has_relation(fact.predicate):
            expected = self.schema.arity_of(fact.predicate)
            if expected != fact.arity:
                raise SchemaError(
                    f"fact {fact} has arity {fact.arity}, schema expects {expected}"
                )
        elif self._strict:
            raise UnknownRelationError(
                f"fact {fact} uses relation {fact.predicate!r} not declared in schema "
                f"{self.schema.name!r}"
            )
        else:
            self.schema.declare_arity(fact.predicate, fact.arity)
        if fact in self._facts:
            return
        self._facts.add(fact)
        self._by_predicate.setdefault(fact.predicate, set()).add(fact)
        for argument in fact.args:
            self._by_constant.setdefault(argument, set()).add(fact)

    def add(self, predicate: str, *values: Value) -> Atom:
        """Insert ``predicate(values...)`` and return the created fact."""
        fact = Atom(predicate, tuple(Constant(v) for v in values))
        self.add_fact(fact)
        return fact

    def add_facts(self, facts: Iterable[Atom]) -> None:
        for fact in facts:
            self.add_fact(fact)

    # -- access ------------------------------------------------------------

    @property
    def facts(self) -> FrozenSet[Atom]:
        return frozenset(self._facts)

    def facts_with_predicate(self, predicate: str) -> FrozenSet[Atom]:
        return frozenset(self._by_predicate.get(predicate, set()))

    def facts_with_constant(self, constant: Union[Constant, Value]) -> FrozenSet[Atom]:
        """Atoms in which *constant* occurs — the primitive behind borders."""
        if not isinstance(constant, Constant):
            constant = Constant(constant)
        return frozenset(self._by_constant.get(constant, set()))

    def domain(self) -> FrozenSet[Constant]:
        """The active domain ``dom(D)``: every constant occurring in ``D``."""
        return frozenset(self._by_constant)

    def domain_values(self) -> FrozenSet[Value]:
        """The active domain as raw Python values."""
        return frozenset(constant.value for constant in self._by_constant)

    def predicates(self) -> FrozenSet[str]:
        return frozenset(self._by_predicate)

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Atom]:
        return iter(sorted(self._facts))

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    # -- derived databases ----------------------------------------------------

    def restrict_to(self, facts: Iterable[Atom], name: Optional[str] = None) -> "SourceDatabase":
        """Sub-database induced by a subset of facts (e.g. a border)."""
        subset = set(facts)
        unknown = subset - self._facts
        if unknown:
            raise SchemaError(
                f"cannot restrict {self.name!r} to facts not in the database: "
                f"{sorted(str(a) for a in unknown)[:3]}..."
            )
        return SourceDatabase(self.schema, subset, name or f"{self.name}|restricted", strict=False)

    def copy(self, name: Optional[str] = None) -> "SourceDatabase":
        return SourceDatabase(self.schema, self._facts, name or self.name, strict=False)

    # -- conversions -------------------------------------------------------------

    def to_catalog(self) -> Catalog:
        """Materialise the database as a relational catalog."""
        catalog = self.schema.to_catalog(self.name)
        for fact in self._facts:
            if not catalog.has_relation(fact.predicate):
                catalog.create_relation(
                    fact.predicate, tuple(f"a{i + 1}" for i in range(fact.arity))
                )
            catalog.insert(fact.predicate, tuple(argument.value for argument in fact.args))
        return catalog

    @staticmethod
    def from_catalog(catalog: Catalog, name: Optional[str] = None) -> "SourceDatabase":
        """Build a database (and schema) from a relational catalog."""
        schema = SourceSchema.from_catalog(catalog)
        database = SourceDatabase(schema, name=name or catalog.name)
        database.add_facts(catalog.to_atoms())
        return database

    @staticmethod
    def from_rows(
        rows_by_relation: Dict[str, Iterable[Sequence[Value]]],
        schema: Optional[SourceSchema] = None,
        name: str = "D",
    ) -> "SourceDatabase":
        """Build a database from ``{relation: [row, ...]}`` dictionaries."""
        database = SourceDatabase(schema, name=name, strict=schema is not None)
        for relation, rows in rows_by_relation.items():
            for row in rows:
                database.add(relation, *row)
        return database

    def __str__(self):
        return f"SourceDatabase({self.name!r}, {len(self)} facts, schema={self.schema.name!r})"
