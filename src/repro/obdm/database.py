"""Source databases ``D``: finite sets of ground atoms over a schema ``S``.

The paper (Section 2) defines an ``S``-database as a finite set of atoms
``s(c)`` where ``s`` is a predicate of ``S``.  :class:`SourceDatabase`
stores exactly that, and additionally maintains two indexes needed by
the explanation framework:

* a by-predicate index, used by query evaluation;
* a by-constant index (constant → atoms mentioning it), which makes the
  border computation of Definition 3.2 a sequence of index lookups
  instead of database scans.

Production traffic mutates the database, so the class also supports
**fact-level deltas**: :class:`DatabaseDelta` carries a normalised set
of added/removed ground atoms and :meth:`SourceDatabase.apply_delta`
applies it in place, maintaining both indexes and a **content
fingerprint**.  The fingerprint is an order-independent XOR accumulator
of per-fact digests over a *canonical, type-tagged* serialisation
(sha256 — never Python's salted ``hash()``), so two databases hold the
same fingerprint iff they hold the same fact set, across processes and
restarts.  Derived databases (:meth:`restrict_to`, :meth:`copy`,
:meth:`from_catalog`, :meth:`from_rows`) re-insert their facts through
:meth:`add_fact` and therefore carry consistent fingerprints for free.
The engine's delta path (``repro.engine`` / ``repro.service``) uses the
fingerprint to keep cache snapshots honest across database drift.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..errors import SchemaError, UnknownRelationError
from ..queries.atoms import Atom
from ..queries.terms import Constant
from ..sql.catalog import Catalog
from .schema import RelationSignature, SourceSchema

Value = Union[str, int, float, bool]

_DIGEST_BITS = 128
_DIGEST_MASK = (1 << _DIGEST_BITS) - 1


def _fact_digest(fact: Atom) -> int:
    """A process-stable 128-bit digest of one ground atom.

    Built from a canonical serialisation that *type-tags* every value
    (``Constant(True) != Constant(1)`` must digest differently), and
    hashed with sha256 rather than Python's per-process-salted
    ``hash()`` so fingerprints survive pickling and restarts.
    """
    parts = [fact.predicate, str(fact.arity)]
    for argument in fact.args:
        value = argument.value
        parts.append(f"{type(value).__name__}:{value!r}")
    payload = "\x1f".join(parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[: _DIGEST_BITS // 8], "big")


@dataclass(frozen=True)
class DatabaseDelta:
    """A fact-level database change: atoms to add and atoms to remove.

    Use :meth:`DatabaseDelta.of` to build one — it normalises the two
    sides (deduplicated, deterministically ordered, all atoms ground)
    and rejects contradictory deltas that both add and remove the same
    fact.  Deltas are immutable values: they can be logged, shipped to
    replicas, inverted (:meth:`inverse`) and applied to any database
    holding the removed facts.
    """

    added: Tuple[Atom, ...]
    removed: Tuple[Atom, ...]

    @staticmethod
    def of(
        added: Iterable[Atom] = (), removed: Iterable[Atom] = ()
    ) -> "DatabaseDelta":
        added_set = frozenset(added)
        removed_set = frozenset(removed)
        for fact in added_set | removed_set:
            if not fact.is_ground():
                raise SchemaError(f"database deltas carry ground atoms only, got {fact}")
        conflict = added_set & removed_set
        if conflict:
            sample = ", ".join(str(a) for a in sorted(conflict)[:3])
            raise SchemaError(f"delta both adds and removes: {sample}")
        return DatabaseDelta(tuple(sorted(added_set)), tuple(sorted(removed_set)))

    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)

    def constants(self) -> FrozenSet[Constant]:
        """Every constant mentioned on either side of the delta."""
        collected: Set[Constant] = set()
        for fact in self.added:
            collected |= fact.constants()
        for fact in self.removed:
            collected |= fact.constants()
        return frozenset(collected)

    def predicates(self) -> FrozenSet[str]:
        """Every predicate mentioned on either side of the delta."""
        return frozenset(
            fact.predicate for side in (self.added, self.removed) for fact in side
        )

    def inverse(self) -> "DatabaseDelta":
        """The delta that undoes this one."""
        return DatabaseDelta(self.removed, self.added)

    def __str__(self):
        return f"DatabaseDelta(+{len(self.added)}, -{len(self.removed)})"


class SourceDatabase:
    """An ``S``-database: a finite set of ground atoms over schema ``S``."""

    def __init__(
        self,
        schema: Optional[SourceSchema] = None,
        facts: Iterable[Atom] = (),
        name: str = "D",
        strict: bool = True,
    ):
        """Create a database.

        With ``strict=True`` (the default) every fact must use a relation
        declared in *schema* with the right arity; with ``strict=False``
        unknown relations are auto-declared with synthetic attributes.
        """
        self.name = name
        self.schema = schema if schema is not None else SourceSchema()
        self._strict = strict and schema is not None
        self._facts: Set[Atom] = set()
        self._by_predicate: Dict[str, Set[Atom]] = {}
        self._by_constant: Dict[Constant, Set[Atom]] = {}
        self._fingerprint = 0
        for fact in facts:
            self.add_fact(fact)

    # -- mutation --------------------------------------------------------

    def _validate_fact(self, fact: Atom) -> None:
        """Schema checks for one fact, with no side effects."""
        if not fact.is_ground():
            raise SchemaError(f"cannot insert non-ground atom {fact}")
        if self.schema.has_relation(fact.predicate):
            expected = self.schema.arity_of(fact.predicate)
            if expected != fact.arity:
                raise SchemaError(
                    f"fact {fact} has arity {fact.arity}, schema expects {expected}"
                )
        elif self._strict:
            raise UnknownRelationError(
                f"fact {fact} uses relation {fact.predicate!r} not declared in schema "
                f"{self.schema.name!r}"
            )

    def add_fact(self, fact: Atom) -> None:
        """Insert a ground atom, validating it against the schema."""
        self._validate_fact(fact)
        if not self.schema.has_relation(fact.predicate):
            self.schema.declare_arity(fact.predicate, fact.arity)
        if fact in self._facts:
            return
        self._facts.add(fact)
        self._by_predicate.setdefault(fact.predicate, set()).add(fact)
        for argument in fact.args:
            self._by_constant.setdefault(argument, set()).add(fact)
        self._fingerprint ^= _fact_digest(fact)

    def remove_fact(self, fact: Atom) -> None:
        """Delete a fact, maintaining both indexes and the fingerprint."""
        if fact not in self._facts:
            raise SchemaError(
                f"cannot remove fact {fact}: not in database {self.name!r}"
            )
        self._facts.discard(fact)
        bucket = self._by_predicate[fact.predicate]
        bucket.discard(fact)
        if not bucket:
            del self._by_predicate[fact.predicate]
        for argument in set(fact.args):
            owners = self._by_constant[argument]
            owners.discard(fact)
            if not owners:
                del self._by_constant[argument]
        self._fingerprint ^= _fact_digest(fact)

    def apply_delta(self, delta: DatabaseDelta) -> "SourceDatabase":
        """Apply a fact-level delta in place (removals first, then adds).

        Validates the *whole* delta before mutating anything, so a bad
        delta (unknown removal, non-ground or arity-mismatched add)
        leaves the database untouched.  Returns ``self`` for chaining.
        The content fingerprint is bumped incrementally as each fact is
        indexed/unindexed.
        """
        for fact in delta.removed:
            if fact not in self._facts:
                raise SchemaError(
                    f"delta removes fact {fact} not present in database {self.name!r}"
                )
        for fact in delta.added:
            self._validate_fact(fact)
        for fact in delta.removed:
            self.remove_fact(fact)
        for fact in delta.added:
            self.add_fact(fact)
        return self

    def fingerprint(self) -> str:
        """A process-stable content fingerprint of the current fact set.

        Equal iff the fact sets are equal (order-independent XOR of
        per-fact sha256 digests, prefixed with the fact count), so
        derived databases built from the same facts — ``copy()``,
        ``restrict_to`` over all facts, ``from_catalog`` round trips —
        report the same fingerprint, and any applied delta bumps it.
        """
        return f"{len(self._facts):x}.{self._fingerprint & _DIGEST_MASK:032x}"

    def add(self, predicate: str, *values: Value) -> Atom:
        """Insert ``predicate(values...)`` and return the created fact."""
        fact = Atom(predicate, tuple(Constant(v) for v in values))
        self.add_fact(fact)
        return fact

    def add_facts(self, facts: Iterable[Atom]) -> None:
        for fact in facts:
            self.add_fact(fact)

    # -- access ------------------------------------------------------------

    @property
    def facts(self) -> FrozenSet[Atom]:
        return frozenset(self._facts)

    def facts_with_predicate(self, predicate: str) -> FrozenSet[Atom]:
        return frozenset(self._by_predicate.get(predicate, set()))

    def facts_with_constant(self, constant: Union[Constant, Value]) -> FrozenSet[Atom]:
        """Atoms in which *constant* occurs — the primitive behind borders."""
        if not isinstance(constant, Constant):
            constant = Constant(constant)
        return frozenset(self._by_constant.get(constant, set()))

    def domain(self) -> FrozenSet[Constant]:
        """The active domain ``dom(D)``: every constant occurring in ``D``."""
        return frozenset(self._by_constant)

    def domain_values(self) -> FrozenSet[Value]:
        """The active domain as raw Python values."""
        return frozenset(constant.value for constant in self._by_constant)

    def predicates(self) -> FrozenSet[str]:
        return frozenset(self._by_predicate)

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Atom]:
        return iter(sorted(self._facts))

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    # -- derived databases ----------------------------------------------------

    def restrict_to(self, facts: Iterable[Atom], name: Optional[str] = None) -> "SourceDatabase":
        """Sub-database induced by a subset of facts (e.g. a border)."""
        subset = set(facts)
        unknown = subset - self._facts
        if unknown:
            raise SchemaError(
                f"cannot restrict {self.name!r} to facts not in the database: "
                f"{sorted(str(a) for a in unknown)[:3]}..."
            )
        return SourceDatabase(self.schema, subset, name or f"{self.name}|restricted", strict=False)

    def copy(self, name: Optional[str] = None) -> "SourceDatabase":
        return SourceDatabase(self.schema, self._facts, name or self.name, strict=False)

    # -- conversions -------------------------------------------------------------

    def to_catalog(self) -> Catalog:
        """Materialise the database as a relational catalog."""
        catalog = self.schema.to_catalog(self.name)
        for fact in self._facts:
            if not catalog.has_relation(fact.predicate):
                catalog.create_relation(
                    fact.predicate, tuple(f"a{i + 1}" for i in range(fact.arity))
                )
            catalog.insert(fact.predicate, tuple(argument.value for argument in fact.args))
        return catalog

    @staticmethod
    def from_catalog(catalog: Catalog, name: Optional[str] = None) -> "SourceDatabase":
        """Build a database (and schema) from a relational catalog."""
        schema = SourceSchema.from_catalog(catalog)
        database = SourceDatabase(schema, name=name or catalog.name)
        database.add_facts(catalog.to_atoms())
        return database

    @staticmethod
    def from_rows(
        rows_by_relation: Dict[str, Iterable[Sequence[Value]]],
        schema: Optional[SourceSchema] = None,
        name: str = "D",
    ) -> "SourceDatabase":
        """Build a database from ``{relation: [row, ...]}`` dictionaries."""
        database = SourceDatabase(schema, name=name, strict=schema is not None)
        for relation, rows in rows_by_relation.items():
            for row in rows:
                database.add(relation, *row)
        return database

    def __str__(self):
        return f"SourceDatabase({self.name!r}, {len(self)} facts, schema={self.schema.name!r})"
