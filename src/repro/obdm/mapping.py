"""Mapping layer ``M`` of an OBDM specification.

A mapping assertion relates a *source query* over the schema ``S`` to
an *ontology query* over ``O``.  Following the paper (and the OBDA
literature it builds on) mappings are **sound** and GAV-style: each
assertion has the shape::

    Φ(x₁, ..., xₖ)  ⇝  ψ₁(x⃗), ..., ψₘ(x⃗)

where ``Φ`` is a source query with answer variables ``x₁..xₖ`` and each
``ψᵢ`` is an ontology atom (concept or role atom) over those variables
and constants.  The paper's Example 3.6 uses exactly this shape::

    ENR(x, y, z) ⇝ studies(x, y)
    ENR(x, y, z) ⇝ taughtIn(y, z)
    LOC(x, y)    ⇝ locatedIn(x, y)

Source queries may be conjunctive queries over ``S`` (as above), SQL
text in the select-project-join fragment, or relational algebra trees.

Application has two data paths.  On the in-memory backend it is the
seed's: CQ sources evaluate over a shared
:class:`~repro.queries.evaluation.FactIndex`, algebra/SQL sources run
through the in-memory :class:`~repro.sql.executor.Executor` over a
materialised catalog.  On a pushdown-capable backend (see
:class:`~repro.obdm.backend.SQLiteBackend`) **neither materialisation
happens**: the source query is compiled to one SQL statement, executed
inside the backend, and :meth:`Mapping.iter_apply` yields the produced
ontology facts as a stream.  A query the backend cannot compile
(:class:`~repro.obdm.backend.PushdownUnsupported`) falls back to the
legacy path per assertion, so pushdown is an optimisation, never a
semantics change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..errors import MappingError
from ..queries.atoms import Atom, Substitution
from ..queries.cq import ConjunctiveQuery
from ..queries.evaluation import FactIndex, evaluate
from ..queries.parser import parse_cq
from ..queries.terms import Constant, Variable, is_constant, is_variable
from ..sql.algebra import AlgebraNode
from ..sql.executor import Executor
from ..sql.sql_parser import sql_to_algebra
from .backend import PushdownUnsupported
from .database import SourceDatabase

SourceQuerySpec = Union[str, ConjunctiveQuery, AlgebraNode]


def _parse_source_query(source: SourceQuerySpec) -> Union[ConjunctiveQuery, AlgebraNode]:
    """Accept CQ objects, algebra trees, rule text, atom text, or SQL text."""
    if isinstance(source, (ConjunctiveQuery, AlgebraNode)):
        return source
    if not isinstance(source, str):
        raise MappingError(f"unsupported source query specification: {source!r}")
    text = source.strip()
    if text.upper().startswith("SELECT"):
        return sql_to_algebra(text)
    if ":-" in text or "<-" in text:
        return parse_cq(text)
    # A bare atom such as "ENR(x, y, z)": treat it as the identity CQ whose
    # answer variables are the atom's variables in order of appearance.
    atom_query = parse_cq(f"__m({_variables_of_atom_text(text)}) :- {text}")
    return atom_query


def _variables_of_atom_text(text: str) -> str:
    inside = text[text.index("(") + 1: text.rindex(")")]
    names = []
    for piece in inside.split(","):
        piece = piece.strip()
        if piece and piece[0].islower() and not piece[0].isdigit() and "'" not in piece:
            if piece not in names:
                names.append(piece)
    return ", ".join(names)


@dataclass(frozen=True)
class MappingAssertion:
    """A single sound GAV mapping assertion ``source ⇝ ontology atoms``."""

    source: Union[ConjunctiveQuery, AlgebraNode]
    targets: Tuple[Atom, ...]
    label: str = ""

    def __post_init__(self):
        if not self.targets:
            raise MappingError("a mapping assertion needs at least one target atom")
        source_variables = self._source_head_variables()
        if source_variables is not None:
            available = set(source_variables)
            for target in self.targets:
                for argument in target.args:
                    if is_variable(argument) and argument not in available:
                        raise MappingError(
                            f"target atom {target} uses variable {argument} that is not "
                            f"an answer variable of the source query"
                        )

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def create(
        source: SourceQuerySpec,
        targets: Union[str, Atom, Sequence[Union[str, Atom]]],
        label: str = "",
    ) -> "MappingAssertion":
        """Build an assertion from flexible source/target specifications.

        Targets given as text are parsed as atoms, e.g. ``"studies(x, y)"``.
        """
        parsed_source = _parse_source_query(source)
        if isinstance(targets, (str, Atom)):
            targets = [targets]
        parsed_targets: List[Atom] = []
        for target in targets:
            if isinstance(target, Atom):
                parsed_targets.append(target)
            else:
                text = target.strip()
                probe = parse_cq(f"__t({_variables_of_atom_text(text)}) :- {text}")
                parsed_targets.append(probe.body[0])
        return MappingAssertion(parsed_source, tuple(parsed_targets), label)

    # -- inspection --------------------------------------------------------------

    def _source_head_variables(self) -> Optional[Tuple[Variable, ...]]:
        if isinstance(self.source, ConjunctiveQuery):
            return self.source.head
        return None

    def target_predicates(self) -> Set[str]:
        return {target.predicate for target in self.targets}

    def source_predicates(self) -> Set[str]:
        if isinstance(self.source, ConjunctiveQuery):
            return self.source.predicates()
        return set()

    # -- application ----------------------------------------------------------------

    def apply(self, database: SourceDatabase, index: Optional[FactIndex] = None) -> Set[Atom]:
        """Apply the assertion to a source database, producing ontology facts.

        For CQ sources the query is evaluated over the database's atoms;
        for SQL/algebra sources it is executed over the corresponding
        catalog — or, on a pushdown-capable backend, either form runs as
        one SQL statement inside the backend.  Every answer tuple is
        substituted into each target atom.
        """
        return set(self.iter_apply(database, index=index))

    def iter_apply(
        self,
        database: SourceDatabase,
        index: Optional[FactIndex] = None,
        index_factory=None,
    ) -> Iterator[Atom]:
        """Stream the assertion's ontology facts (may repeat across rows).

        When *database* supports SQL pushdown (and no pre-built *index*
        forces the legacy path), the source query executes inside the
        backend and answer rows stream straight into target bindings —
        no fact set, fact index, or catalog is ever materialised.
        *index_factory* supplies a lazily shared
        :class:`~repro.queries.evaluation.FactIndex` for assertions that
        fall back to the in-memory CQ path.
        """
        if index is None and database.supports_pushdown():
            rows = None
            try:
                rows = database.execute_pushdown(self.source)
            except PushdownUnsupported:
                rows = None
            if rows is not None:
                if isinstance(self.source, ConjunctiveQuery):
                    yield from self._bind_head_rows(rows)
                else:
                    yield from self._bind_positional_rows(rows)
                return
        if isinstance(self.source, ConjunctiveQuery):
            if index is None:
                index = (
                    index_factory() if index_factory is not None
                    else FactIndex(database.facts)
                )
            answers = evaluate(self.source, (), index=index)
            head = self.source.head
            for answer in answers:
                binding: Substitution = dict(zip(head, answer))
                for target in self.targets:
                    fact = target.apply(binding)
                    if fact.is_ground():
                        yield fact
        else:
            executor = Executor(database.to_catalog())
            yield from self._bind_positional_rows(executor.execute(self.source))

    def _bind_head_rows(self, rows: Iterable[Sequence]) -> Iterator[Atom]:
        """Bind raw answer rows by the CQ's head-variable order."""
        head = self.source.head
        for row in rows:
            binding: Substitution = dict(
                zip(head, (Constant(value) for value in row))
            )
            for target in self.targets:
                fact = target.apply(binding)
                if fact.is_ground():
                    yield fact

    def _bind_positional_rows(self, rows: Iterable[Sequence]) -> Iterator[Atom]:
        # Positional convention for algebra/SQL sources: the i-th output
        # column binds the i-th distinct variable of the target atoms
        # (in order of appearance across targets).
        ordered_variables: List[Variable] = []
        for target in self.targets:
            for argument in target.args:
                if is_variable(argument) and argument not in ordered_variables:
                    ordered_variables.append(argument)
        for row in rows:
            if len(row) < len(ordered_variables):
                raise MappingError(
                    f"source query returned {len(row)} columns but targets need "
                    f"{len(ordered_variables)} variables"
                )
            binding = {
                variable: Constant(value)
                for variable, value in zip(ordered_variables, row)
            }
            for target in self.targets:
                fact = target.apply(binding)
                if fact.is_ground():
                    yield fact

    def __str__(self):
        source = str(self.source)
        targets = ", ".join(str(target) for target in self.targets)
        prefix = f"[{self.label}] " if self.label else ""
        return f"{prefix}{source} ⇝ {targets}"


class Mapping:
    """The mapping ``M``: an ordered collection of mapping assertions."""

    def __init__(self, assertions: Iterable[MappingAssertion] = (), name: str = "M"):
        self.name = name
        self._assertions: List[MappingAssertion] = list(assertions)

    # -- construction ---------------------------------------------------------

    def add(self, assertion: MappingAssertion) -> None:
        self._assertions.append(assertion)

    def add_assertion(
        self,
        source: SourceQuerySpec,
        targets: Union[str, Atom, Sequence[Union[str, Atom]]],
        label: str = "",
    ) -> MappingAssertion:
        """Create an assertion with :meth:`MappingAssertion.create` and add it."""
        assertion = MappingAssertion.create(source, targets, label)
        self.add(assertion)
        return assertion

    @staticmethod
    def from_pairs(pairs: Iterable[Tuple[SourceQuerySpec, Union[str, Sequence[str]]]], name: str = "M") -> "Mapping":
        """Build a mapping from ``(source, target)`` pairs."""
        mapping = Mapping(name=name)
        for source, target in pairs:
            mapping.add_assertion(source, target)
        return mapping

    # -- inspection -------------------------------------------------------------

    @property
    def assertions(self) -> Tuple[MappingAssertion, ...]:
        return tuple(self._assertions)

    def target_predicates(self) -> Set[str]:
        predicates: Set[str] = set()
        for assertion in self._assertions:
            predicates |= assertion.target_predicates()
        return predicates

    def source_predicates(self) -> Set[str]:
        predicates: Set[str] = set()
        for assertion in self._assertions:
            predicates |= assertion.source_predicates()
        return predicates

    def __len__(self) -> int:
        return len(self._assertions)

    def __iter__(self) -> Iterator[MappingAssertion]:
        return iter(self._assertions)

    # -- application ----------------------------------------------------------------

    def apply(self, database: SourceDatabase) -> Set[Atom]:
        """Apply every assertion to *database* (the retrieved/virtual ABox)."""
        return set(self.iter_apply(database))

    def iter_apply(self, database: SourceDatabase) -> Iterator[Atom]:
        """Stream the retrieved facts of every assertion.

        On the in-memory backend one :class:`~repro.queries.evaluation.FactIndex`
        is shared across assertions (the seed behaviour).  On a
        pushdown-capable backend no index is built at all unless some
        assertion's query has no SQL translation — then the index is
        built lazily, once, for exactly the falling-back assertions.
        Facts may repeat across assertions; callers deduplicate (the
        virtual ABox is a frozenset).
        """
        if database.supports_pushdown():
            shared: List[Optional[FactIndex]] = [None]

            def index_factory() -> FactIndex:
                if shared[0] is None:
                    shared[0] = FactIndex(database.facts)
                return shared[0]

            for assertion in self._assertions:
                yield from assertion.iter_apply(database, index_factory=index_factory)
            return
        index = FactIndex(database.facts)
        for assertion in self._assertions:
            yield from assertion.iter_apply(database, index=index)

    def __str__(self):
        lines = [f"Mapping {self.name!r}:"]
        lines += [f"  {assertion}" for assertion in self._assertions]
        return "\n".join(lines)
