"""OBDM specifications ``J = <O, S, M>``.

The specification is the *intensional* level of an OBDM system (Figure 1
of the paper): the ontology, the source schema and the mapping between
the two.  Adding an ``S``-database ``D`` (the *extensional* level)
yields an OBDM system ``Σ = <J, D>`` (:mod:`repro.obdm.system`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..dl.ontology import Ontology
from ..errors import MappingError, OBDMError
from ..queries.cq import ConjunctiveQuery
from ..queries.terms import Constant
from ..queries.ucq import UnionOfConjunctiveQueries
from .certain_answers import CertainAnswerEngine, OntologyQuery
from .database import SourceDatabase
from .mapping import Mapping
from .schema import SourceSchema
from .virtual_abox import VirtualABox


class OBDMSpecification:
    """The triple ``J = <O, S, M>``."""

    def __init__(
        self,
        ontology: Ontology,
        schema: SourceSchema,
        mapping: Mapping,
        name: str = "J",
        strict: bool = False,
        strategy: str = "rewriting",
    ):
        """Create a specification.

        With ``strict=True`` the constructor raises when a mapping target
        predicate is missing from the ontology vocabulary or a mapping
        source relation is missing from the schema.  With the default
        ``strict=False`` missing ontology predicates are auto-declared —
        this mirrors the paper's Example 3.6, where ``taughtIn`` and
        ``locatedIn`` appear only in the mapping.
        """
        self.ontology = ontology
        self.schema = schema
        self.mapping = mapping
        self.name = name
        self._validate(strict)
        self._engine = CertainAnswerEngine(ontology, mapping, strategy=strategy)

    # -- validation -------------------------------------------------------------

    def _validate(self, strict: bool) -> None:
        for assertion in self.mapping:
            for target in assertion.targets:
                predicate = target.predicate
                if not self.ontology.has_predicate(predicate):
                    if strict:
                        raise MappingError(
                            f"mapping target predicate {predicate!r} is not declared in "
                            f"ontology {self.ontology.name!r}"
                        )
                    if target.arity == 1:
                        self.ontology.declare_concept(predicate)
                    elif target.arity == 2:
                        self.ontology.declare_role(predicate)
                    else:
                        raise MappingError(
                            f"mapping target {target} has arity {target.arity}; only "
                            "concepts (1) and roles (2) are supported"
                        )
                else:
                    expected = self.ontology.arity_of(predicate)
                    if expected != target.arity:
                        raise MappingError(
                            f"mapping target {target} has arity {target.arity}, but the "
                            f"ontology declares {predicate!r} with arity {expected}"
                        )
            for relation in assertion.source_predicates():
                if not self.schema.has_relation(relation):
                    if strict:
                        raise MappingError(
                            f"mapping source relation {relation!r} is not in schema "
                            f"{self.schema.name!r}"
                        )
                    # Auto-declare with the arity used in the source query.
                    if isinstance(assertion.source, ConjunctiveQuery):
                        for atom in assertion.source.body:
                            if atom.predicate == relation:
                                self.schema.declare_arity(relation, atom.arity)
                                break

    # -- components ---------------------------------------------------------------

    @property
    def engine(self) -> CertainAnswerEngine:
        return self._engine

    def with_strategy(self, strategy: str) -> "OBDMSpecification":
        """A copy of the specification using a different answering strategy."""
        return OBDMSpecification(
            self.ontology, self.schema, self.mapping, self.name, strict=False, strategy=strategy
        )

    # -- certain answers --------------------------------------------------------------

    def retrieve_abox(self, database: SourceDatabase) -> VirtualABox:
        """Apply ``M`` to a database (the retrieved / virtual ABox)."""
        return self._engine.retrieve(database)

    def certain_answers(
        self,
        query: OntologyQuery,
        database: SourceDatabase,
        abox: Optional[VirtualABox] = None,
    ) -> Set[Tuple[Constant, ...]]:
        """``cert_{query, J}^database`` as a set of constant tuples."""
        return self._engine.certain_answers(query, database, abox=abox)

    def is_certain_answer(
        self,
        query: OntologyQuery,
        answer: Sequence,
        database: SourceDatabase,
        abox: Optional[VirtualABox] = None,
    ) -> bool:
        """Membership test for a single candidate answer tuple."""
        return self._engine.is_certain_answer(query, answer, database, abox=abox)

    def __str__(self):
        return (
            f"OBDMSpecification({self.name!r}: O={self.ontology.name!r} "
            f"[{len(self.ontology)} axioms], S={self.schema.name!r} "
            f"[{len(self.schema)} relations], M={self.mapping.name!r} "
            f"[{len(self.mapping)} assertions])"
        )
