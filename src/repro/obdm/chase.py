"""ABox saturation (restricted chase) for DL-Lite_R knowledge bases.

The chase is the "materialisation" alternative to query rewriting: apply
the positive TBox axioms to the retrieved ABox, inventing fresh labelled
nulls as witnesses of existential axioms, until a fixpoint.  Certain
answers of a CQ are then the answers of the plain evaluation over the
chased ABox that contain no labelled nulls.

Two standard precautions keep the chase finite and faithful:

* the chase is *restricted*: an existential axiom ``B ⊑ ∃R`` only fires
  on an individual that has **no** ``R``-successor yet;
* a ``max_depth`` bound limits how many nulls can be chained off one
  original individual, so cyclic TBoxes (``A ⊑ ∃R``, ``∃R⁻ ⊑ A``)
  cannot loop forever.  With the default depth the chase is exact for
  every ontology shipped in :mod:`repro.ontologies` (none of them needs
  nested witnesses beyond the bound to answer the benchmark queries).

The engine in :mod:`repro.obdm.certain_answers` cross-checks the chase
strategy against the rewriting strategy in the test-suite.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..dl.ontology import Ontology
from ..dl.syntax import (
    AtomicConcept,
    AtomicRole,
    BasicConcept,
    ConceptInclusion,
    ExistentialRestriction,
    InverseRole,
    Role,
    RoleInclusion,
)
from ..queries.atoms import Atom
from ..queries.terms import Constant, Term

NULL_PREFIX = "_:null"


def is_labelled_null(term: Term) -> bool:
    """``True`` when a constant is a labelled null introduced by the chase."""
    return isinstance(term, Constant) and isinstance(term.value, str) and term.value.startswith(NULL_PREFIX)


def tuple_has_null(values: Iterable[Term]) -> bool:
    return any(is_labelled_null(value) for value in values)


class ChaseEngine:
    """Saturates an ABox with the positive axioms of a DL-Lite_R TBox."""

    def __init__(self, ontology: Ontology, max_depth: int = 3, max_facts: int = 200_000):
        self.ontology = ontology
        self.max_depth = max_depth
        self.max_facts = max_facts
        self._null_counter = itertools.count()

    # -- helpers ---------------------------------------------------------------

    def _fresh_null(self) -> Constant:
        return Constant(f"{NULL_PREFIX}{next(self._null_counter)}")

    @staticmethod
    def _membership_atoms(fact: Atom, ontology: Ontology) -> List[Tuple[Term, BasicConcept]]:
        """Basic-concept memberships directly asserted by one ABox fact."""
        memberships: List[Tuple[Term, BasicConcept]] = []
        if fact.arity == 1 and fact.predicate in ontology.concept_names:
            memberships.append((fact.args[0], AtomicConcept(fact.predicate)))
        elif fact.arity == 2 and fact.predicate in ontology.role_names:
            role = AtomicRole(fact.predicate)
            memberships.append((fact.args[0], ExistentialRestriction(role)))
            memberships.append((fact.args[1], ExistentialRestriction(role.inverse())))
        return memberships

    @staticmethod
    def _role_atom(role: Role, subject: Term, filler: Term) -> Atom:
        if isinstance(role, InverseRole):
            return Atom(role.role.name, (filler, subject))
        return Atom(role.name, (subject, filler))

    def _concept_fact(self, concept: BasicConcept, individual: Term, depth: int) -> Optional[Atom]:
        """Fact asserting that *individual* belongs to a basic concept.

        For existential concepts a fresh null filler is invented; the
        caller is responsible for the restricted-chase check.
        """
        if isinstance(concept, AtomicConcept):
            return Atom(concept.name, (individual,))
        return self._role_atom(concept.role, individual, self._fresh_null())

    # -- main loop ----------------------------------------------------------------

    def chase(self, facts: Iterable[Atom]) -> FrozenSet[Atom]:
        """Return the saturated ABox (original facts plus derived ones)."""
        ontology = self.ontology
        concept_axioms = [a for a in ontology.positive_concept_inclusions()]
        role_axioms = [a for a in ontology.positive_role_inclusions()]

        current: Set[Atom] = set(facts)
        depth_of: Dict[Term, int] = {}

        def depth(term: Term) -> int:
            return depth_of.get(term, 0)

        def has_filler(individual: Term, role: Role, fact_set: Set[Atom]) -> bool:
            predicate = role.predicate
            if isinstance(role, InverseRole):
                return any(
                    fact.predicate == predicate and fact.args[1] == individual
                    for fact in fact_set
                )
            return any(
                fact.predicate == predicate and fact.args[0] == individual
                for fact in fact_set
            )

        changed = True
        while changed:
            changed = False
            additions: Set[Atom] = set()

            # Role inclusions: R ⊑ S.
            for axiom in role_axioms:
                lhs, rhs = axiom.lhs, axiom.rhs
                lhs_predicate = lhs.predicate
                for fact in current:
                    if fact.predicate != lhs_predicate or fact.arity != 2:
                        continue
                    if isinstance(lhs, InverseRole):
                        subject, filler = fact.args[1], fact.args[0]
                    else:
                        subject, filler = fact.args[0], fact.args[1]
                    derived = self._role_atom(rhs, subject, filler)
                    if derived not in current:
                        additions.add(derived)

            # Concept inclusions: B1 ⊑ B2.
            for axiom in concept_axioms:
                lhs, rhs = axiom.lhs, axiom.rhs
                members: Set[Term] = set()
                for fact in current:
                    for individual, concept in self._membership_atoms(fact, ontology):
                        if concept == lhs:
                            members.add(individual)
                for individual in members:
                    if isinstance(rhs, AtomicConcept):
                        derived = Atom(rhs.name, (individual,))
                        if derived not in current:
                            additions.add(derived)
                    elif isinstance(rhs, ExistentialRestriction):
                        if has_filler(individual, rhs.role, current) or has_filler(
                            individual, rhs.role, additions
                        ):
                            continue
                        if depth(individual) >= self.max_depth:
                            continue
                        null = self._fresh_null()
                        depth_of[null] = depth(individual) + 1
                        derived = self._role_atom(rhs.role, individual, null)
                        additions.add(derived)

            if additions:
                current |= additions
                changed = True
                if len(current) > self.max_facts:
                    raise RuntimeError(
                        f"chase exceeded {self.max_facts} facts; increase max_facts or "
                        "use the rewriting strategy"
                    )

        return frozenset(current)
