"""OBDM substrate: schemas, databases, mappings, specifications, systems, certain answers."""

from .certain_answers import STRATEGIES, CertainAnswerEngine, OntologyQuery
from .chase import ChaseEngine, is_labelled_null, tuple_has_null
from .database import DatabaseDelta, SourceDatabase
from .mapping import Mapping, MappingAssertion
from .rewriting import PerfectRefRewriter
from .schema import RelationSignature, SourceSchema
from .specification import OBDMSpecification
from .system import OBDMSystem
from .virtual_abox import VirtualABox, retrieve_abox

__all__ = [
    "STRATEGIES",
    "CertainAnswerEngine",
    "ChaseEngine",
    "DatabaseDelta",
    "Mapping",
    "MappingAssertion",
    "OBDMSpecification",
    "OBDMSystem",
    "OntologyQuery",
    "PerfectRefRewriter",
    "RelationSignature",
    "SourceDatabase",
    "SourceSchema",
    "VirtualABox",
    "is_labelled_null",
    "retrieve_abox",
    "tuple_has_null",
]
