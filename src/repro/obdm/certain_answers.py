"""Certain answers of ontology queries over OBDM systems.

Given an OBDM specification ``J = <O, S, M>``, an ``S``-database ``D``
and a query ``q_O`` over the ontology, the certain answers
``cert_{q_O, J}^D`` are the tuples of constants that satisfy ``q_O`` in
**every** model of ``<J, D>`` (Section 2 of the paper).  Under sound
GAV mappings and a DL-Lite_R ontology this can be computed in two
equivalent ways, both implemented here:

* ``rewriting`` — compute the perfect rewriting of ``q_O`` w.r.t. ``O``
  (a UCQ) and evaluate it over the retrieved ABox ``A(M, D)``;
* ``chase``     — saturate ``A(M, D)`` with the positive axioms of ``O``
  (restricted chase with labelled nulls) and evaluate ``q_O`` directly,
  discarding answers that contain nulls.

The explanation framework calls this engine once per (query, border)
pair, so the engine routes every expensive step through a shared
:class:`~repro.engine.cache.EvaluationCache`: rewritings are memoized by
query signature, and chase saturation is memoized per ABox fact set, so
repeated ``is_certain_answer`` calls against the same border no longer
re-run the chase.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set, Tuple, Union

from ..dl.ontology import Ontology
from ..engine.cache import (
    CacheLimits,
    DeltaPolicy,
    EvaluationCache,
    KernelPolicy,
    PushdownPolicy,
    VerdictPolicy,
)
from ..errors import CertainAnswerError
from ..queries.atoms import Atom
from ..queries.cq import ConjunctiveQuery
from ..queries.evaluation import FactIndex, contains_tuple, evaluate
from ..queries.terms import Constant
from ..queries.ucq import UnionOfConjunctiveQueries, query_key
from .backend import PushdownUnsupported
from .chase import ChaseEngine, tuple_has_null
from .database import SourceDatabase
from .mapping import Mapping
from .rewriting import PerfectRefRewriter
from .virtual_abox import VirtualABox, retrieve_abox

OntologyQuery = Union[ConjunctiveQuery, UnionOfConjunctiveQueries]

STRATEGIES = ("rewriting", "chase")


class CertainAnswerEngine:
    """Computes certain answers for a fixed specification ``J = <O, S, M>``."""

    def __init__(
        self,
        ontology: Ontology,
        mapping: Mapping,
        strategy: str = "rewriting",
        chase_depth: int = 3,
    ):
        if strategy not in STRATEGIES:
            raise CertainAnswerError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        self.ontology = ontology
        self.mapping = mapping
        self.strategy = strategy
        self.chase_depth = chase_depth
        self._rewriter = PerfectRefRewriter(ontology)
        # The engine owns its cache: the memoized saturator/rewriter close
        # over this ontology, so sharing happens via the engine, never by
        # injecting a cache built for a different specification.
        self.cache = EvaluationCache(
            saturator=self._chase_facts, rewriter=self._rewriter.rewrite
        )
        # Toggle for the bitset verdict-matrix scoring path; disabling it
        # restores the legacy per-pair J-matching path (differential
        # tests pin the two against each other).
        self.verdicts = VerdictPolicy()
        # Toggle for the pool-level match kernel (one-pass verdict rows
        # over a unified border index); disabling it restores per-pair
        # row construction inside the verdict matrix.
        self.kernel = KernelPolicy()
        # Toggle for the fact-level database delta path; disabling it
        # makes every applied delta behave like the legacy cold rebuild
        # (full cache drop + session rebuild on next request).
        self.delta = DeltaPolicy()
        # Toggle for whole-rewriting SQL pushdown (rewriting strategy
        # only): when the source database's backend supports it, the
        # rewritten UCQ runs as one pushed-down SQL statement; any
        # PushdownUnsupported falls back to the legacy in-memory
        # evaluation per query, counted in cache.stats.
        self.pushdown = PushdownPolicy()

    # -- ABox handling -------------------------------------------------------

    def retrieve(self, database: SourceDatabase) -> VirtualABox:
        """Retrieve the virtual ABox of a source database."""
        return retrieve_abox(self.mapping, database)

    def _chase_facts(self, facts: FrozenSet[Atom]) -> FrozenSet[Atom]:
        """Chase a fact set with a fresh engine (deterministic null names)."""
        engine = ChaseEngine(self.ontology, max_depth=self.chase_depth)
        return engine.chase(facts)

    def saturate(self, abox: VirtualABox) -> FactIndex:
        """Index over the chased ABox, memoized per fact set and depth.

        ``chase_depth`` is part of the memo key: reconfiguring the depth
        on a live engine must not serve saturations chased at the old
        bound.
        """
        return self.cache.saturated_index(abox.facts, key=(abox.facts, self.chase_depth))

    # -- rewriting cache ---------------------------------------------------------

    def rewrite(self, query: OntologyQuery) -> UnionOfConjunctiveQueries:
        """Perfect rewriting of a query, cached by canonical signature."""
        return self.cache.rewriting(query)

    # -- cache lifecycle ---------------------------------------------------------

    def configure_cache_limits(self, limits: CacheLimits) -> None:
        """Bound the memo layers for long-lived use (LRU eviction beyond).

        The engine stays correct under any limits — keys are content-
        addressed, so eviction only costs recomputation; eviction counts
        land in ``cache.stats.evictions``.
        """
        self.cache.configure_limits(limits)

    def cache_fingerprint(self) -> str:
        """Content hash of the specification the memo values depend on.

        Memo keys are content-addressed *within one specification*: the
        chase and the rewriter are functions of the ontology, border-ABox
        retrieval of the mapping.  Snapshots are stamped with this hash
        so a restarted engine refuses memos computed under a different
        (e.g. since-updated) ontology or mapping, where equal keys would
        silently map to different values.
        """
        import hashlib

        payload = "\n".join(
            sorted(str(axiom) for axiom in self.ontology.axioms)
            + sorted(str(assertion) for assertion in self.mapping)
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def save_cache(self, path) -> dict:
        """Persist the memo state so a restarted engine starts warm."""
        return self.cache.save(path, fingerprint=self.cache_fingerprint())

    def load_cache(self, path) -> dict:
        """Merge a persisted memo snapshot back in (live entries win).

        Raises ``ValueError`` when the snapshot was saved against a
        different specification (see :meth:`cache_fingerprint`).
        """
        return self.cache.load(path, fingerprint=self.cache_fingerprint())

    # -- certain answers ------------------------------------------------------------

    def certain_answers(
        self,
        query: OntologyQuery,
        database: SourceDatabase,
        abox: Optional[VirtualABox] = None,
    ) -> Set[Tuple[Constant, ...]]:
        """All certain answers of *query* w.r.t. ``J`` and *database*."""
        abox = abox if abox is not None else self.retrieve(database)
        if self.strategy == "rewriting":
            rewriting = self.rewrite(query)
            if self.pushdown.enabled:
                try:
                    return self.cache.pushdown_result(
                        ("pushdown", query_key(rewriting), abox.facts),
                        lambda: database.ucq_certain_answers(rewriting, abox.facts),
                    )
                except PushdownUnsupported:
                    self.cache.stats.count("pushdown_fallbacks")
            return rewriting.evaluate((), index=abox.index)
        saturated = self.saturate(abox)
        answers = self._evaluate_plain(query, saturated)
        return {answer for answer in answers if not tuple_has_null(answer)}

    def is_certain_answer(
        self,
        query: OntologyQuery,
        answer: Sequence,
        database: SourceDatabase,
        abox: Optional[VirtualABox] = None,
    ) -> bool:
        """Membership test ``answer ∈ cert_{query, J}^database``.

        This is the primitive behind ``J``-matching (Definition 3.4): the
        tuple is bound into the query before evaluation, which avoids
        enumerating the full answer set.
        """
        normalized = tuple(
            value if isinstance(value, Constant) else Constant(value) for value in answer
        )
        abox = abox if abox is not None else self.retrieve(database)
        if self.strategy == "rewriting":
            rewriting = self.rewrite(query)
            if self.pushdown.enabled:
                try:
                    return self.cache.pushdown_result(
                        ("pushdown", query_key(rewriting), abox.facts, normalized),
                        lambda: database.ucq_contains_tuple(
                            rewriting, normalized, abox.facts
                        ),
                    )
                except PushdownUnsupported:
                    self.cache.stats.count("pushdown_fallbacks")
            return rewriting.contains_tuple(normalized, (), index=abox.index)
        saturated = self.saturate(abox)
        if isinstance(query, ConjunctiveQuery):
            return contains_tuple(query, normalized, (), index=saturated)
        return query.contains_tuple(normalized, (), index=saturated)

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _evaluate_plain(query: OntologyQuery, index: FactIndex) -> Set[Tuple[Constant, ...]]:
        if isinstance(query, ConjunctiveQuery):
            return evaluate(query, (), index=index)
        return query.evaluate((), index=index)
