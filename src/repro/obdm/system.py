"""OBDM systems ``Σ = <J, D>``.

An OBDM system pairs a specification with a concrete source database.
It is the object the explanation framework works against: borders are
computed over ``D``, and ``J``-matching evaluates certain answers over
sub-databases of ``D`` (the borders).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set, Tuple

from ..errors import OBDMError
from ..queries.atoms import Atom
from ..queries.terms import Constant
from .certain_answers import OntologyQuery
from .database import SourceDatabase
from .specification import OBDMSpecification
from .virtual_abox import VirtualABox


class OBDMSystem:
    """The pair ``Σ = <J, D>`` of a specification and a source database."""

    def __init__(self, specification: OBDMSpecification, database: SourceDatabase, name: str = "Sigma"):
        self.specification = specification
        self.database = database
        self.name = name
        self._abox: Optional[VirtualABox] = None

    # -- convenience accessors ------------------------------------------------

    @property
    def ontology(self):
        return self.specification.ontology

    @property
    def mapping(self):
        return self.specification.mapping

    @property
    def schema(self):
        return self.specification.schema

    # -- ABox ------------------------------------------------------------------

    def virtual_abox(self) -> VirtualABox:
        """The retrieved ABox of the full database ``D`` (cached)."""
        if self._abox is None:
            self._abox = self.specification.retrieve_abox(self.database)
        return self._abox

    def invalidate(self) -> None:
        """Drop cached state after the database has been modified."""
        self._abox = None

    # -- certain answers -----------------------------------------------------------

    def certain_answers(
        self,
        query: OntologyQuery,
        facts: Optional[Iterable[Atom]] = None,
    ) -> Set[Tuple[Constant, ...]]:
        """Certain answers over the full database or over a sub-database.

        When *facts* is given it must be a subset of ``D`` (for instance a
        border ``B_{t,r}(D)``); certain answers are then computed w.r.t.
        the sub-database they induce, exactly as in Definition 3.4.
        """
        database = self._sub_database(facts)
        abox = self.virtual_abox() if facts is None else None
        return self.specification.certain_answers(query, database, abox=abox)

    def is_certain_answer(
        self,
        query: OntologyQuery,
        answer: Sequence,
        facts: Optional[Iterable[Atom]] = None,
    ) -> bool:
        """Membership test for one tuple, optionally over a sub-database."""
        database = self._sub_database(facts)
        abox = self.virtual_abox() if facts is None else None
        return self.specification.is_certain_answer(query, answer, database, abox=abox)

    def _sub_database(self, facts: Optional[Iterable[Atom]]) -> SourceDatabase:
        if facts is None:
            return self.database
        return self.database.restrict_to(facts)

    # -- domain ----------------------------------------------------------------------

    def domain(self) -> Set[Constant]:
        """The active domain ``dom(D)``."""
        return set(self.database.domain())

    def __str__(self):
        return f"OBDMSystem({self.name!r}: {self.specification.name!r} + {self.database.name!r})"
