"""Perfect reformulation (PerfectRef) of CQs/UCQs under DL-Lite_R TBoxes.

Query answering in OBDM is a logical inference task: the certain answers
must take the ontology axioms into account.  For DL-Lite this can be
done entirely at the query level: the *perfect rewriting* of a CQ ``q``
w.r.t. a TBox ``O`` is a UCQ ``q_r`` such that, for every ABox ``A``,
the certain answers of ``q`` over ``<O, A>`` equal the plain evaluation
of ``q_r`` over ``A``.  This module implements the classic PerfectRef
algorithm (Calvanese et al., "Tractable reasoning and efficient query
answering in description logics: the DL-Lite family"):

repeat until no new query is produced:
  (a) **atom rewriting** — replace an atom ``g`` with ``gr(g, I)`` for
      every positive inclusion ``I`` applicable to ``g``;
  (b) **reduce** — unify two unifiable atoms of a query; the unification
      can turn bound terms into unbound ones and enable step (a).

The notion of *bound* term is the standard one: answer variables, shared
variables and constants are bound; a variable with a single occurrence
is unbound and is treated like the anonymous term ``_``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..dl.ontology import Ontology
from ..dl.reasoner import Reasoner
from ..dl.syntax import (
    AtomicConcept,
    AtomicRole,
    BasicConcept,
    ConceptInclusion,
    ExistentialRestriction,
    InverseRole,
    Role,
    RoleInclusion,
)
from ..errors import CertainAnswerError
from ..queries.atoms import Atom, Substitution, apply_substitution
from ..queries.cq import ConjunctiveQuery
from ..queries.terms import Term, Variable, VariableFactory, is_variable
from ..queries.ucq import UnionOfConjunctiveQueries


class PerfectRefRewriter:
    """Rewrites ontology queries into UCQs that can be evaluated directly."""

    def __init__(self, ontology: Ontology, max_queries: int = 10_000):
        self.ontology = ontology
        self.max_queries = max_queries
        self._concept_inclusions = ontology.positive_concept_inclusions()
        self._role_inclusions = ontology.positive_role_inclusions()

    # -- public API ----------------------------------------------------------

    def rewrite(self, query: Union[ConjunctiveQuery, UnionOfConjunctiveQueries]) -> UnionOfConjunctiveQueries:
        """Compute the perfect rewriting of a CQ or UCQ as a UCQ."""
        if isinstance(query, ConjunctiveQuery):
            disjuncts = [query]
            name = query.name
        else:
            disjuncts = list(query.disjuncts)
            name = query.name

        produced: Dict[Tuple, ConjunctiveQuery] = {}
        frontier: List[ConjunctiveQuery] = []
        for disjunct in disjuncts:
            self._validate(disjunct)
            signature = disjunct.signature()
            if signature not in produced:
                produced[signature] = disjunct
                frontier.append(disjunct)

        while frontier:
            current = frontier.pop()
            for candidate in self._expand(current):
                signature = candidate.signature()
                if signature in produced:
                    continue
                if len(produced) >= self.max_queries:
                    raise CertainAnswerError(
                        f"perfect rewriting exceeded {self.max_queries} disjuncts; "
                        "the ontology/query combination is too prolific"
                    )
                produced[signature] = candidate
                frontier.append(candidate)

        # Deterministic disjunct order (sorted by canonical signature):
        # union semantics are order-independent, but the SQL pushdown
        # compiles the disjunct sequence to one statement text, and a
        # stable text keeps sqlite3's prepared-statement cache and the
        # pushdown memo effective across runs.
        ordered = sorted(produced.values(), key=lambda cq: cq.signature())
        return UnionOfConjunctiveQueries(tuple(ordered), name).deduplicated()

    # -- validation ----------------------------------------------------------

    def _validate(self, query: ConjunctiveQuery) -> None:
        for atom in query.body:
            if not self.ontology.has_predicate(atom.predicate):
                raise CertainAnswerError(
                    f"query atom {atom} uses predicate {atom.predicate!r} that is not "
                    f"in the ontology vocabulary"
                )
            expected = self.ontology.arity_of(atom.predicate)
            if atom.arity != expected:
                raise CertainAnswerError(
                    f"query atom {atom} has arity {atom.arity}, but ontology predicate "
                    f"{atom.predicate!r} has arity {expected}"
                )

    # -- expansion steps ---------------------------------------------------------

    def _expand(self, query: ConjunctiveQuery) -> Iterable[ConjunctiveQuery]:
        yield from self._atom_rewritings(query)
        yield from self._reductions(query)

    def _atom_rewritings(self, query: ConjunctiveQuery) -> Iterable[ConjunctiveQuery]:
        factory = VariableFactory(query.variables())
        for position, atom in enumerate(query.body):
            for replacement in self._applicable_replacements(query, atom, factory):
                new_body = list(query.body)
                new_body[position] = replacement
                yield query.with_body(tuple(new_body))

    def _applicable_replacements(
        self, query: ConjunctiveQuery, atom: Atom, factory: VariableFactory
    ) -> Iterable[Atom]:
        predicate = atom.predicate
        if predicate in self.ontology.concept_names and atom.arity == 1:
            term = atom.args[0]
            target: BasicConcept = AtomicConcept(predicate)
            for inclusion in self._concept_inclusions:
                if inclusion.rhs == target:
                    yield self._concept_atom(inclusion.lhs, term, factory)
        elif predicate in self.ontology.role_names and atom.arity == 2:
            first, second = atom.args
            first_bound = query.is_bound(first)
            second_bound = query.is_bound(second)
            role = AtomicRole(predicate)
            # Concept inclusions with ∃P (resp. ∃P⁻) on the right are
            # applicable when the second (resp. first) argument is unbound.
            if not second_bound:
                target = ExistentialRestriction(role)
                for inclusion in self._concept_inclusions:
                    if inclusion.rhs == target:
                        yield self._concept_atom(inclusion.lhs, first, factory)
            if not first_bound:
                target = ExistentialRestriction(role.inverse())
                for inclusion in self._concept_inclusions:
                    if inclusion.rhs == target:
                        yield self._concept_atom(inclusion.lhs, second, factory)
            # Role inclusions are applicable regardless of boundness.
            for inclusion in self._role_inclusions:
                rhs = inclusion.rhs
                if isinstance(rhs, (AtomicRole, InverseRole)):
                    if rhs == role:
                        yield self._role_atom(inclusion.lhs, first, second)
                    elif rhs == role.inverse():
                        yield self._role_atom(inclusion.lhs, second, first)

    def _concept_atom(self, concept: BasicConcept, term: Term, factory: VariableFactory) -> Atom:
        """Atom asserting membership of *term* in a basic concept."""
        if isinstance(concept, AtomicConcept):
            return Atom(concept.name, (term,))
        role = concept.role
        fresh = factory.fresh()
        if isinstance(role, InverseRole):
            return Atom(role.role.name, (fresh, term))
        return Atom(role.name, (term, fresh))

    def _role_atom(self, role: Role, first: Term, second: Term) -> Atom:
        """Atom asserting that ``(first, second)`` is in *role*."""
        if isinstance(role, InverseRole):
            return Atom(role.role.name, (second, first))
        return Atom(role.name, (first, second))

    # -- reduce step -------------------------------------------------------------

    def _reductions(self, query: ConjunctiveQuery) -> Iterable[ConjunctiveQuery]:
        body = query.body
        for i in range(len(body)):
            for j in range(i + 1, len(body)):
                unifier = body[i].unify(body[j])
                if unifier is None:
                    continue
                try:
                    reduced = self._apply_reduce(query, i, j, unifier)
                except CertainAnswerError:
                    continue
                if reduced is not None:
                    yield reduced

    def _apply_reduce(
        self, query: ConjunctiveQuery, i: int, j: int, unifier: Substitution
    ) -> Optional[ConjunctiveQuery]:
        # The unifier must not identify an answer variable with a constant
        # or merge two distinct answer variables (that would change the
        # semantics of the answer tuple).
        head_variables = set(query.head)
        images: Dict[Term, Term] = {}
        for variable, term in unifier.items():
            if variable in head_variables:
                if not is_variable(term):
                    return None
        new_body = [atom for position, atom in enumerate(query.body) if position != j]
        substituted = apply_substitution(tuple(new_body), unifier)
        new_head = []
        for variable in query.head:
            image = unifier.get(variable, variable)
            if not is_variable(image):
                return None
            new_head.append(image)
        if len(set(new_head)) != len(new_head):
            return None
        return ConjunctiveQuery(tuple(new_head), substituted, query.name)
