"""Experiment E5: the certain-answer pipeline (Figure 1's architecture).

Figure 1 of the paper depicts the OBDM specification/system split; the
operational content is the certain-answer service of Section 2.  This
experiment validates and measures it:

* correctness — the rewriting strategy and the chase strategy must
  return identical certain answers on every (query, database) pair;
* ontology gain — how many answers are contributed by the ontology
  axioms (certain answers vs. plain evaluation of the query over the
  retrieved ABox without reasoning);
* cost — wall-clock time of both strategies as ``|D|`` grows.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

from ..obdm.system import OBDMSystem
from ..ontologies.university import build_university_specification, example_queries
from ..queries.evaluation import evaluate
from ..workloads.university_gen import UniversityWorkloadConfig, generate_university_workload
from .tables import ExperimentResult


def run_certain_answers(
    sizes: Sequence[int] = (50, 100, 200),
    seed: int = 13,
) -> ExperimentResult:
    """E5: rewriting vs chase — agreement, ontology gain and cost."""
    specification = build_university_specification()
    queries = example_queries()
    result = ExperimentResult(
        "E5",
        "Certain answers over the university OBDM system: rewriting vs chase",
        notes="'gain' counts answers contributed by ontology reasoning "
        "(certain answers minus plain ABox evaluation)",
    )
    for size in sizes:
        workload = generate_university_workload(
            UniversityWorkloadConfig(students=size, enrolments_per_student=2, seed=seed)
        )
        database = workload.database
        rewriting_spec = specification.with_strategy("rewriting")
        chase_spec = specification.with_strategy("chase")
        for name, query in queries.items():
            start = time.perf_counter()
            rewriting_answers = rewriting_spec.certain_answers(query, database)
            rewriting_seconds = time.perf_counter() - start

            start = time.perf_counter()
            chase_answers = chase_spec.certain_answers(query, database)
            chase_seconds = time.perf_counter() - start

            abox = rewriting_spec.retrieve_abox(database)
            plain_answers = evaluate(query, (), index=abox.index)

            result.add_row(
                students=size,
                facts=len(database),
                query=name,
                certain_answers=len(rewriting_answers),
                strategies_agree=rewriting_answers == chase_answers,
                ontology_gain=len(rewriting_answers) - len(plain_answers),
                rewriting_seconds=round(rewriting_seconds, 4),
                chase_seconds=round(chase_seconds, 4),
            )
    return result
