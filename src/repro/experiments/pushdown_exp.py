"""Experiment E17: whole-rewriting SQL pushdown + memory-mapped bit matrices.

PR 9 moved *fact storage* out of core; the certain-answer check itself
still ran in Python — :class:`~repro.obdm.certain_answers.CertainAnswerEngine`
evaluated every disjunct of the perfect rewriting against the border's
``FactIndex``, one homomorphism enumeration at a time.  This experiment
measures the two halves of PR 10:

* the engine now compiles the **entire rewritten UCQ into one SQL
  statement** (per-disjunct self-join SELECTs combined with ``UNION``,
  the border restriction a pushed-down constant filter) and hands it to
  the :class:`~repro.obdm.backend.SQLiteBackend` — one sqlite3
  execution replaces ``O(|disjuncts| × |border facts|)`` Python work,
  gated by ``engine.pushdown.enabled`` with a per-query
  ``PushdownUnsupported`` fallback;
* :class:`~repro.engine.batch_kernel.MultiLabelingBatchKernel` packs
  its global verdict matrix into a ``numpy.memmap``-backed temp file
  under ``engine.kernel.spill`` and slices layouts slab-by-slab, so
  the 8×-wider unpacked intermediate never materialises at full size.

Four rows over the banded loan domain:

* ``pushdown_identity`` — one workload served end-to-end (verdicts and
  kernel disabled, so serving routes through ``is_certain_answer``
  per (query, tuple, border) — the regime the pushdown accelerates)
  through the memory backend, SQLite with pushdown, and SQLite with
  pushdown disabled.  Rankings must be byte-identical; the sqlite
  phase must show pushdown traffic and zero fallbacks, the other two
  must fall back on every check (the toggle is inert, not wrong, off
  the SQL backend).
* ``certain_answer_speedup`` — the workload scaled ``scale``× and a
  single pass over *distinct* (query, tuple) work items (each item
  evaluated exactly once per mode, so the engine's memo layer cannot
  inflate the claim) on the same SQLite store with
  ``engine.pushdown.enabled`` on vs off.  Each mode's one-time
  per-ABox setup (SQL fact ingest vs legacy ``FactIndex`` build) is
  timed separately; the gated phase is the *repeated* evaluation work.
  Answer sets and membership verdicts must agree item for item;
  ``benchmarks/bench_pushdown_rewriting.py`` gates the evaluation
  speedup at ``>= 3``×.
* ``memmap_matrix`` — a deterministic synthetic bit matrix driven
  through the exact production helpers (``pack_rows`` →
  :func:`~repro.engine.batch_kernel.gather_packed_spilled` →
  ``masked_popcounts``) in-RAM vs spilled, under :mod:`tracemalloc`:
  packed ints, gathered slices and δ-counts must be bit-identical and
  the spilled numpy heap peak strictly below the in-RAM peak.
* ``memmap_batch_identity`` — the real path: one
  ``MultiLabelingBatchKernel`` batch over two loan labelings with
  ``engine.kernel.spill`` off vs on; every layout's rows and counts
  must match bit for bit.
"""

from __future__ import annotations

import gc
import time
import tracemalloc
from typing import Dict, List, Tuple

from ..obdm.backend import SQLiteBackend
from ..obdm.system import OBDMSystem
from ..ontologies.loans import build_loan_schema, build_loan_specification
from ..obdm.database import SourceDatabase
from ..service import ExplanationService
from .out_of_core_exp import populate_loan_facts
from .scalability import build_loan_pool
from .tables import ExperimentResult


def _legacy_service(database: SourceDatabase, radius: int = 0) -> ExplanationService:
    """A service whose serving path goes through ``is_certain_answer``.

    With verdicts and the kernel disabled, every (candidate, border)
    pair is J-matched individually — exactly the per-check regime the
    whole-rewriting pushdown compiles into single SQL statements.
    """
    specification = build_loan_specification()
    specification.engine.verdicts.enabled = False
    specification.engine.kernel.enabled = False
    system = OBDMSystem(specification, database, name="loan_pushdown")
    return ExplanationService(system, radius=radius)


def _speedup_work_items(pool, applicants: int, members_per_query: int):
    """Distinct (query, candidate tuple) membership items for the timed pass.

    Deterministic: query ``i`` of the pool is checked against
    ``members_per_query`` applicant names starting at offset ``i`` (all
    arity-1 — the loan candidates describe applicants).  Each item is
    distinct, so each is computed exactly once per mode and memoization
    cannot shorten the measured phase.
    """
    items = []
    for index, query in enumerate(pool):
        if query.arity != 1:
            continue
        for step in range(members_per_query):
            name = f"APP{(index * members_per_query + step) % applicants:04d}"
            items.append((query, (name,)))
    return items


def _timed_certain_answer_pass(engine, database, pool, items):
    """One full pass: every pool query enumerated, every item membership-checked.

    Three costs are deliberately kept out of the evaluation timer,
    because neither is what the pushdown changes and each would otherwise
    drown the phase being measured:

    * ABox retrieval (mapping application — identical in both modes);
    * perfect rewriting (identical in both modes, memoized per engine);
    * each mode's one-time per-ABox setup, timed separately as
      ``setup_seconds`` — the SQL path's fact ingest into the
      ``abox_*`` tables vs the legacy path's ``FactIndex`` build.  Both
      are paid once per ABox however many checks follow.

    The evaluation timer then covers exactly the repeated work of the
    certain-answer phase: per-query UCQ evaluation and per-item
    membership checks.
    """
    from ..queries.terms import Constant

    abox = engine.retrieve(database)
    for query in pool:
        engine.rewrite(query)
    gc.collect()
    setup_started = time.perf_counter()
    if engine.pushdown.enabled and database.supports_ucq_pushdown():
        # Registers the ABox rows (the one-time ingest); the probe name
        # never occurs in the workload, so the verdict list below is
        # computed entirely inside the evaluation timer.
        database.ucq_contains_tuple(
            engine.rewrite(pool[0]), (Constant("WARMUP"),), abox.facts
        )
    else:
        abox.index  # builds the legacy FactIndex
    setup_seconds = time.perf_counter() - setup_started
    started = time.perf_counter()
    answers = {}
    for query in pool:
        answers[str(query)] = engine.certain_answers(query, database, abox=abox)
    verdicts = [
        engine.is_certain_answer(query, candidate, database, abox=abox)
        for query, candidate in items
    ]
    elapsed = time.perf_counter() - started
    return answers, verdicts, setup_seconds, elapsed


def _synthetic_rows(count: int, width: int) -> List[int]:
    """Deterministic dense-ish bitset rows exercising every word boundary."""
    mask = (1 << width) - 1
    golden = 0x9E3779B97F4A7C15
    return [((1 << (i % width)) | (i * golden) | (i << (i % 61))) & mask for i in range(count)]


def _matrix_phase(rows: List[int], width: int, selection: List[int], mask: int, spill: bool):
    """Pack → gather → popcount through the production helpers, peak-traced."""
    from ..engine import batch_kernel as bk

    gc.collect()
    tracemalloc.start()
    words = bk.pack_rows(rows, width, spill=spill)
    if spill:
        gathered_words, gathered_ints = bk.gather_packed_spilled(
            words, selection, width, len(rows)
        )
    else:
        local_bits = bk.unpack_bits(words, width)[:, selection]
        gathered_words, gathered_ints = bk.pack_bit_matrix(local_bits)
    counts = bk.masked_popcounts(gathered_words, mask, len(selection))
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return gathered_ints, [int(value) for value in counts], peak


def run_pushdown_rewriting(
    base_applicants: int = 24,
    scale: int = 10,
    candidate_pool: int = 16,
    labeled_per_side: int = 8,
    members_per_query: int = 3,
    repeats: int = 2,
    matrix_rows: int = 1024,
    matrix_width: int = 384,
    seed: int = 7,
    radius: int = 0,
) -> ExperimentResult:
    """E17: pushdown identity + speedup, memmap matrix identity + heap peak."""
    workload = build_loan_pool(
        base_applicants, candidate_pool, labeled_per_side, labelings=2, seed=seed
    )
    base, pool, labeling = workload.database, workload.pool, workload.labelings[0]

    result = ExperimentResult(
        "E17",
        "Whole-rewriting SQL pushdown + memory-mapped batch bit matrices",
        notes=(
            f"loan domain, base |D|={len(base)} facts, scale x{scale}, "
            f"{len(pool)} candidates, radius={radius}"
        ),
    )

    # -- pushdown identity, served end-to-end ------------------------------
    stores = {
        "memory": base,
        "sqlite": base.with_backend("sqlite", name="pd_sqlite"),
        "sqlite_nopushdown": base.with_backend(
            SQLiteBackend(pushdown=False), name="pd_sqlite_nopush"
        ),
    }
    renders: Dict[str, str] = {}
    traffic: Dict[str, Tuple[int, int]] = {}
    for mode, database in stores.items():
        service = _legacy_service(database, radius=radius)
        renders[mode] = service.explain(
            labeling, candidates=pool, top_k=None
        ).render(top_k=None)
        report = service.size_report()
        traffic[mode] = (
            report["pushdown_hits"] + report["pushdown_misses"],
            report["pushdown_fallbacks"],
        )
    result.add_row(
        mode="pushdown_identity",
        applicants=base_applicants,
        facts=len(base),
        backends=len(stores),
        identical_rankings=len(set(renders.values())) == 1,
        sqlite_pushdown_checks=traffic["sqlite"][0],
        sqlite_fallbacks=traffic["sqlite"][1],
        memory_fallbacks=traffic["memory"][1],
        nopushdown_fallbacks=traffic["sqlite_nopushdown"][1],
        pushdown_served=traffic["sqlite"][0] > 0 and traffic["sqlite"][1] == 0,
        fallback_served=traffic["memory"][1] > 0
        and traffic["sqlite_nopushdown"][1] > 0,
    )

    # -- certain-answer speedup at scale -----------------------------------
    scaled_applicants = base_applicants * scale
    scaled = populate_loan_facts(
        SourceDatabase(
            build_loan_schema(), name="pd_scaled", backend="sqlite"
        ),
        scaled_applicants,
        seed,
    )
    items = _speedup_work_items(pool, scaled_applicants, members_per_query)

    def timed_mode(pushdown: bool):
        # A fresh engine per repeat: each pass pays its own rewriting
        # cost and starts with a cold memo, so the comparison is
        # evaluation vs evaluation, not cache vs cache.  Best-of-N
        # damps scheduler noise on phases of a few tens of ms.
        best = None
        for _ in range(max(1, repeats)):
            engine = build_loan_specification().engine
            engine.pushdown.enabled = pushdown
            answers, verdicts, setup, elapsed = _timed_certain_answer_pass(
                engine, scaled, pool, items
            )
            if best is None or elapsed < best[3]:
                best = (answers, verdicts, setup, elapsed)
        return best

    legacy_answers, legacy_verdicts, legacy_setup, legacy_seconds = timed_mode(False)
    push_answers, push_verdicts, push_setup, push_seconds = timed_mode(True)
    result.add_row(
        mode="certain_answer_speedup",
        applicants=scaled_applicants,
        scale=scale,
        scaled_facts=len(scaled),
        queries=len(pool),
        membership_checks=len(items),
        legacy_setup_seconds=round(legacy_setup, 4),
        pushdown_setup_seconds=round(push_setup, 4),
        legacy_seconds=round(legacy_seconds, 4),
        pushdown_seconds=round(push_seconds, 4),
        speedup=round(legacy_seconds / push_seconds, 2) if push_seconds else None,
        identical_answers=legacy_answers == push_answers,
        identical_verdicts=legacy_verdicts == push_verdicts,
    )

    # -- memmap matrix: bit identity + heap peak ---------------------------
    rows = _synthetic_rows(matrix_rows, matrix_width)
    selection = [i for i in range(matrix_width) if i % 3 != 1]
    mask = sum(1 << i for i in range(len(selection)) if i % 2 == 0)
    ram_ints, ram_counts, ram_peak = _matrix_phase(
        rows, matrix_width, selection, mask, spill=False
    )
    spill_ints, spill_counts, spill_peak = _matrix_phase(
        rows, matrix_width, selection, mask, spill=True
    )
    result.add_row(
        mode="memmap_matrix",
        rows=matrix_rows,
        width=matrix_width,
        gathered_width=len(selection),
        identical_ints=ram_ints == spill_ints,
        identical_counts=ram_counts == spill_counts,
        ram_peak_bytes=ram_peak,
        spill_peak_bytes=spill_peak,
        peak_ratio=round(spill_peak / ram_peak, 3) if ram_peak else None,
    )

    # -- memmap batch kernel: real-path identity ---------------------------
    from ..core.matching import MatchEvaluator
    from ..engine.batch_kernel import HAS_NUMPY

    if HAS_NUMPY:
        from ..engine.batch_kernel import MultiLabelingBatchKernel
        from ..engine.verdicts import BorderColumns

        batch_runs = {}
        for spill in (False, True):
            specification = build_loan_specification()
            specification.engine.kernel.spill.enabled = spill
            system = OBDMSystem(
                specification, base.copy(name=f"pd_batch_{int(spill)}")
            )
            evaluator = MatchEvaluator(system, radius=radius)
            layouts = [
                BorderColumns.from_labeling(evaluator, lab)
                for lab in workload.labelings
            ]
            batch = MultiLabelingBatchKernel(evaluator, layouts)
            dispatched = batch.rows_for([pool] * len(layouts))
            batch_runs[spill] = [
                (layout.rows, layout.counts) for layout in dispatched
            ]
        result.add_row(
            mode="memmap_batch_identity",
            labelings=len(workload.labelings),
            pool=len(pool),
            identical_rows=batch_runs[False] == batch_runs[True],
        )
    else:  # pragma: no cover - the container bakes numpy in
        result.add_row(mode="memmap_batch_identity", skipped="numpy unavailable")
    return result
