"""Experiment E13: bit-sliced multi-labeling batching + generator pruning.

PR 5's pool-level kernel (E12) collapsed verdict-row construction for
*one* labeling into a single set-at-a-time pass.  The batch kernel
(:mod:`repro.engine.batch_kernel`) extends that along the remaining
axis: one :class:`~repro.engine.kernel.UnifiedBorderIndex` built over
the *union* of many labelings' borders serves every column layout at
once, and each layout's rows fall out as bit slices of the global rows
(stored as a 2-D numpy ``uint64`` matrix, counted with vectorised
popcounts).  The second half of the tentpole feeds the kernel's
per-atom provenance supports back into candidate *generation*:
conjunctions whose AND-of-supports bound is empty are discarded before
a query object is even materialised.

Three rows:

* ``batch_dispatch`` — L overlapping loan labelings × one candidate
  pool: one :meth:`VerdictMatrix.build_batch` dispatch (union index,
  sliced rows) vs the per-labeling PR-5 loop, retrieval warmed on both
  sides, rows byte-identical.  ``benchmarks/bench_batch_labelings.py``
  gates the speedup at ≥3×.
* ``identity`` — :meth:`OntologyExplainer.explain_batch` (whose thread
  path now pre-builds all verdict matrices through one batch dispatch)
  across **all four domain ontologies** × {thread, process} executors
  over two overlapping labelings each, against per-labeling legacy
  reports: every rendered report must be byte-identical.
* ``generator_pruning`` — top-down refinement search with the
  provenance pruner vs without, per domain: identical top-k rankings
  while ``pruned`` of ``checked`` refinements were discarded from their
  provenance bound alone (no J-match, no profile evaluation).
  Bottom-up enumeration is deliberately *not* the vehicle here: every
  abstracted body comes from one seed border's facts, so that border
  itself supports every atom and the AND-of-supports is never empty —
  the refinement lattice (add-atom / bind-constant / specialise
  combinations untethered from any single border) is where zero-support
  conjunctions actually arise.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from ..core.best_describe import BestDescriptionSearch
from ..core.explainer import OntologyExplainer
from ..core.matching import MatchEvaluator
from ..obdm.system import OBDMSystem
from ..ontologies.loans import build_loan_specification
from .kernel_exp import (
    PROBE_DOMAINS,
    build_probe_system,
    probe_labeling,
    probe_labelings,
    probe_pool,
)
from .scalability import build_loan_pool
from .tables import ExperimentResult


def run_batch_labelings(
    applicants: int = 48,
    candidate_pool: int = 36,
    labeled_per_side: int = 14,
    labelings: int = 6,
    rounds: int = 3,
    top_k: int = 5,
    seed: int = 7,
    workload=None,
) -> ExperimentResult:
    """E13: one bit-sliced dispatch for L labelings vs L kernel passes.

    *workload* accepts a prebuilt
    :class:`~repro.experiments.scalability.LoanScoringPool` with
    ``labelings`` layouts (the bench passes its fixture's result).
    Reported sizes are derived from the actual workload.
    """
    from ..engine.batch_kernel import batch_available

    if workload is None:
        workload = build_loan_pool(
            applicants, candidate_pool, labeled_per_side, labelings=labelings, seed=seed
        )
    database, pool = workload.database, workload.pool
    layouts = workload.labelings

    # -- batch dispatch: one union-index pass vs per-labeling PR-5 loop ----
    def build_seconds(batch: bool) -> Tuple[float, List[List[int]]]:
        from ..engine.verdicts import BorderColumns, VerdictMatrix

        total = 0.0
        rows: List[List[int]] = []
        for _ in range(rounds):
            specification = build_loan_specification()
            specification.engine.kernel.enabled = True
            specification.engine.kernel.batch.enabled = batch
            system = OBDMSystem(specification, database, name="loan_batch_e13")
            evaluator = MatchEvaluator(system, 1)
            matrices = []
            for labeling in layouts:
                columns = BorderColumns.from_labeling(evaluator, labeling)
                for border in columns.borders:
                    evaluator._border_abox(border)  # warm shared retrieval
                matrices.append(VerdictMatrix(evaluator, columns))
            start = time.perf_counter()
            if batch:
                VerdictMatrix.build_batch(matrices, [pool] * len(matrices))
            else:
                for matrix in matrices:
                    matrix.build(pool)
            total += time.perf_counter() - start
            rows = [[matrix.row(query) for query in pool] for matrix in matrices]
        return total, rows

    batch_seconds, batch_rows = build_seconds(batch=True)
    legacy_seconds, legacy_rows = build_seconds(batch=False)

    result = ExperimentResult(
        "E13",
        "Batch kernel: bit-sliced multi-labeling rows + generator pruning",
        notes=(
            f"loan domain, |D|={len(database)} facts, {len(pool)} candidates × "
            f"{len(layouts)} overlapping labelings, numpy slicing "
            f"{'available' if batch_available() else 'UNAVAILABLE (fallback timed)'}"
        ),
    )
    result.add_row(
        mode="batch_dispatch",
        labelings=len(layouts),
        candidates=len(pool),
        rounds=rounds,
        legacy_seconds=round(legacy_seconds, 3),
        batch_seconds=round(batch_seconds, 3),
        speedup=round(legacy_seconds / batch_seconds, 1) if batch_seconds > 0 else None,
        identical=batch_rows == legacy_rows,
        cells=None,
        pruned=None,
        checked=None,
    )

    # -- identity: 4 domains × {thread, process} × 2 labelings -------------
    identical_cells = True
    cells = 0
    for domain in PROBE_DOMAINS:
        reference_system = build_probe_system(domain, kernel=False)
        domain_labelings = probe_labelings(reference_system, count=2)
        domain_pool = probe_pool(reference_system)
        references = [
            OntologyExplainer(reference_system).explain(
                labeling, candidates=domain_pool, top_k=None
            )
            for labeling in domain_labelings
        ]
        for executor in ("thread", "process"):
            batch_system = build_probe_system(domain, kernel=True)
            reports = OntologyExplainer(batch_system).explain_batch(
                domain_labelings,
                candidates=domain_pool,
                executor=executor,
                max_workers=2,
                top_k=None,
            )
            for report, reference in zip(reports, references):
                cells += 1
                if report.render(top_k=None) != reference.render(top_k=None):
                    identical_cells = False
    result.add_row(
        mode="identity",
        labelings=2,
        candidates=None,
        rounds=1,
        legacy_seconds=None,
        batch_seconds=None,
        speedup=None,
        identical=identical_cells,
        cells=cells,
        pruned=None,
        checked=None,
    )

    # -- generator pruning: refinement lattice, bound-only discards --------
    identical_rankings = True
    pruned_total = 0
    checked_total = 0
    for domain in PROBE_DOMAINS:
        system = build_probe_system(domain, kernel=True)
        labeling = probe_labeling(system)
        search = BestDescriptionSearch(system, labeling)
        exhaustive_pool = search.candidate_pool("refine")
        pruner = search.scorer.verdict_matrix().pruner()
        pruned_pool = search.candidate_pool("refine", pruner=pruner)
        pruned_total += pruner.pruned
        checked_total += pruner.checked
        exhaustive_top = search.rank(exhaustive_pool)[:top_k]
        pruned_top = search.rank(pruned_pool)[:top_k]
        if [(str(entry.query), entry.score) for entry in exhaustive_top] != [
            (str(entry.query), entry.score) for entry in pruned_top
        ]:
            identical_rankings = False
    result.add_row(
        mode="generator_pruning",
        labelings=None,
        candidates=None,
        rounds=1,
        legacy_seconds=None,
        batch_seconds=None,
        speedup=None,
        identical=identical_rankings,
        cells=len(PROBE_DOMAINS),
        pruned=pruned_total,
        checked=checked_total,
    )
    return result
