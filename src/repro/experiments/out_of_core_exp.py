"""Experiment E16: out-of-core storage backends — SQL pushdown at scale.

The seed's :class:`~repro.obdm.database.SourceDatabase` kept every fact
in three Python dict indexes, so the heap grew linearly with ``|D|``
whether or not a request ever touched most of it.  The backend
abstraction (:mod:`repro.obdm.backend`) moves fact storage behind a
:class:`~repro.obdm.backend.StorageBackend`: the default
``MemoryBackend`` is the seed verbatim, while ``SQLiteBackend`` holds
facts in an indexed on-disk (or ``:memory:``) SQLite store, compiles
mapping source queries to single SQL statements (*pushdown*) and
streams borders out of point lookups — the Python heap never holds the
fact set.

Three rows over the banded loan domain:

* ``pushdown_identity`` — one base-size workload served through three
  stores: the memory backend, the SQLite backend with pushdown, and
  the SQLite backend with pushdown disabled (every source query falls
  back to the legacy in-memory path).  Fingerprints and served
  rankings must be byte-identical across all three, and the streaming
  :func:`populate_loan_facts` must reproduce the batch generator's
  fact set exactly (``populate_parity``).
* ``spill_identity`` — the same workload served with
  ``engine.kernel.spill.enabled`` on vs off: the unified border
  index's columnar arrays live in memory-mapped temp files vs Python
  lists, and the rankings must not move by a byte.
* ``sqlite_vs_memory`` — the workload scaled ``scale``× beyond the
  base size, populated *as a stream* into each backend and served
  end-to-end.  Python-heap allocation peaks are measured per phase
  with :mod:`tracemalloc` (deterministic, unlike RSS sampling): the
  SQLite phase must stay below the memory phase's peak — its facts
  live outside the tracked heap — while producing the identical
  ranking.  ``benchmarks/bench_out_of_core.py`` gates this row at
  ``scale >= 10``.
"""

from __future__ import annotations

import gc
import tracemalloc
from typing import Dict, Tuple

from ..obdm.backend import SQLiteBackend
from ..obdm.database import SourceDatabase
from ..obdm.system import OBDMSystem
from ..ontologies.loans import build_loan_schema, build_loan_specification
from ..service import ExplanationService
from ..workloads.generator import SeededGenerator, banded
from ..workloads.loans_gen import (
    AGE_BANDS,
    AMOUNT_BANDS,
    CITIES,
    EMPLOYMENTS,
    INCOME_BANDS,
    PURPOSES,
)
from .scalability import build_loan_pool
from .tables import ExperimentResult


def populate_loan_facts(
    database: SourceDatabase, applicants: int, seed: int = 7
) -> SourceDatabase:
    """Stream *applicants* rows of banded loan facts into *database*.

    Replicates the per-applicant draw sequence of
    :func:`~repro.workloads.loans_gen.generate_loan_workload` under its
    default noise/guarantee probabilities — including the label-noise
    draw the facts don't depend on — so for a fixed ``(applicants,
    seed)`` the produced fact set is identical to the batch
    generator's, fact for fact (``pushdown_identity`` asserts this via
    fingerprints).  Unlike the batch generator it materialises nothing:
    facts flow straight into :meth:`SourceDatabase.add` one row at a
    time, which is what lets a disk backend ingest a beyond-RAM
    workload.
    """
    generator = SeededGenerator(seed)
    for index in range(applicants):
        applicant = f"APP{index:04d}"
        loan = f"LOAN{index:04d}"
        age = generator.uniform(20, 75)
        employment = generator.choice(EMPLOYMENTS, probabilities=(0.6, 0.25, 0.15))
        base_income = {
            "salaried": 45_000,
            "self-employed": 38_000,
            "unemployed": 12_000,
        }[employment]
        income = max(5_000.0, generator.normal(base_income, 15_000))
        amount = max(1_000.0, generator.normal(30_000, 25_000))
        purpose = generator.choice(PURPOSES, probabilities=(0.45, 0.35, 0.2))
        city = generator.choice(CITIES)

        database.add(
            "APPLICANT",
            applicant,
            banded(income, INCOME_BANDS),
            employment,
            banded(age, AGE_BANDS),
        )
        database.add("LOANAPP", loan, applicant, banded(amount, AMOUNT_BANDS), purpose)
        database.add("RESIDES", applicant, city)
        if generator.boolean(0.25):
            guarantor = f"APP{generator.integer(0, max(0, applicants - 1)):04d}"
            if guarantor != applicant:
                database.add("GUARANTEE", applicant, guarantor)
        generator.boolean(0.02)  # the generator's label-noise draw
    return database


def _make_service(
    database: SourceDatabase, spill: bool = False, radius: int = 0
) -> ExplanationService:
    specification = build_loan_specification()
    specification.engine.kernel.spill.enabled = spill
    system = OBDMSystem(specification, database, name="loan_out_of_core")
    return ExplanationService(system, radius=radius)


def run_out_of_core(
    base_applicants: int = 30,
    scale: int = 10,
    candidate_pool: int = 16,
    labeled_per_side: int = 8,
    seed: int = 7,
    radius: int = 0,
) -> ExperimentResult:
    """E16: backend/spill identity plus the scaled heap-peak comparison.

    Served at ``radius=0`` for the same reason as E14: it keeps each
    border an applicant's own fact neighbourhood, the regime indexed
    point lookups (and therefore out-of-core serving) are built for.
    """
    workload = build_loan_pool(
        base_applicants, candidate_pool, labeled_per_side, seed=seed
    )
    base, pool, labeling = workload.database, workload.pool, workload.labelings[0]

    result = ExperimentResult(
        "E16",
        "Out-of-core backends: SQL-pushdown SQLite vs the in-memory seed",
        notes=(
            f"loan domain, base |D|={len(base)} facts, scale x{scale}, "
            f"{len(pool)} candidates, radius={radius}"
        ),
    )

    # -- pushdown identity at base size ------------------------------------
    streamed = populate_loan_facts(
        SourceDatabase(build_loan_schema(), name="oc_streamed"), base_applicants, seed
    )
    stores = {
        "memory": base,
        "sqlite": base.with_backend("sqlite", name="oc_sqlite"),
        "sqlite_nopushdown": base.with_backend(
            SQLiteBackend(pushdown=False), name="oc_sqlite_nopush"
        ),
    }
    renders: Dict[str, str] = {}
    for mode, database in stores.items():
        service = _make_service(database, radius=radius)
        renders[mode] = service.explain(
            labeling, candidates=pool, top_k=None
        ).render(top_k=None)
    result.add_row(
        mode="pushdown_identity",
        applicants=base_applicants,
        facts=len(base),
        backends=len(stores),
        identical_rankings=len(set(renders.values())) == 1,
        identical_fingerprints=len(
            {database.fingerprint() for database in stores.values()}
        )
        == 1,
        populate_parity=streamed.fingerprint() == base.fingerprint(),
    )

    # -- spill identity at base size ---------------------------------------
    spill_renders = []
    for spill in (False, True):
        service = _make_service(
            base.copy(name=f"oc_spill_{int(spill)}"), spill=spill, radius=radius
        )
        spill_renders.append(
            service.explain(labeling, candidates=pool, top_k=None).render(top_k=None)
        )
    result.add_row(
        mode="spill_identity",
        applicants=base_applicants,
        facts=len(base),
        identical_rankings=spill_renders[0] == spill_renders[1],
        matches_memory_backend=spill_renders[0] == renders["memory"],
    )

    # -- scaled heap-peak comparison ---------------------------------------
    scaled_applicants = base_applicants * scale

    def serve_scaled(backend) -> Tuple[int, str, int]:
        # tracemalloc tracks Python-heap allocations only — exactly the
        # memory the out-of-core refactor moves off the heap — and is
        # deterministic where RSS sampling is scheduler noise.
        gc.collect()
        tracemalloc.start()
        database = populate_loan_facts(
            SourceDatabase(build_loan_schema(), name="oc_scaled", backend=backend),
            scaled_applicants,
            seed,
        )
        service = _make_service(database, radius=radius)
        render = service.explain(labeling, candidates=pool, top_k=None).render(
            top_k=None
        )
        facts = len(database)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return facts, render, peak

    # The sqlite phase runs first so neither phase measures the other's
    # leftovers; each phase gc.collect()s and restarts tracemalloc.
    scaled_facts, sqlite_render, sqlite_peak = serve_scaled("sqlite")
    _memory_facts, memory_render, memory_peak = serve_scaled(None)
    result.add_row(
        mode="sqlite_vs_memory",
        applicants=scaled_applicants,
        scale=scale,
        base_facts=len(base),
        scaled_facts=scaled_facts,
        memory_peak_bytes=memory_peak,
        sqlite_peak_bytes=sqlite_peak,
        peak_ratio=round(sqlite_peak / memory_peak, 3) if memory_peak else None,
        identical_rankings=sqlite_render == memory_render,
    )
    return result
