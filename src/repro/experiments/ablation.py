"""Experiment E8: criteria-weight ablations.

Example 3.8 shows that the best-describing query changes with the
weights of the scoring expression: with equal weights q3 wins, while
tripling the weight of δ1 makes q1 win.  This experiment generalises
that observation:

* **E8a** — the university example swept over a grid of (α, β, γ)
  weights, reporting the winning query in each cell (items (1) and (2)
  of Example 3.8 are two of the cells);
* **E8b** — the bias-audit ablation on the synthetic recidivism domain:
  the same classifier pipeline is run with and without injected group
  bias, and the experiment reports whether the best-describing query
  mentions the sensitive role ``belongsToGroup``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.candidates import CandidateConfig
from ..core.explainer import OntologyExplainer
from ..core.scoring import example_3_8_expression
from ..ml import DecisionTreeClassifier
from ..obdm.system import OBDMSystem
from ..ontologies.compas import build_compas_specification
from ..ontologies.university import (
    build_university_labeling,
    build_university_system,
    example_queries,
)
from ..workloads.compas_gen import CompasWorkloadConfig, generate_compas_workload
from .tables import ExperimentResult

DEFAULT_WEIGHT_GRID: Tuple[Tuple[float, float, float], ...] = (
    (1, 1, 1),
    (3, 1, 1),
    (1, 3, 1),
    (1, 1, 3),
    (5, 1, 1),
    (1, 5, 1),
)


def run_weight_ablation(
    weight_grid: Sequence[Tuple[float, float, float]] = DEFAULT_WEIGHT_GRID,
    radius: int = 1,
) -> ExperimentResult:
    """E8a: winner among q1/q2/q3 for each (α, β, γ) weighting."""
    system = build_university_system()
    labeling = build_university_labeling()
    explainer = OntologyExplainer(system)
    queries = example_queries()
    result = ExperimentResult(
        "E8a",
        "Criteria-weight ablation on Example 3.6: which query wins",
        notes="paper: (1,1,1) -> q3 and (3,1,1) -> q1 (items (1) and (2) of Example 3.8)",
    )
    for alpha, beta, gamma in weight_grid:
        expression = example_3_8_expression(alpha, beta, gamma)
        scored = {
            name: explainer.score(query, labeling, radius, expression=expression)
            for name, query in queries.items()
        }
        winner = max(sorted(scored), key=lambda name: scored[name].score)
        row: Dict[str, object] = {
            "alpha": alpha,
            "beta": beta,
            "gamma": gamma,
            "winner": winner,
        }
        for name in sorted(queries):
            row[f"z_{name}"] = round(scored[name].score, 3)
        result.rows.append(row)
    return result


def run_bias_ablation(
    persons: int = 40,
    seed: int = 11,
    bias_levels: Sequence[float] = (0.0, 1.0),
    max_atoms: int = 2,
    max_candidates: int = 250,
) -> ExperimentResult:
    """E8b: does the best explanation surface the sensitive attribute?"""
    specification_builder = build_compas_specification
    result = ExperimentResult(
        "E8b",
        "Bias audit on the synthetic recidivism domain",
        notes="'mentions_group' = the best-describing query uses belongsToGroup or a "
        "group constant; expected False without injected bias, True with it",
    )
    for bias in bias_levels:
        workload = generate_compas_workload(
            CompasWorkloadConfig(persons=persons, seed=seed, bias_strength=bias)
        )
        dataset = workload.dataset
        classifier = DecisionTreeClassifier(max_depth=4).fit(dataset.X, dataset.y)
        labeling = dataset.predicted_labeling(classifier, name=f"compas_bias_{bias}")
        system = OBDMSystem(specification_builder(), workload.database, name=f"compas_{bias}")
        explainer = OntologyExplainer(system)
        report = explainer.explain(
            labeling,
            radius=1,
            expression=example_3_8_expression(2.0, 2.0, 1.0),
            candidate_config=CandidateConfig(max_atoms=max_atoms, max_candidates=max_candidates),
            top_k=3,
        )
        best = report.best
        mentions_group = False
        if best is not None:
            query_text = str(best.query)
            mentions_group = "belongsToGroup" in query_text
        result.add_row(
            bias_strength=bias,
            classifier_accuracy=round(classifier.score(dataset.X, dataset.y), 3),
            positives=len(labeling.positives),
            negatives=len(labeling.negatives),
            best_query=str(best.query) if best is not None else "",
            z_score=round(best.score, 3) if best is not None else None,
            mentions_group=mentions_group,
        )
    return result
