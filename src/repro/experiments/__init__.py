"""Experiment harness reproducing every numeric artifact of the paper (E1-E9)."""

from .ablation import run_bias_ablation, run_weight_ablation
from .certain_answers_exp import run_certain_answers
from .database_drift_exp import run_database_drift
from .fidelity import run_fidelity
from .harness import EXPERIMENTS, render_all, run_all
from .paper_examples import (
    PAPER_EXAMPLE_3_3_LAYERS,
    PAPER_EXAMPLE_3_6_MATCHES,
    PAPER_EXAMPLE_3_8_SCORES,
    run_example_3_3,
    run_example_3_6,
    run_example_3_8,
    run_proposition_3_5,
)
from .scalability import run_batch_scoring, run_border_scalability, run_search_scalability
from .tables import ExperimentResult

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "PAPER_EXAMPLE_3_3_LAYERS",
    "PAPER_EXAMPLE_3_6_MATCHES",
    "PAPER_EXAMPLE_3_8_SCORES",
    "render_all",
    "run_all",
    "run_batch_scoring",
    "run_bias_ablation",
    "run_border_scalability",
    "run_certain_answers",
    "run_database_drift",
    "run_example_3_3",
    "run_example_3_6",
    "run_example_3_8",
    "run_fidelity",
    "run_proposition_3_5",
    "run_search_scalability",
    "run_weight_ablation",
]
