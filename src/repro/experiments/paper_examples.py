"""Experiments E1–E4: the paper's worked examples and Proposition 3.5.

These are the only numeric artifacts the paper itself contains; each
function regenerates one of them and reports measured-vs-paper values.

* E1 — Example 3.3: the border of radius 2 of tuple ``<a>``;
* E2 — Example 3.6: which borders q1, q2, q3 match, and the
  non-existence of a perfectly separating CQ;
* E3 — Example 3.8: the Z-scores of q1, q2, q3 under the two weightings;
* E4 — Proposition 3.5: monotonicity of J-matching in the radius,
  verified empirically over the example queries and a scaled workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.border import BorderComputer
from ..core.labeling import Labeling
from ..core.matching import MatchEvaluator
from ..core.explainer import OntologyExplainer
from ..core.scoring import example_3_8_expression
from ..core.separability import SeparabilityChecker
from ..obdm.system import OBDMSystem
from ..ontologies.university import (
    build_example_3_3_database,
    build_university_labeling,
    build_university_system,
    example_queries,
)
from ..workloads.university_gen import UniversityWorkloadConfig, generate_university_workload
from .tables import ExperimentResult

# Values reported in the paper (for side-by-side comparison).
PAPER_EXAMPLE_3_3_LAYERS = {
    0: {"R(a, b)", "S(a, c)"},
    1: {"Z(c, d)"},
    2: {"W(d, e)"},
}
PAPER_EXAMPLE_3_6_MATCHES = {
    "q1": ({"A10", "B80", "D50"}, set()),
    "q2": ({"A10", "B80"}, {"E25"}),
    "q3": ({"C12", "D50"}, set()),
}
PAPER_EXAMPLE_3_8_SCORES = {
    # (alpha, beta, gamma) -> {query: paper value}
    (1, 1, 1): {"q1": 0.693, "q2": 0.333, "q3": 0.833},
    (3, 1, 1): {"q1": 0.716, "q2": 0.5, "q3": 0.7},
}


def run_example_3_3(max_radius: int = 2) -> ExperimentResult:
    """E1: reproduce the border layers of Example 3.3."""
    database = build_example_3_3_database()
    computer = BorderComputer(database)
    layers = computer.layers("a", max_radius)
    result = ExperimentResult(
        "E1",
        "Example 3.3 — border of radius r of tuple <a>",
        notes="paper layers: W0={R(a,b),S(a,c)}, W1={Z(c,d)}, W2={W(d,e)}; border size 4",
    )
    for radius, layer in enumerate(layers):
        measured = {str(atom) for atom in layer}
        expected = PAPER_EXAMPLE_3_3_LAYERS.get(radius, set())
        result.add_row(
            radius=radius,
            layer_atoms=", ".join(sorted(measured)),
            layer_size=len(measured),
            matches_paper=measured == expected,
            border_size=len(computer.border("a", radius)),
        )
    return result


def run_example_3_6(radius: int = 1) -> ExperimentResult:
    """E2: reproduce the match sets of q1, q2, q3 and the separability claim."""
    system = build_university_system()
    labeling = build_university_labeling()
    evaluator = MatchEvaluator(system, radius)
    queries = example_queries()
    result = ExperimentResult(
        "E2",
        "Example 3.6 — borders matched by q1, q2, q3 (radius 1)",
        notes="paper: q1 matches 3/4 positives and no negative; q2 matches 2/4 and E25; "
        "q3 matches 2/4 and no negative; no CQ perfectly separates λ+ from λ-",
    )
    for name, query in queries.items():
        positives = evaluator.match_set(query, labeling.positives)
        negatives = evaluator.match_set(query, labeling.negatives)
        measured_pos = {str(t[0].value) for t in positives}
        measured_neg = {str(t[0].value) for t in negatives}
        expected_pos, expected_neg = PAPER_EXAMPLE_3_6_MATCHES[name]
        result.add_row(
            query=name,
            positives_matched=len(measured_pos),
            positive_total=len(labeling.positives),
            negatives_matched=len(measured_neg),
            negative_total=len(labeling.negatives),
            matched_positive_set=", ".join(sorted(measured_pos)),
            matched_negative_set=", ".join(sorted(measured_neg)),
            matches_paper=(measured_pos == expected_pos and measured_neg == expected_neg),
        )
    separability = SeparabilityChecker(system, labeling, radius).decide_cq_separability()
    result.add_row(
        query="(perfect CQ separator)",
        positives_matched=None,
        positive_total=None,
        negatives_matched=None,
        negative_total=None,
        matched_positive_set=f"separable={separability.separable}",
        matched_negative_set=separability.method,
        matches_paper=separability.separable is False,
    )
    return result


def run_example_3_8(radius: int = 1) -> ExperimentResult:
    """E3: reproduce the Z-scores of Example 3.8."""
    system = build_university_system()
    labeling = build_university_labeling()
    explainer = OntologyExplainer(system)
    queries = example_queries()
    result = ExperimentResult(
        "E3",
        "Example 3.8 — Z-scores of q1, q2, q3 under Δ = {δ1, δ4, δ5}",
        notes="paper reports Z1(q2)=0.333; recomputation from the paper's own f_δ values "
        "(f_δ1=0.5, f_δ4=0, f_δ5=1) gives 0.5 — all other five values match",
    )
    for weights, paper_values in PAPER_EXAMPLE_3_8_SCORES.items():
        alpha, beta, gamma = weights
        expression = example_3_8_expression(alpha, beta, gamma)
        for name, query in queries.items():
            scored = explainer.score(query, labeling, radius, expression=expression)
            paper_value = paper_values[name]
            result.add_row(
                weights=f"alpha={alpha}, beta={beta}, gamma={gamma}",
                query=name,
                measured_z=round(scored.score, 3),
                paper_z=paper_value,
                delta=round(scored.score - paper_value, 3),
                agrees=abs(scored.score - paper_value) < 0.005,
            )
    return result


def run_proposition_3_5(
    max_radius: int = 3, students: int = 30, seed: int = 13
) -> ExperimentResult:
    """E4: empirical check of Proposition 3.5 (monotonicity in the radius)."""
    result = ExperimentResult(
        "E4",
        "Proposition 3.5 — J-matching is monotone in the border radius",
        notes="every (query, tuple) pair must keep matching once it matches at some radius",
    )
    # The paper's example system with its three queries.
    system = build_university_system()
    labeling = build_university_labeling()
    evaluator = MatchEvaluator(system, radius=0)
    queries = example_queries()
    for name, query in queries.items():
        checked = 0
        monotone = 0
        for raw, _label in labeling:
            checked += 1
            if evaluator.is_monotone_in_radius(query, raw, max_radius):
                monotone += 1
        result.add_row(
            system="university (Example 3.6)",
            query=name,
            tuples_checked=checked,
            monotone=monotone,
            violations=checked - monotone,
        )
    # A larger generated workload with the q1-style query.
    workload = generate_university_workload(
        UniversityWorkloadConfig(students=students, enrolments_per_student=2, seed=seed)
    )
    scaled_system = OBDMSystem(system.specification, workload.database, name="university_scaled")
    scaled_evaluator = MatchEvaluator(scaled_system, radius=0)
    query = example_queries()["q1"]
    tuples = workload.parameters["positives"] + workload.parameters["negatives"]
    monotone = sum(
        1 for student in tuples if scaled_evaluator.is_monotone_in_radius(query, student, max_radius)
    )
    result.add_row(
        system=f"university_gen({students})",
        query="q1",
        tuples_checked=len(tuples),
        monotone=monotone,
        violations=len(tuples) - monotone,
    )
    return result
