"""Result tables for the experiment harness.

Every experiment returns an :class:`ExperimentResult`: an identifier, a
title, a list of rows (dictionaries) and free-form notes.  The result
renders itself as an aligned text table, which is what the benchmark
harness prints so that the regenerated numbers can be compared with the
paper's (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


@dataclass
class ExperimentResult:
    """The outcome of one experiment (one table or figure of the paper)."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values) -> None:
        self.rows.append(dict(values))

    def columns(self) -> List[str]:
        ordered: List[str] = []
        for row in self.rows:
            for column in row:
                if column not in ordered:
                    ordered.append(column)
        return ordered

    def column(self, name: str) -> List[object]:
        """All values of one column (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        """Aligned text table with the experiment id and title on top."""
        lines = [f"[{self.experiment_id}] {self.title}"]
        if not self.rows:
            lines.append("  (no rows)")
            return "\n".join(lines)
        columns = self.columns()
        rendered_rows = [
            {column: _format_cell(row.get(column)) for column in columns} for row in self.rows
        ]
        widths = {
            column: max(len(column), *(len(row[column]) for row in rendered_rows))
            for column in columns
        }
        header = "  " + " | ".join(column.ljust(widths[column]) for column in columns)
        separator = "  " + "-+-".join("-" * widths[column] for column in columns)
        lines.append(header)
        lines.append(separator)
        for row in rendered_rows:
            lines.append("  " + " | ".join(row[column].ljust(widths[column]) for column in columns))
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)

    def __str__(self):
        return self.render()


def _format_cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
