"""Experiment E11: long-lived explanation serving vs per-request rebuilds.

A production explanation service answers a *stream* of requests whose
labelings drift over time (the classifier is retrained, users are added
and removed, predictions flip).  The one-shot path pays the full
certain-answer + verdict cost on every request; the
:class:`~repro.service.ExplanationService` pays it once and then serves
from the warm substrate, absorbing drift incrementally
(:meth:`~repro.engine.verdicts.VerdictMatrix.apply_drift`).

Three rows:

* ``warm_vs_cold`` — the same drift workload served by (a) a brand-new
  service per request (cold: fresh specification, empty cache — what a
  stateless deployment would do) and (b) one resident service with
  bounded caches (eviction enabled).  Reports are checked identical
  request-for-request; the benchmark
  ``benchmarks/bench_service_warm.py`` gates the speedup at ≥3×.
* ``persistence`` — the resident service snapshots its cache, a fresh
  service loads the snapshot and replays the stream; rankings must be
  identical and the replay should hit the persisted verdict rows.
* ``tight_eviction`` — the same stream through a service whose caches
  are small enough to thrash: evictions must actually happen and the
  rankings must *still* be identical (eviction costs recomputation,
  never correctness).
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import List, Optional

from ..core.labeling import Labeling
from ..engine.cache import CacheLimits
from ..obdm.system import OBDMSystem
from ..ontologies.loans import build_loan_specification
from ..service import ExplanationService
from .scalability import build_loan_pool
from .tables import ExperimentResult


def _drift_stream(
    labeled_per_side: int, steps: int, drift_per_step: int
) -> List[Labeling]:
    """A deterministic stream of labelings under one drifting name.

    Each step flips ``drift_per_step`` tuples per side (the front of one
    side moves to the back of the other), promotes one spare applicant
    into the labeling and retires the oldest negative — the adds /
    removes / flips mix :meth:`Labeling.diff` classifies.
    """
    total = 2 * labeled_per_side
    names = [f"APP{i:04d}" for i in range(total + steps)]
    positives = names[:labeled_per_side]
    negatives = names[labeled_per_side:total]
    spares = names[total:]
    stream = [Labeling(list(positives), list(negatives), name="lambda_drift")]
    for _ in range(1, steps):
        for _ in range(drift_per_step):
            positives.append(negatives.pop(0))
            negatives.append(positives.pop(0))
        if spares:
            retired = negatives.pop(0)
            positives.append(spares.pop(0))
            spares.append(retired)
        stream.append(Labeling(list(positives), list(negatives), name="lambda_drift"))
    return stream


def run_service_warm(
    applicants: int = 30,
    candidate_pool: int = 16,
    labeled_per_side: int = 8,
    steps: int = 4,
    drift_per_step: int = 1,
    seed: int = 7,
) -> ExperimentResult:
    """E11: resident warm service vs per-request cold rebuilds."""
    # The shared loan workload helper builds the database and the pool
    # (its first labeling covers the same name window as the drift
    # stream's first step, so the generated pool is identical).
    workload = build_loan_pool(applicants, candidate_pool, labeled_per_side, seed=seed)
    database, pool = workload.database, workload.pool

    def make_service(limits: Optional[CacheLimits] = None) -> ExplanationService:
        specification = build_loan_specification()
        system = OBDMSystem(specification, database, name="loan_service_e11")
        return ExplanationService(system, radius=1, cache_limits=limits)

    stream = _drift_stream(labeled_per_side, steps, drift_per_step)

    # -- cold: a stateless deployment rebuilds everything per request ------
    start = time.perf_counter()
    cold_reports = [
        make_service().explain(labeling, candidates=pool, top_k=None)
        for labeling in stream
    ]
    cold_seconds = time.perf_counter() - start

    # -- warm: one resident service, bounded caches (eviction enabled) ----
    warm_limits = CacheLimits(
        saturations=1024,
        border_aboxes=1024,
        verdict_layouts=16,
        matches=100_000,
        subqueries=16,
    )
    warm_service = make_service(warm_limits)
    start = time.perf_counter()
    warm_reports = [
        warm_service.explain(labeling, candidates=pool, top_k=None)
        for labeling in stream
    ]
    warm_seconds = time.perf_counter() - start
    identical = all(
        cold.render(top_k=None) == warm.render(top_k=None)
        for cold, warm in zip(cold_reports, warm_reports)
    )

    result = ExperimentResult(
        "E11",
        "Explanation service: warm drift serving vs per-request rebuilds",
        notes=(
            f"loan domain, |D|={len(database)} facts, {steps} requests under "
            f"one drifting labeling name, {drift_per_step} flips/side/step"
        ),
    )
    result.add_row(
        mode="warm_vs_cold",
        candidates=len(pool),
        requests=len(stream),
        cold_seconds=round(cold_seconds, 3),
        warm_seconds=round(warm_seconds, 3),
        speedup=round(cold_seconds / warm_seconds, 1) if warm_seconds > 0 else None,
        identical_rankings=identical,
        drift_updates=warm_service.stats.drift_updates,
        cold_builds=warm_service.stats.cold_builds,
        evictions=warm_service.cache_stats.evictions,
    )

    # -- persistence: restart from a snapshot ------------------------------
    handle, snapshot_path = tempfile.mkstemp(suffix=".cache", prefix="repro_e11_")
    os.close(handle)
    try:
        warm_service.save(snapshot_path)
        restarted = make_service(warm_limits)
        start = time.perf_counter()
        restarted.load(snapshot_path)
        restarted_reports = [
            restarted.explain(labeling, candidates=pool, top_k=None)
            for labeling in stream
        ]
        restarted_seconds = time.perf_counter() - start
    finally:
        os.unlink(snapshot_path)
    result.add_row(
        mode="persistence",
        candidates=len(pool),
        requests=len(stream),
        cold_seconds=round(cold_seconds, 3),
        warm_seconds=round(restarted_seconds, 3),
        speedup=round(cold_seconds / restarted_seconds, 1) if restarted_seconds > 0 else None,
        identical_rankings=all(
            cold.render(top_k=None) == warm.render(top_k=None)
            for cold, warm in zip(cold_reports, restarted_reports)
        ),
        drift_updates=restarted.stats.drift_updates,
        cold_builds=restarted.stats.cold_builds,
        evictions=restarted.cache_stats.evictions,
    )

    # -- tight limits: eviction must thrash, results must not change -------
    tight_service = make_service(
        CacheLimits(
            saturations=4, border_aboxes=4, verdict_layouts=1, matches=64, subqueries=1
        )
    )
    tight_reports = [
        tight_service.explain(labeling, candidates=pool, top_k=None)
        for labeling in stream
    ]
    result.add_row(
        mode="tight_eviction",
        candidates=len(pool),
        requests=len(stream),
        cold_seconds=None,
        warm_seconds=None,
        speedup=None,
        identical_rankings=all(
            cold.render(top_k=None) == tight.render(top_k=None)
            for cold, tight in zip(cold_reports, tight_reports)
        ),
        drift_updates=tight_service.stats.drift_updates,
        cold_builds=tight_service.stats.cold_builds,
        evictions=tight_service.cache_stats.evictions,
    )
    return result
