"""Experiment E12: pool-level match kernel vs per-pair row construction.

Verdict-row *construction* is the dominant cost left after PRs 2–4: the
per-pair path answers one certain-answer question per (candidate,
border) cell, O(|pool| × |borders|) independent rewriting and
homomorphism searches.  The pool-level match kernel
(:mod:`repro.engine.kernel`) merges every border ABox into one
provenance-indexed fact store and emits a candidate's whole row from a
single set-at-a-time pass, tabling shared subquery prefixes across the
candidate lattice.

Three rows:

* ``matrix_build`` — cold :meth:`VerdictMatrix.build` over a loan-domain
  pool, kernel vs per-pair, with the border-ABox retrieval layer warmed
  on both sides so the measured phase is row construction itself
  (retrieval is identical, shared work).  The benchmark
  ``benchmarks/bench_match_kernel.py`` gates the speedup at ≥3×.
* ``identity`` — rankings of a CQ + UCQ pool across **all four domain
  ontologies**, kernel path vs the per-pair path, under both the thread
  and the process executor: every cell must be byte-identical.
* ``top_k_pruning`` — :meth:`BestDescriptionSearch.top_k` with the
  optimistic-bound pruning must return exactly the exhaustive ranking's
  prefix while skipping exact evaluation for part of the pool.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from ..core.best_describe import BestDescriptionSearch
from ..core.explainer import OntologyExplainer
from ..core.labeling import Labeling
from ..core.matching import MatchEvaluator
from ..obdm.system import OBDMSystem
from ..ontologies.compas import build_compas_specification
from ..ontologies.loans import build_loan_specification
from ..ontologies.movies import build_movie_specification
from ..ontologies.university import (
    build_university_database,
    build_university_specification,
)
from ..queries.atoms import Atom
from ..queries.cq import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries
from ..workloads.compas_gen import CompasWorkloadConfig, generate_compas_workload
from ..workloads.loans_gen import LoanWorkloadConfig, generate_loan_workload
from ..workloads.movies_gen import MovieWorkloadConfig, generate_movie_workload
from .scalability import build_loan_pool
from .tables import ExperimentResult


def _probe_database(domain: str):
    if domain == "university":
        return build_university_database()
    if domain == "compas":
        return generate_compas_workload(CompasWorkloadConfig(persons=12, seed=11)).database
    if domain == "loans":
        return generate_loan_workload(LoanWorkloadConfig(applicants=12, seed=7)).database
    if domain == "movies":
        return generate_movie_workload(
            MovieWorkloadConfig(movies=8, directors=3, viewers=5, critics=2, seed=3)
        ).database
    raise KeyError(f"unknown probe domain {domain!r}; available: {PROBE_DOMAINS}")


PROBE_SPECIFICATIONS = {
    "university": build_university_specification,
    "compas": build_compas_specification,
    "loans": build_loan_specification,
    "movies": build_movie_specification,
}

PROBE_DOMAINS = tuple(sorted(PROBE_SPECIFICATIONS))


def build_probe_system(
    domain: str, kernel: bool = True, cache: bool = True, strategy=None
) -> OBDMSystem:
    """A small deterministic system for one domain, with engine toggles.

    The single definition of the per-domain probe workloads behind both
    the E12 identity sweep and the kernel differential suite
    (``tests/engine/test_match_kernel.py``) — the two must validate the
    *same* systems and pools, never drifting copies.
    """
    specification = PROBE_SPECIFICATIONS[domain]()
    if strategy is not None:
        specification = specification.with_strategy(strategy)
    specification.engine.kernel.enabled = kernel
    specification.engine.cache.enabled = cache
    return OBDMSystem(specification, _probe_database(domain), name=f"{domain}_probe")


def probe_labeling(system: OBDMSystem) -> Labeling:
    constants = sorted(system.domain(), key=repr)[:6]
    return Labeling(positives=constants[:3], negatives=constants[3:6], name="probe")


def probe_labelings(system: OBDMSystem, count: int = 2) -> List[Labeling]:
    """*count* overlapping labelings (shifted six-constant windows).

    Window ``i`` starts at constant ``i``, so consecutive labelings
    share five of their six tuples — the shape that makes the
    multi-labeling batch kernel's shared-border merging observable
    (E13 and the batch differential suite both probe with these).
    """
    constants = sorted(system.domain(), key=repr)
    labelings = []
    for index in range(count):
        window = constants[index : index + 6]
        if len(window) < 6:
            break
        labelings.append(
            Labeling(positives=window[:3], negatives=window[3:6], name=f"probe{index}")
        )
    return labelings


def probe_pool(system: OBDMSystem) -> List:
    """Concept/role CQs, a two-atom join and a UCQ, per domain."""
    ontology = system.ontology
    concepts = sorted(ontology.concept_names)[:3]
    roles = sorted(ontology.role_names)[:2]
    pool: List = [
        ConjunctiveQuery.of(("?x",), (Atom.of(concept, "?x"),), name=f"q_{concept}")
        for concept in concepts
    ]
    pool.extend(
        ConjunctiveQuery.of(("?x",), (Atom.of(role, "?x", "?y"),), name=f"q_{role}")
        for role in roles
    )
    if len(concepts) >= 2 and roles:
        pool.append(
            ConjunctiveQuery.of(
                ("?x",),
                (Atom.of(concepts[0], "?x"), Atom.of(roles[0], "?x", "?y")),
                name="q_conj",
            )
        )
        pool.append(UnionOfConjunctiveQueries.of((pool[0], pool[1]), name="q_union"))
    return pool


def run_match_kernel(
    applicants: int = 48,
    candidate_pool: int = 36,
    labeled_per_side: int = 20,
    rounds: int = 3,
    top_k: int = 5,
    seed: int = 7,
    workload=None,
) -> ExperimentResult:
    """E12: one-pass kernel rows vs per-pair verdict-row construction.

    *workload* accepts a prebuilt
    :class:`~repro.experiments.scalability.LoanScoringPool` (the bench
    passes the ``bench_pool`` fixture's result) so callers that already
    built the workload do not pay database + pool construction twice.
    Reported sizes are always derived from the actual workload, never
    from the size arguments, so a mismatched *workload* cannot make the
    table (or the bench gates reading it) overstate the coverage.
    """
    if workload is None:
        workload = build_loan_pool(applicants, candidate_pool, labeled_per_side, seed=seed)
    database, labeling, pool = workload.database, workload.labelings[0], workload.pool
    labeled_per_side = len(labeling.positives)

    # -- matrix build: kernel vs per-pair, warm retrieval on both sides ----
    def build_seconds(kernel_enabled: bool) -> Tuple[float, List[int]]:
        from ..engine.verdicts import BorderColumns, VerdictMatrix

        total = 0.0
        rows: List[int] = []
        for _ in range(rounds):
            specification = build_loan_specification()
            specification.engine.kernel.enabled = kernel_enabled
            system = OBDMSystem(specification, database, name="loan_kernel_e12")
            evaluator = MatchEvaluator(system, 1)
            columns = BorderColumns.from_labeling(evaluator, labeling)
            for border in columns.borders:
                evaluator._border_abox(border)  # warm the shared retrieval layer
            matrix = VerdictMatrix(evaluator, columns)
            start = time.perf_counter()
            matrix.build(pool)
            total += time.perf_counter() - start
            rows = [matrix.row(query) for query in pool]
        return total, rows

    kernel_seconds, kernel_rows = build_seconds(kernel_enabled=True)
    legacy_seconds, legacy_rows = build_seconds(kernel_enabled=False)
    identical_rows = kernel_rows == legacy_rows

    result = ExperimentResult(
        "E12",
        "Match kernel: one-pass verdict rows vs per-pair construction",
        notes=(
            f"loan domain, |D|={len(database)} facts, {len(pool)} candidates × "
            f"{2 * labeled_per_side} borders, retrieval warmed on both paths"
        ),
    )
    result.add_row(
        mode="matrix_build",
        candidates=len(pool),
        borders=2 * labeled_per_side,
        rounds=rounds,
        legacy_seconds=round(legacy_seconds, 3),
        kernel_seconds=round(kernel_seconds, 3),
        speedup=round(legacy_seconds / kernel_seconds, 1) if kernel_seconds > 0 else None,
        identical=identical_rows,
        cells=None,
    )

    # -- identity: 4 domains × {CQ, UCQ} × {thread, process} ---------------
    identical_cells = True
    cells = 0
    for domain in PROBE_DOMAINS:
        reference_system = build_probe_system(domain, kernel=False)
        domain_labeling = probe_labeling(reference_system)
        domain_pool = probe_pool(reference_system)
        reference = OntologyExplainer(reference_system).explain(
            domain_labeling, candidates=domain_pool, top_k=None
        )
        for executor in ("thread", "process"):
            kernel_system = build_probe_system(domain, kernel=True)
            reports = OntologyExplainer(kernel_system).explain_batch(
                [domain_labeling],
                candidates=domain_pool,
                executor=executor,
                max_workers=2,
                top_k=None,
            )
            cells += 1
            if reports[0].render(top_k=None) != reference.render(top_k=None):
                identical_cells = False
    result.add_row(
        mode="identity",
        candidates=None,
        borders=None,
        rounds=1,
        legacy_seconds=None,
        kernel_seconds=None,
        speedup=None,
        identical=identical_cells,
        cells=cells,
    )

    # -- top-k bound pruning: exact prefix, fewer exact evaluations --------
    # Separate specifications so the pruned run cannot see the exhaustive
    # run's shared verdict rows (rows_built then reports real skips).
    exhaustive_system = OBDMSystem(
        build_loan_specification(), database, name="loan_topk_e12"
    )
    exhaustive = BestDescriptionSearch(exhaustive_system, labeling).rank(pool)[:top_k]
    pruned_system = OBDMSystem(
        build_loan_specification(), database, name="loan_topk_e12"
    )
    pruned_search = BestDescriptionSearch(pruned_system, labeling)
    pruned = pruned_search.top_k(pool, top_k)
    evaluated = pruned_search.scorer.verdict_matrix().known_rows()
    result.add_row(
        mode="top_k_pruning",
        candidates=len(pool),
        borders=2 * labeled_per_side,
        rounds=1,
        legacy_seconds=None,
        kernel_seconds=None,
        speedup=None,
        identical=(
            [(str(entry.query), entry.score) for entry in pruned]
            == [(str(entry.query), entry.score) for entry in exhaustive]
        ),
        cells=None,
        k=top_k,
        rows_built=evaluated,
    )
    return result
