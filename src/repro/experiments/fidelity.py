"""Experiment E6: fidelity of explanations against trained classifiers.

The paper's framework explains a classifier through the query that best
describes its labelling; this experiment (the evaluation the paper
defers to future work) measures how faithful the best query actually is.
For each (domain, classifier) pair:

1. generate a synthetic workload (source database + numeric dataset);
2. train the classifier and read off its predicted labelling ``λ``;
3. run the explainer and take the best-describing query;
4. report the query's δ1 (coverage of ``λ+``), δ4 (exclusion of ``λ-``),
   precision/F1 against the classifier's predictions, and whether the
   discovered query mentions the vocabulary of the known ground-truth
   rule that generated the data.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.best_describe import ScoredQuery
from ..core.candidates import CandidateConfig
from ..core.explainer import OntologyExplainer
from ..core.scoring import example_3_8_expression
from ..ml import (
    DecisionTreeClassifier,
    GaussianNaiveBayes,
    KNearestNeighbors,
    LogisticRegression,
)
from ..obdm.system import OBDMSystem
from ..ontologies.compas import build_compas_specification
from ..ontologies.loans import build_loan_specification
from ..ontologies.movies import build_movie_specification
from ..workloads.compas_gen import CompasWorkloadConfig, generate_compas_workload
from ..workloads.generator import Workload
from ..workloads.loans_gen import LoanWorkloadConfig, generate_loan_workload
from ..workloads.movies_gen import MovieWorkloadConfig, generate_movie_workload
from .tables import ExperimentResult

CLASSIFIERS: Dict[str, Callable[[], object]] = {
    "decision_tree": lambda: DecisionTreeClassifier(max_depth=4),
    "logistic_regression": lambda: LogisticRegression(iterations=300),
    "naive_bayes": lambda: GaussianNaiveBayes(),
}

GROUND_TRUTH_VOCABULARY = {
    "loan": {"HighIncomeApplicant", "MediumIncomeApplicant", "LowIncomeApplicant",
             "LargeLoan", "UnemployedApplicant", "SalariedApplicant"},
    "compas": {"RepeatOffender", "FirstTimeOffender", "FelonyCharge", "MisdemeanorCharge",
               "YoungDefendant", "belongsToGroup"},
    "movies": {"DramaMovie", "likedBy", "Critic", "AwardedDirector", "directedBy"},
}


def _domains(size: int, seed: int) -> Dict[str, Tuple[Workload, OBDMSystem]]:
    """Build the three evaluation domains at the requested size."""
    loan_workload = generate_loan_workload(LoanWorkloadConfig(applicants=size, seed=seed))
    compas_workload = generate_compas_workload(
        CompasWorkloadConfig(persons=size, seed=seed, bias_strength=0.0)
    )
    movie_workload = generate_movie_workload(MovieWorkloadConfig(movies=size, seed=seed))
    return {
        "loan": (
            loan_workload,
            OBDMSystem(build_loan_specification(), loan_workload.database, name="loan"),
        ),
        "compas": (
            compas_workload,
            OBDMSystem(build_compas_specification(), compas_workload.database, name="compas"),
        ),
        "movies": (
            movie_workload,
            OBDMSystem(build_movie_specification(), movie_workload.database, name="movies"),
        ),
    }


def run_fidelity(
    size: int = 40,
    seed: int = 7,
    classifiers: Optional[Sequence[str]] = None,
    max_atoms: int = 2,
    max_candidates: int = 300,
) -> ExperimentResult:
    """E6: explanation fidelity per (domain, classifier)."""
    chosen = list(classifiers) if classifiers is not None else list(CLASSIFIERS)
    result = ExperimentResult(
        "E6",
        "Fidelity of the best-describing query w.r.t. trained classifiers",
        notes="delta1/delta4 are computed on the classifier's own predictions (λ); "
        "'mentions_truth' = the query uses vocabulary of the generating rule",
    )
    config = CandidateConfig(max_atoms=max_atoms, max_candidates=max_candidates)
    for domain, (workload, system) in _domains(size, seed).items():
        explainer = OntologyExplainer(system)
        for classifier_name in chosen:
            classifier = CLASSIFIERS[classifier_name]()
            dataset = workload.dataset
            classifier.fit(dataset.X, dataset.y)
            labeling = dataset.predicted_labeling(classifier, name=f"{domain}_{classifier_name}")
            report = explainer.explain(
                labeling,
                radius=1,
                expression=example_3_8_expression(2.0, 2.0, 1.0),
                candidate_config=config,
                top_k=1,
            )
            best = report.best
            if best is None:
                continue
            predicates = (
                best.query.predicates()
                if hasattr(best.query, "predicates")
                else set()
            )
            truth_vocabulary = GROUND_TRUTH_VOCABULARY.get(domain, set())
            result.add_row(
                domain=domain,
                classifier=classifier_name,
                classifier_accuracy=round(classifier.score(dataset.X, dataset.y), 3),
                best_query=str(best.query),
                z_score=round(best.score, 3),
                delta1_coverage=round(best.profile.positive_coverage(), 3),
                delta4_exclusion=round(best.profile.negative_exclusion(), 3),
                query_precision=round(best.profile.precision(), 3),
                query_f1=round(best.profile.f1(), 3),
                mentions_truth=bool(predicates & truth_vocabulary),
            )
    return result
