"""Experiment E15: async gateway serving vs naive-serialized deployments.

The "millions of users" question: what does the *serving architecture*
buy, holding the evaluation engine fixed?  The naive deployment
answers each request serially with a stateless worker (fresh
specification, empty cache — one full evaluation per request); the
gateway answers the same request stream concurrently over one warm
:class:`~repro.service.ExplanationService`, coalescing identical
in-flight requests so duplicate traffic costs one evaluation, and
serving repeats from the warm session ring.

Three rows:

* ``warm_coalesced_vs_naive`` — the same request stream (``labelings``
  distinct sessions × ``duplicates`` concurrent clients × ``rounds``
  bursts) served both ways; reports must be identical
  request-for-request, and ``benchmarks/bench_gateway.py`` gates the
  sustained-throughput ratio at ≥3×.  The row carries the gateway's
  client-visible latency percentiles (p50/p99) and its coalescing /
  shedding counters.
* ``overload_shed`` — a deliberately saturated gateway
  (``max_pending=1``) must shed a second distinct request
  deterministically with the 503-style
  :class:`~repro.errors.GatewayOverloaded` *while the first completes
  normally* — backpressure never corrupts admitted work.
* ``snapshot_shipping`` — a fresh replica boots warm from the serving
  replica's snapshot over an asyncio stream
  (:class:`~repro.gateway.shipping.SnapshotDonor`) and must rank the
  stream's first request identically to its donor, with the donor's
  verdict rows surviving the trip.
"""

from __future__ import annotations

import asyncio
import time
from typing import List, Optional

from ..engine.cache import CacheLimits
from ..errors import GatewayOverloaded
from ..gateway import ExplanationGateway, ServiceRegistry, SnapshotDonor, boot_from_donor
from ..obdm.system import OBDMSystem
from ..ontologies.loans import build_loan_specification
from ..service import ExplanationService
from .scalability import build_loan_pool
from .tables import ExperimentResult


def _build_system(database) -> OBDMSystem:
    return OBDMSystem(build_loan_specification(), database, name="loan_gateway_e15")


def run_gateway_serving(
    applicants: int = 30,
    candidate_pool: int = 16,
    labeled_per_side: int = 8,
    labelings: int = 3,
    duplicates: int = 6,
    rounds: int = 2,
    max_concurrency: int = 4,
    seed: int = 7,
) -> ExperimentResult:
    """E15: warm-coalesced gateway serving vs naive-serialized workers."""
    workload = build_loan_pool(
        applicants, candidate_pool, labeled_per_side, labelings=labelings, seed=seed
    )
    database, pool = workload.database, list(workload.pool)
    stream = list(workload.labelings)
    total_requests = len(stream) * duplicates * rounds

    # -- naive-serialized: a stateless worker per request ------------------
    start = time.perf_counter()
    naive_reports = {}
    for _ in range(rounds):
        for labeling in stream:
            for _ in range(duplicates):
                report = ExplanationService(_build_system(database), radius=1).explain(
                    labeling, candidates=pool, top_k=None
                )
                naive_reports[labeling.name] = report
    naive_seconds = time.perf_counter() - start

    # -- gateway: one warm replica, concurrent coalesced clients ----------
    registry = ServiceRegistry(capacity=4)
    registry.register(
        "loans",
        lambda: _build_system(database),
        radius=1,
        cache_limits=CacheLimits(
            saturations=1024, border_aboxes=1024, verdict_layouts=16, matches=100_000
        ),
    )
    gateway = ExplanationGateway(
        registry=registry, max_concurrency=max_concurrency, max_pending=total_requests
    )

    async def serve_stream() -> List:
        reports = []
        for _ in range(rounds):
            burst = [
                gateway.explain("loans", labeling, candidates=pool, top_k=None)
                for labeling in stream
                for _ in range(duplicates)
            ]
            reports.extend(await asyncio.gather(*burst))
        return reports

    start = time.perf_counter()
    gateway_reports = asyncio.run(serve_stream())
    gateway_seconds = time.perf_counter() - start

    expected = [
        naive_reports[labeling.name]
        for _ in range(rounds)
        for labeling in stream
        for _ in range(duplicates)
    ]
    identical = all(
        gateway_report.render(top_k=None) == naive_report.render(top_k=None)
        for gateway_report, naive_report in zip(gateway_reports, expected)
    )
    percentiles = gateway.stats.latency_percentiles()
    service_stats = registry.service("loans").stats

    result = ExperimentResult(
        "E15",
        "Async gateway: warm-coalesced serving vs naive-serialized workers",
        notes=(
            f"loan domain, |D|={len(database)} facts, {len(stream)} distinct "
            f"sessions x {duplicates} concurrent duplicates x {rounds} rounds, "
            f"max_concurrency={max_concurrency}"
        ),
    )
    result.add_row(
        mode="warm_coalesced_vs_naive",
        requests=total_requests,
        candidates=len(pool),
        naive_seconds=round(naive_seconds, 3),
        gateway_seconds=round(gateway_seconds, 3),
        naive_rps=round(total_requests / naive_seconds, 1) if naive_seconds > 0 else None,
        gateway_rps=round(total_requests / gateway_seconds, 1) if gateway_seconds > 0 else None,
        speedup=round(naive_seconds / gateway_seconds, 1) if gateway_seconds > 0 else None,
        identical_rankings=identical,
        coalesced_hits=gateway.stats.coalesced_hits,
        shed_requests=gateway.stats.shed_requests,
        cold_builds=service_stats.cold_builds,
        warm_hits=service_stats.warm_hits,
        queue_depth_high_water=gateway.stats.queue_depth_high_water,
        p50_seconds=round(percentiles["p50"], 4) if percentiles["p50"] else None,
        p99_seconds=round(percentiles["p99"], 4) if percentiles["p99"] else None,
    )

    # -- overload: admission control sheds deterministically ---------------
    shed_row = asyncio.run(_overload_probe(registry, stream, pool))
    result.add_row(**shed_row)

    # -- shipping: a replica boots warm from the serving replica -----------
    ship_row = asyncio.run(
        _shipping_probe(registry, database, stream[0], pool, expected[0])
    )
    result.add_row(**ship_row)

    asyncio.run(gateway.aclose())
    return result


async def _overload_probe(registry: ServiceRegistry, stream, pool) -> dict:
    """One saturated gateway: leader admitted, second request shed."""
    gateway = ExplanationGateway(registry=registry, max_concurrency=1, max_pending=1)
    leader = asyncio.ensure_future(
        gateway.explain("loans", stream[0], candidates=pool, top_k=None)
    )
    await asyncio.sleep(0)  # let the leader occupy the pending slot
    shed = False
    try:
        # top_k=5 forces a distinct coalescing key even on a one-labeling
        # stream: a coalescable duplicate would attach instead of shedding.
        await gateway.explain("loans", stream[-1], candidates=pool, top_k=5)
    except GatewayOverloaded:
        shed = True
    leader_report = await leader
    await gateway.aclose()
    return {
        "mode": "overload_shed",
        "requests": 2,
        "max_pending": 1,
        "shed_requests": gateway.stats.shed_requests,
        "deterministic_shed": shed,
        "leader_completed": leader_report is not None,
    }


async def _shipping_probe(
    registry: ServiceRegistry, database, labeling, pool, donor_report
) -> dict:
    """Donor streams its snapshot; the replica must rank identically."""
    donor_service = registry.service("loans")
    donor = SnapshotDonor(donor_service)
    host, port = await donor.start()
    replica = ExplanationService(_build_system(database), radius=1)
    boot = await boot_from_donor(replica, host, port)
    await donor.close()
    loop = asyncio.get_running_loop()
    replica_report = await loop.run_in_executor(
        None, lambda: replica.explain(labeling, candidates=pool, top_k=None)
    )
    loaded = boot.get("loaded", {})
    return {
        "mode": "snapshot_shipping",
        "warm_boot": boot["warm"],
        "loaded_verdict_rows": loaded.get("verdict_rows", 0),
        "loaded_border_aboxes": loaded.get("border_aboxes", 0),
        "fingerprints_match": boot.get("donor", {}).get("fingerprint")
        == replica.content_fingerprint(),
        "identical_rankings": replica_report.render(top_k=None)
        == donor_report.render(top_k=None),
        "snapshots_shipped": donor.stats.snapshots_shipped,
    }
