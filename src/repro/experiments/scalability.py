"""Experiment E7: scalability of borders and of the best-query search.

Two sweeps over the scaled university workload:

* **border sweep** — wall-clock time and border sizes as the database
  grows and the radius increases (Definition 3.2 is the inner loop of
  everything else, so its scaling matters most);
* **search sweep** — end-to-end time of the explanation search as the
  number of labelled tuples grows, for a fixed candidate budget.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from ..core.border import BorderComputer
from ..core.candidates import CandidateConfig
from ..core.explainer import OntologyExplainer
from ..core.labeling import Labeling
from ..obdm.system import OBDMSystem
from ..ontologies.university import build_university_specification
from ..workloads.university_gen import UniversityWorkloadConfig, generate_university_workload
from .tables import ExperimentResult


def run_border_scalability(
    sizes: Sequence[int] = (50, 100, 200, 400),
    radii: Sequence[int] = (0, 1, 2),
    seed: int = 13,
) -> ExperimentResult:
    """E7a: border computation time/size vs database size and radius."""
    result = ExperimentResult(
        "E7a",
        "Border computation: time and size vs |D| and radius",
    )
    for size in sizes:
        workload = generate_university_workload(
            UniversityWorkloadConfig(students=size, enrolments_per_student=2, seed=seed)
        )
        students = [f"S{i:05d}" for i in range(size)]
        for radius in radii:
            computer = BorderComputer(workload.database)
            start = time.perf_counter()
            statistics = computer.statistics(students, radius)
            elapsed = time.perf_counter() - start
            result.add_row(
                students=size,
                facts=len(workload.database),
                radius=radius,
                mean_border_size=round(statistics["mean"], 2),
                max_border_size=int(statistics["max"]),
                seconds_total=round(elapsed, 4),
                seconds_per_tuple=round(elapsed / max(1, size), 6),
            )
    return result


def run_search_scalability(
    sizes: Sequence[int] = (20, 40, 80),
    seed: int = 13,
    max_atoms: int = 3,
    max_candidates: int = 600,
) -> ExperimentResult:
    """E7b: end-to-end explanation search time vs number of labelled tuples."""
    specification = build_university_specification()
    result = ExperimentResult(
        "E7b",
        "Best-description search: end-to-end time vs labelled tuples",
        notes=f"candidate budget: max_atoms={max_atoms}, max_candidates={max_candidates}",
    )
    for size in sizes:
        workload = generate_university_workload(
            UniversityWorkloadConfig(students=size, enrolments_per_student=2, seed=seed)
        )
        labeling = Labeling(
            workload.parameters["positives"],
            workload.parameters["negatives"],
            name=f"university_{size}",
        )
        system = OBDMSystem(specification, workload.database, name=f"university_{size}")
        explainer = OntologyExplainer(system)
        start = time.perf_counter()
        report = explainer.explain(
            labeling,
            radius=1,
            candidate_config=CandidateConfig(max_atoms=max_atoms, max_candidates=max_candidates),
            top_k=1,
        )
        elapsed = time.perf_counter() - start
        best = report.best
        result.add_row(
            students=size,
            positives=len(labeling.positives),
            negatives=len(labeling.negatives),
            candidates=report.candidate_count,
            seconds=round(elapsed, 3),
            best_query=str(best.query) if best is not None else "",
            best_coverage=round(best.profile.positive_coverage(), 3) if best else None,
            best_exclusion=round(best.profile.negative_exclusion(), 3) if best else None,
        )
    return result
