"""Experiments E7/E9/E10: scalability of borders, search and batch scoring.

Four sweeps:

* **border sweep** — wall-clock time and border sizes as the database
  grows and the radius increases (Definition 3.2 is the inner loop of
  everything else, so its scaling matters most);
* **search sweep** — end-to-end time of the explanation search as the
  number of labelled tuples grows, for a fixed candidate budget;
* **batch sweep (E9)** — chase-strategy batch scoring through the shared
  evaluation cache (:mod:`repro.engine`) against the per-call path, the
  workload ``benchmarks/bench_batch_explain.py`` gates;
* **criteria sweep (E10)** — the bitset verdict-matrix path
  (:mod:`repro.engine.verdicts`) against the legacy per-pair path on a
  criteria-phase workload (many (Δ, Z) configurations over one pool),
  plus a process-sharding identity check; gated by
  ``benchmarks/bench_bitset_criteria.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..core.border import BorderComputer
from ..core.candidates import CandidateConfig, CandidateGenerator
from ..core.explainer import OntologyExplainer
from ..core.labeling import Labeling
from ..core.scoring import (
    HarmonicMean,
    MinScore,
    WeightedAverage,
    balanced_expression,
    example_3_8_expression,
    fidelity_first_expression,
)
from ..obdm.system import OBDMSystem
from ..ontologies.loans import build_loan_specification
from ..ontologies.university import build_university_specification
from ..workloads.loans_gen import LoanWorkloadConfig, generate_loan_workload
from ..workloads.university_gen import UniversityWorkloadConfig, generate_university_workload
from .tables import ExperimentResult


@dataclass(frozen=True)
class LoanScoringPool:
    """One loan-domain scoring workload: database, labelings, candidate pool.

    The shared construction behind the engine benches/experiments (E9
    batch scoring, E10 bitset criteria, E11 service warmth, E12 match
    kernel) — one definition instead of four copies of the same
    workload-generation snippet.  Exposed to the benches through the
    ``bench_pool`` fixture in ``benchmarks/conftest.py``.
    """

    database: object
    labelings: Tuple[Labeling, ...]
    pool: Tuple[object, ...]


def build_loan_pool(
    applicants: int,
    candidate_pool: int,
    labeled_per_side: int,
    labelings: int = 1,
    seed: int = 7,
    specification=None,
    max_atoms: int = 2,
) -> LoanScoringPool:
    """Deterministic loan workload + labelings + bottom-up candidate pool.

    Labeling ``i`` covers the name window starting at offset ``i`` (the
    E9/E10 shape); the pool is generated from the first labeling.  Pass
    a *specification* to generate under a non-default configuration
    (e.g. the chase strategy); the pool itself depends only on the
    database and borders.
    """
    database = generate_loan_workload(
        LoanWorkloadConfig(applicants=applicants, seed=seed)
    ).database
    size = 2 * labeled_per_side
    names = [f"APP{i:04d}" for i in range(size + labelings - 1)]
    labeling_list = tuple(
        Labeling(
            positives=names[offset : offset + labeled_per_side],
            negatives=names[offset + labeled_per_side : offset + size],
            name=f"lambda_{offset}",
        )
        for offset in range(labelings)
    )
    specification = specification or build_loan_specification()
    pool_system = OBDMSystem(specification, database, name="loan_pool")
    pool = CandidateGenerator(
        pool_system, 1, CandidateConfig(max_atoms=max_atoms, max_candidates=candidate_pool)
    ).generate(labeling_list[0])
    return LoanScoringPool(database, labeling_list, tuple(pool))


def run_border_scalability(
    sizes: Sequence[int] = (50, 100, 200, 400),
    radii: Sequence[int] = (0, 1, 2),
    seed: int = 13,
) -> ExperimentResult:
    """E7a: border computation time/size vs database size and radius."""
    result = ExperimentResult(
        "E7a",
        "Border computation: time and size vs |D| and radius",
    )
    for size in sizes:
        workload = generate_university_workload(
            UniversityWorkloadConfig(students=size, enrolments_per_student=2, seed=seed)
        )
        students = [f"S{i:05d}" for i in range(size)]
        for radius in radii:
            computer = BorderComputer(workload.database)
            start = time.perf_counter()
            statistics = computer.statistics(students, radius)
            elapsed = time.perf_counter() - start
            result.add_row(
                students=size,
                facts=len(workload.database),
                radius=radius,
                mean_border_size=round(statistics["mean"], 2),
                max_border_size=int(statistics["max"]),
                seconds_total=round(elapsed, 4),
                seconds_per_tuple=round(elapsed / max(1, size), 6),
            )
    return result


def run_search_scalability(
    sizes: Sequence[int] = (20, 40, 80),
    seed: int = 13,
    max_atoms: int = 3,
    max_candidates: int = 600,
) -> ExperimentResult:
    """E7b: end-to-end explanation search time vs number of labelled tuples."""
    specification = build_university_specification()
    result = ExperimentResult(
        "E7b",
        "Best-description search: end-to-end time vs labelled tuples",
        notes=f"candidate budget: max_atoms={max_atoms}, max_candidates={max_candidates}",
    )
    for size in sizes:
        workload = generate_university_workload(
            UniversityWorkloadConfig(students=size, enrolments_per_student=2, seed=seed)
        )
        labeling = Labeling(
            workload.parameters["positives"],
            workload.parameters["negatives"],
            name=f"university_{size}",
        )
        system = OBDMSystem(specification, workload.database, name=f"university_{size}")
        explainer = OntologyExplainer(system)
        start = time.perf_counter()
        report = explainer.explain(
            labeling,
            radius=1,
            candidate_config=CandidateConfig(max_atoms=max_atoms, max_candidates=max_candidates),
            top_k=1,
        )
        elapsed = time.perf_counter() - start
        best = report.best
        result.add_row(
            students=size,
            positives=len(labeling.positives),
            negatives=len(labeling.negatives),
            candidates=report.candidate_count,
            seconds=round(elapsed, 3),
            best_query=str(best.query) if best is not None else "",
            best_coverage=round(best.profile.positive_coverage(), 3) if best else None,
            best_exclusion=round(best.profile.negative_exclusion(), 3) if best else None,
        )
    return result


def run_batch_scoring(
    applicants: int = 14,
    candidate_pool: int = 12,
    labeled_per_side: int = 3,
    labelings: int = 2,
    seed: int = 7,
) -> ExperimentResult:
    """E9: cached batch scoring vs the per-call path (chase strategy).

    Scores one candidate pool against several labelings over the loan
    domain, once with the shared evaluation cache disabled (the seed's
    per-call behaviour: the border ABox is re-chased on every
    ``is_certain_answer``) and once through ``explain_batch``.  The
    rankings are checked to be identical; the table reports both times
    and the speedup.
    """
    workload = build_loan_pool(
        applicants,
        candidate_pool,
        labeled_per_side,
        labelings,
        seed=seed,
        specification=build_loan_specification().with_strategy("chase"),
    )
    database, labeling_list, pool = workload.database, workload.labelings, workload.pool

    def make_system(cache_enabled: bool) -> OBDMSystem:
        specification = build_loan_specification().with_strategy("chase")
        specification.engine.cache.enabled = cache_enabled
        # E9 isolates the evaluation-*cache* speedup, so both sides run
        # per-pair row construction: the match kernel saturates each
        # border once per matrix even with the cache disabled, which
        # would erase the per-call chase behaviour this baseline models
        # (the kernel's own gate is E12 / bench_match_kernel).
        specification.engine.kernel.enabled = False
        return OBDMSystem(specification, database, name="loan_chase_e9")

    baseline_explainer = OntologyExplainer(make_system(cache_enabled=False))
    start = time.perf_counter()
    baseline = [
        baseline_explainer.explain(labeling, candidates=pool) for labeling in labeling_list
    ]
    per_call_seconds = time.perf_counter() - start

    batch_system = make_system(cache_enabled=True)
    start = time.perf_counter()
    batched = OntologyExplainer(batch_system).explain_batch(labeling_list, candidates=pool)
    batch_seconds = time.perf_counter() - start

    identical = all(
        left.render(top_k=None) == right.render(top_k=None)
        for left, right in zip(baseline, batched)
    )
    stats = batch_system.specification.engine.cache.stats
    result = ExperimentResult(
        "E9",
        "Batch scoring: shared evaluation cache vs per-call chase",
        notes=f"loan domain, |D|={len(database)} facts, strategy=chase",
    )
    result.add_row(
        candidates=len(pool),
        labelings=len(labeling_list),
        per_call_seconds=round(per_call_seconds, 3),
        batch_seconds=round(batch_seconds, 3),
        speedup=round(per_call_seconds / batch_seconds, 1) if batch_seconds > 0 else None,
        identical_rankings=identical,
        saturations_saved=stats.saturation_hits,
    )
    return result


def _criteria_phase_configs():
    """A spread of (Δ, Z) configurations over the paper's criteria.

    Scoring services re-rank the same pool under many such
    configurations (the weight-ablation experiment E8a is exactly this);
    the verdicts do not change between them, which is what the verdict
    matrix exploits.
    """
    return [
        ("example_3_8", ("delta1", "delta4", "delta5"), example_3_8_expression()),
        ("example_3_8_a3", ("delta1", "delta4", "delta5"), example_3_8_expression(alpha=3)),
        ("balanced", ("delta1", "delta4"), balanced_expression()),
        ("fidelity_first", ("delta1", "delta4", "delta5"), fidelity_first_expression()),
        (
            "all_deltas",
            ("delta1", "delta2", "delta3", "delta4", "delta5", "delta6"),
            WeightedAverage.of(
                {f"delta{i}": weight for i, weight in zip(range(1, 7), (3, 1, 1, 3, 1, 1))}
            ),
        ),
        ("worst_case", ("delta1", "delta4"), MinScore(("delta1", "delta4"))),
        ("harmonic", ("delta1", "delta3"), HarmonicMean(("delta1", "delta3"))),
    ]


def run_bitset_criteria(
    applicants: int = 40,
    candidate_pool: int = 36,
    labeled_per_side: int = 16,
    labelings: int = 2,
    rounds: int = 3,
    seed: int = 7,
) -> ExperimentResult:
    """E10: bitset verdict-matrix criteria phase vs the legacy per-pair path.

    Ranks one candidate pool against several labelings under several
    (Δ, Z) configurations over the loan domain, once with the verdict
    matrix disabled (the legacy path: one ``matches_border`` question
    and one frozenset profile per (candidate, border, configuration))
    and once with it enabled (one bitset row per candidate, criteria as
    popcounts).  Both paths run with a warm evaluation cache, so the
    measured difference is the criteria phase itself, not certain-answer
    computation.  A second row checks that process-sharded batch scoring
    stays sequential-identical.
    """
    workload = build_loan_pool(
        applicants, candidate_pool, labeled_per_side, labelings, seed=seed
    )
    database, labeling_list, pool = workload.database, workload.labelings, workload.pool
    size = 2 * labeled_per_side

    def make_system(bitset_enabled: bool) -> OBDMSystem:
        specification = build_loan_specification()
        specification.engine.verdicts.enabled = bitset_enabled
        return OBDMSystem(specification, database, name="loan_bitset_e10")

    bitset_system = make_system(bitset_enabled=True)
    configs = _criteria_phase_configs()

    legacy_explainer = OntologyExplainer(make_system(bitset_enabled=False))
    bitset_explainer = OntologyExplainer(bitset_system)

    def run_configs(explainer: OntologyExplainer, repeat: int):
        reports = []
        start = time.perf_counter()
        for _ in range(repeat):
            for _name, criteria, expression in configs:
                for labeling in labeling_list:
                    reports.append(
                        explainer.explain(
                            labeling,
                            criteria=criteria,
                            expression=expression,
                            candidates=pool,
                            top_k=None,
                        )
                    )
        return time.perf_counter() - start, reports

    # Warm both caches (border ABoxes + J-match memos / verdict rows), so
    # the timed passes compare criteria-phase work, not certain answers.
    run_configs(legacy_explainer, repeat=1)
    run_configs(bitset_explainer, repeat=1)

    legacy_seconds, legacy_reports = run_configs(legacy_explainer, repeat=rounds)
    bitset_seconds, bitset_reports = run_configs(bitset_explainer, repeat=rounds)
    identical = all(
        left.render(top_k=None) == right.render(top_k=None)
        for left, right in zip(legacy_reports, bitset_reports)
    )

    result = ExperimentResult(
        "E10",
        "Criteria phase: bitset verdict matrix vs per-pair matching",
        notes=(
            f"loan domain, |D|={len(database)} facts, {len(configs)} (Δ, Z) "
            f"configurations, warm caches on both paths"
        ),
    )
    stats = bitset_system.specification.engine.cache.stats
    result.add_row(
        mode="criteria_phase",
        candidates=len(pool),
        labelings=len(labeling_list),
        borders=size,
        configs=len(configs),
        rounds=rounds,
        legacy_seconds=round(legacy_seconds, 3),
        bitset_seconds=round(bitset_seconds, 3),
        speedup=round(legacy_seconds / bitset_seconds, 1) if bitset_seconds > 0 else None,
        identical_rankings=identical,
        verdict_rows_reused=stats.verdict_row_hits,
    )

    # Process sharding: identical rankings, whatever the executor.
    sequential = bitset_explainer.explain_batch(
        labeling_list, candidates=pool, max_workers=1, top_k=None
    )
    shard_system = make_system(bitset_enabled=True)
    shard_explainer = OntologyExplainer(shard_system)
    start = time.perf_counter()
    sharded = shard_explainer.explain_batch(
        labeling_list, candidates=pool, executor="process", max_workers=2, top_k=None
    )
    sharded_seconds = time.perf_counter() - start
    # Worker-side counters are merged back into the parent cache after
    # each shard completes (repro.engine.batch), so the reuse number
    # below covers the work actually done inside the worker processes.
    shard_stats = shard_system.specification.engine.cache.stats
    result.add_row(
        mode="process_sharding",
        candidates=len(pool),
        labelings=len(labeling_list),
        borders=size,
        configs=1,
        rounds=1,
        legacy_seconds=None,
        bitset_seconds=round(sharded_seconds, 3),
        speedup=None,
        identical_rankings=all(
            left.render(top_k=None) == right.render(top_k=None)
            for left, right in zip(sequential, sharded)
        ),
        verdict_rows_reused=shard_stats.verdict_row_hits,
    )
    return result
