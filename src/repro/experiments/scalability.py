"""Experiments E7/E9: scalability of borders, search and batch scoring.

Three sweeps:

* **border sweep** — wall-clock time and border sizes as the database
  grows and the radius increases (Definition 3.2 is the inner loop of
  everything else, so its scaling matters most);
* **search sweep** — end-to-end time of the explanation search as the
  number of labelled tuples grows, for a fixed candidate budget;
* **batch sweep (E9)** — chase-strategy batch scoring through the shared
  evaluation cache (:mod:`repro.engine`) against the per-call path, the
  workload ``benchmarks/bench_batch_explain.py`` gates.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from ..core.border import BorderComputer
from ..core.candidates import CandidateConfig, CandidateGenerator
from ..core.explainer import OntologyExplainer
from ..core.labeling import Labeling
from ..obdm.system import OBDMSystem
from ..ontologies.loans import build_loan_specification
from ..ontologies.university import build_university_specification
from ..workloads.loans_gen import LoanWorkloadConfig, generate_loan_workload
from ..workloads.university_gen import UniversityWorkloadConfig, generate_university_workload
from .tables import ExperimentResult


def run_border_scalability(
    sizes: Sequence[int] = (50, 100, 200, 400),
    radii: Sequence[int] = (0, 1, 2),
    seed: int = 13,
) -> ExperimentResult:
    """E7a: border computation time/size vs database size and radius."""
    result = ExperimentResult(
        "E7a",
        "Border computation: time and size vs |D| and radius",
    )
    for size in sizes:
        workload = generate_university_workload(
            UniversityWorkloadConfig(students=size, enrolments_per_student=2, seed=seed)
        )
        students = [f"S{i:05d}" for i in range(size)]
        for radius in radii:
            computer = BorderComputer(workload.database)
            start = time.perf_counter()
            statistics = computer.statistics(students, radius)
            elapsed = time.perf_counter() - start
            result.add_row(
                students=size,
                facts=len(workload.database),
                radius=radius,
                mean_border_size=round(statistics["mean"], 2),
                max_border_size=int(statistics["max"]),
                seconds_total=round(elapsed, 4),
                seconds_per_tuple=round(elapsed / max(1, size), 6),
            )
    return result


def run_search_scalability(
    sizes: Sequence[int] = (20, 40, 80),
    seed: int = 13,
    max_atoms: int = 3,
    max_candidates: int = 600,
) -> ExperimentResult:
    """E7b: end-to-end explanation search time vs number of labelled tuples."""
    specification = build_university_specification()
    result = ExperimentResult(
        "E7b",
        "Best-description search: end-to-end time vs labelled tuples",
        notes=f"candidate budget: max_atoms={max_atoms}, max_candidates={max_candidates}",
    )
    for size in sizes:
        workload = generate_university_workload(
            UniversityWorkloadConfig(students=size, enrolments_per_student=2, seed=seed)
        )
        labeling = Labeling(
            workload.parameters["positives"],
            workload.parameters["negatives"],
            name=f"university_{size}",
        )
        system = OBDMSystem(specification, workload.database, name=f"university_{size}")
        explainer = OntologyExplainer(system)
        start = time.perf_counter()
        report = explainer.explain(
            labeling,
            radius=1,
            candidate_config=CandidateConfig(max_atoms=max_atoms, max_candidates=max_candidates),
            top_k=1,
        )
        elapsed = time.perf_counter() - start
        best = report.best
        result.add_row(
            students=size,
            positives=len(labeling.positives),
            negatives=len(labeling.negatives),
            candidates=report.candidate_count,
            seconds=round(elapsed, 3),
            best_query=str(best.query) if best is not None else "",
            best_coverage=round(best.profile.positive_coverage(), 3) if best else None,
            best_exclusion=round(best.profile.negative_exclusion(), 3) if best else None,
        )
    return result


def run_batch_scoring(
    applicants: int = 14,
    candidate_pool: int = 12,
    labeled_per_side: int = 3,
    labelings: int = 2,
    seed: int = 7,
) -> ExperimentResult:
    """E9: cached batch scoring vs the per-call path (chase strategy).

    Scores one candidate pool against several labelings over the loan
    domain, once with the shared evaluation cache disabled (the seed's
    per-call behaviour: the border ABox is re-chased on every
    ``is_certain_answer``) and once through ``explain_batch``.  The
    rankings are checked to be identical; the table reports both times
    and the speedup.
    """
    database = generate_loan_workload(
        LoanWorkloadConfig(applicants=applicants, seed=seed)
    ).database

    def make_system(cache_enabled: bool) -> OBDMSystem:
        specification = build_loan_specification().with_strategy("chase")
        specification.engine.cache.enabled = cache_enabled
        return OBDMSystem(specification, database, name="loan_chase_e9")

    size = 2 * labeled_per_side
    names = [f"APP{i:04d}" for i in range(size + labelings - 1)]
    labeling_list = [
        Labeling(
            positives=names[offset : offset + labeled_per_side],
            negatives=names[offset + labeled_per_side : offset + size],
            name=f"lambda_{offset}",
        )
        for offset in range(labelings)
    ]

    pool_system = make_system(cache_enabled=True)
    pool = CandidateGenerator(
        pool_system, 1, CandidateConfig(max_atoms=2, max_candidates=candidate_pool)
    ).generate(labeling_list[0])

    baseline_explainer = OntologyExplainer(make_system(cache_enabled=False))
    start = time.perf_counter()
    baseline = [
        baseline_explainer.explain(labeling, candidates=pool) for labeling in labeling_list
    ]
    per_call_seconds = time.perf_counter() - start

    batch_system = make_system(cache_enabled=True)
    start = time.perf_counter()
    batched = OntologyExplainer(batch_system).explain_batch(labeling_list, candidates=pool)
    batch_seconds = time.perf_counter() - start

    identical = all(
        left.render(top_k=None) == right.render(top_k=None)
        for left, right in zip(baseline, batched)
    )
    stats = batch_system.specification.engine.cache.stats
    result = ExperimentResult(
        "E9",
        "Batch scoring: shared evaluation cache vs per-call chase",
        notes=f"loan domain, |D|={len(database)} facts, strategy=chase",
    )
    result.add_row(
        candidates=len(pool),
        labelings=len(labeling_list),
        per_call_seconds=round(per_call_seconds, 3),
        batch_seconds=round(batch_seconds, 3),
        speedup=round(per_call_seconds / batch_seconds, 1) if batch_seconds > 0 else None,
        identical_rankings=identical,
        saturations_saved=stats.saturation_hits,
    )
    return result
