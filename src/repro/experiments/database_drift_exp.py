"""Experiment E14: fact-level database drift — incremental vs cold rebuilds.

A deployed explanation service does not only see *labeling* drift: the
source database itself changes between requests (records are inserted,
corrected, retired).  The cold answer is to rebuild the whole substrate
— borders, retrieved ABoxes, saturations, verdict rows — against the
post-update database on every request.  The incremental path
(:meth:`~repro.service.ExplanationService.apply_delta`) applies a
:class:`~repro.obdm.database.DatabaseDelta` in place, invalidates only
the state the delta can touch and re-evaluates only the verdict columns
whose border content actually changed.

Three rows over a streaming-updates loan workload (one labeling served
after each of ``steps`` deltas; each delta retires and inserts facts
around a rotating labeled applicant):

* ``incremental_vs_cold`` — the resident service absorbing every delta
  incrementally vs a brand-new service per step over a fresh copy of
  the post-delta database.  Rankings are checked identical step-for-
  step; ``benchmarks/bench_database_drift.py`` gates the speedup ≥3×.
* ``inverse_identity`` — applying each delta followed by its
  :meth:`~repro.obdm.database.DatabaseDelta.inverse` must restore the
  database fingerprint *and* the served ranking, byte for byte.
* ``toggle_off`` — the same stream with
  ``specification.engine.delta.enabled = False``: every delta falls
  back to the legacy full reset (counted in
  ``stats.delta_cold_resets``) and the rankings must still match.
"""

from __future__ import annotations

import gc
import time
from typing import List, Optional, Tuple

from ..core.labeling import Labeling
from ..obdm.database import DatabaseDelta, SourceDatabase
from ..obdm.system import OBDMSystem
from ..ontologies.loans import build_loan_specification
from ..queries.atoms import Atom
from ..queries.terms import Constant
from ..service import ExplanationService
from .scalability import build_loan_pool
from .tables import ExperimentResult


def build_delta_stream(
    database: SourceDatabase,
    labeling: Labeling,
    steps: int,
    facts_per_step: int = 2,
) -> List[DatabaseDelta]:
    """A deterministic stream of deltas that actually touch the labeling.

    Step ``i`` targets labeled applicant ``i mod |tuples|``: it removes
    up to *facts_per_step* of the facts currently mentioning that
    applicant and inserts replacement facts under the same predicates
    with one argument swapped for a fresh ``DRIFT{i}_{j}`` constant —
    so every delta changes at least one border a warm session depends
    on.  Among the anchor's facts the *most local* ones are retired
    first (lowest total occurrence count of their non-anchor
    constants): a real streaming update touches a record and its
    immediate neighbourhood, not a categorical band constant shared by
    the entire database — and a delta mentioning such a hub constant
    would legitimately touch every border, leaving nothing incremental
    to measure.  Deltas are validated against a scratch copy, so each
    one is applicable exactly at its position in the stream.
    """
    scratch = database.copy(name="delta_stream_scratch")
    targets = sorted(
        {constant for labeled in labeling.tuples() for constant in labeled},
        key=lambda constant: str(constant.value),
    )
    if not targets:
        raise ValueError("the labeling names no constants to drift around")

    def locality(fact: Atom) -> Tuple[int, str]:
        spread = sum(
            len(scratch.facts_with_constant(constant))
            for constant in fact.constants()
            if constant != anchor
        )
        return (spread, str(fact))

    stream: List[DatabaseDelta] = []
    for step in range(steps):
        anchor = targets[step % len(targets)]
        candidates = sorted(scratch.facts_with_constant(anchor), key=locality)
        removed = candidates[:facts_per_step]
        added: List[Atom] = []
        for j, fact in enumerate(removed):
            fresh = Constant(f"DRIFT{step}_{j}")
            swapped: Tuple = tuple(
                fresh if position == len(fact.args) - 1 else value
                for position, value in enumerate(fact.args)
            )
            added.append(Atom(fact.predicate, swapped))
        delta = DatabaseDelta.of(added, removed)
        scratch.apply_delta(delta)
        stream.append(delta)
    return stream


def run_database_drift(
    applicants: int = 30,
    candidate_pool: int = 16,
    labeled_per_side: int = 8,
    steps: int = 4,
    facts_per_step: int = 2,
    radius: int = 0,
    seed: int = 7,
) -> ExperimentResult:
    """E14: streaming database updates, incremental vs cold rebuilds.

    Served at ``radius=0`` by default: in the banded loan domain every
    radius-1 border reaches almost every applicant through the shared
    band constants, so *any* update legitimately touches *every* border
    and there is nothing incremental left to measure — that dense
    regime is still covered here by the rankings-identity checks (the
    incremental path must degrade to a correct full refresh).  Radius 0
    keeps each border the applicant's own fact neighbourhood, which is
    the localized-update regime the delta path is built for.
    """
    workload = build_loan_pool(applicants, candidate_pool, labeled_per_side, seed=seed)
    base, pool = workload.database, workload.pool
    labeling = workload.labelings[0]
    stream = build_delta_stream(base, labeling, steps, facts_per_step)

    def make_service(database: SourceDatabase, enabled: bool = True) -> ExplanationService:
        specification = build_loan_specification()
        specification.engine.delta.enabled = enabled
        system = OBDMSystem(specification, database, name="loan_drift_e14")
        return ExplanationService(system, radius=radius)

    # -- cold: rebuild everything against the post-delta database ----------
    # Collect before each timed phase: the warm phase is milliseconds, so
    # a single gen-2 pause over garbage left by *earlier* experiments in
    # the same process (the harness runs E1..E13 first) would otherwise
    # dominate the measurement.
    cold_renders: List[str] = []
    gc.collect()
    start = time.perf_counter()
    cold_database = base.copy(name="loan_drift_cold")
    for delta in stream:
        cold_database.apply_delta(delta)
        cold_service = make_service(cold_database.copy(name="loan_drift_cold_step"))
        cold_renders.append(
            cold_service.explain(labeling, candidates=pool, top_k=None).render(top_k=None)
        )
    cold_seconds = time.perf_counter() - start

    # -- incremental: one resident service absorbing each delta ------------
    warm_service = make_service(base.copy(name="loan_drift_warm"))
    warm_service.explain(labeling, candidates=pool, top_k=None)  # warm the session
    warm_renders: List[str] = []
    borders_touched = 0
    gc.collect()
    start = time.perf_counter()
    for delta in stream:
        accounting = warm_service.apply_delta(delta)
        borders_touched += accounting["borders_touched"]
        warm_renders.append(
            warm_service.explain(labeling, candidates=pool, top_k=None).render(top_k=None)
        )
    warm_seconds = time.perf_counter() - start

    result = ExperimentResult(
        "E14",
        "Database drift: incremental delta propagation vs cold rebuilds",
        notes=(
            f"loan domain, |D|={len(base)} facts, {steps} deltas x "
            f"{facts_per_step} facts retired+inserted around labeled applicants"
        ),
    )
    result.add_row(
        mode="incremental_vs_cold",
        candidates=len(pool),
        steps=steps,
        cold_seconds=round(cold_seconds, 3),
        warm_seconds=round(warm_seconds, 3),
        speedup=round(cold_seconds / warm_seconds, 1) if warm_seconds > 0 else None,
        identical_rankings=warm_renders == cold_renders,
        borders_touched=borders_touched,
        sessions_updated=warm_service.stats.delta_sessions_updated,
        cold_resets=warm_service.stats.delta_cold_resets,
    )

    # -- inverse identity: delta then inverse restores everything ----------
    identity_service = make_service(base.copy(name="loan_drift_identity"))
    before_fingerprint = identity_service.system.database.fingerprint()
    before_render = identity_service.explain(labeling, candidates=pool, top_k=None).render(
        top_k=None
    )
    identity_ok = True
    for delta in stream[: max(1, steps // 2)]:
        identity_service.apply_delta(delta)
        identity_service.apply_delta(delta.inverse())
        restored = identity_service.explain(labeling, candidates=pool, top_k=None).render(
            top_k=None
        )
        identity_ok = (
            identity_ok
            and restored == before_render
            and identity_service.system.database.fingerprint() == before_fingerprint
        )
    result.add_row(
        mode="inverse_identity",
        candidates=len(pool),
        steps=max(1, steps // 2),
        cold_seconds=None,
        warm_seconds=None,
        speedup=None,
        identical_rankings=identity_ok,
        borders_touched=None,
        sessions_updated=identity_service.stats.delta_sessions_updated,
        cold_resets=identity_service.stats.delta_cold_resets,
    )

    # -- toggle off: legacy full reset per delta, same rankings ------------
    legacy_service = make_service(base.copy(name="loan_drift_legacy"), enabled=False)
    legacy_service.explain(labeling, candidates=pool, top_k=None)
    legacy_renders: List[str] = []
    for delta in stream:
        legacy_service.apply_delta(delta)
        legacy_renders.append(
            legacy_service.explain(labeling, candidates=pool, top_k=None).render(top_k=None)
        )
    result.add_row(
        mode="toggle_off",
        candidates=len(pool),
        steps=steps,
        cold_seconds=None,
        warm_seconds=None,
        speedup=None,
        identical_rankings=legacy_renders == cold_renders,
        borders_touched=None,
        sessions_updated=legacy_service.stats.delta_sessions_updated,
        cold_resets=legacy_service.stats.delta_cold_resets,
    )
    return result
