"""Top-level experiment harness.

``run_all()`` regenerates every experiment of the index in DESIGN.md
(E1–E8) with sizes small enough to finish on a laptop in a couple of
minutes, and returns the results keyed by experiment id.  The
``python -m repro.experiments.harness`` entry point prints every table,
which is the textual equivalent of re-running the paper's evaluation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from .ablation import run_bias_ablation, run_weight_ablation
from .certain_answers_exp import run_certain_answers
from .fidelity import run_fidelity
from .paper_examples import (
    run_example_3_3,
    run_example_3_6,
    run_example_3_8,
    run_proposition_3_5,
)
from .scalability import (
    run_batch_scoring,
    run_bitset_criteria,
    run_border_scalability,
    run_search_scalability,
)
from .batch_kernel_exp import run_batch_labelings
from .database_drift_exp import run_database_drift
from .gateway_exp import run_gateway_serving
from .kernel_exp import run_match_kernel
from .out_of_core_exp import run_out_of_core
from .pushdown_exp import run_pushdown_rewriting
from .service_exp import run_service_warm
from .tables import ExperimentResult

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "E1": run_example_3_3,
    "E2": run_example_3_6,
    "E3": run_example_3_8,
    "E4": run_proposition_3_5,
    "E5": lambda: run_certain_answers(sizes=(50, 100)),
    "E6": lambda: run_fidelity(size=30, max_candidates=200),
    "E7a": lambda: run_border_scalability(sizes=(50, 100, 200)),
    "E7b": lambda: run_search_scalability(sizes=(20, 40)),
    "E8a": run_weight_ablation,
    "E8b": lambda: run_bias_ablation(persons=30, max_candidates=150),
    "E9": run_batch_scoring,
    "E10": run_bitset_criteria,
    "E11": run_service_warm,
    "E12": run_match_kernel,
    "E13": lambda: run_batch_labelings(applicants=24, candidate_pool=20, labeled_per_side=8, labelings=4, rounds=2),
    "E14": run_database_drift,
    "E15": run_gateway_serving,
    "E16": lambda: run_out_of_core(base_applicants=24, scale=5, candidate_pool=16, labeled_per_side=8),
    "E17": lambda: run_pushdown_rewriting(base_applicants=24, scale=5, candidate_pool=12, labeled_per_side=8),
}


def run_all(only: Optional[Sequence[str]] = None) -> Dict[str, ExperimentResult]:
    """Run every experiment (or the subset named in *only*)."""
    selected = list(EXPERIMENTS) if only is None else list(only)
    results: Dict[str, ExperimentResult] = {}
    for experiment_id in selected:
        if experiment_id not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
            )
        results[experiment_id] = EXPERIMENTS[experiment_id]()
    return results


def render_all(only: Optional[Sequence[str]] = None) -> str:
    """Render every experiment table as one text report."""
    results = run_all(only)
    blocks = [results[experiment_id].render() for experiment_id in results]
    return "\n\n".join(blocks)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point: print the selected experiment tables."""
    import argparse

    parser = argparse.ArgumentParser(description="Re-run the paper's experiments")
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all of E1..E8)",
    )
    arguments = parser.parse_args(argv)
    only = arguments.experiments or None
    print(render_all(only))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
