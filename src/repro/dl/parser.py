"""Textual syntax for DL-Lite_R axioms.

The accepted syntax mirrors the paper's notation in ASCII::

    studies [= likes                      # role inclusion
    Student [= Person                     # concept inclusion
    exists teaches [= Teacher             # domain axiom
    exists teaches- [= Course             # range axiom (inverse role)
    Student [= exists enrolledIn          # mandatory participation
    Undergraduate [= not Graduate         # disjointness
    teaches [= not attends                # role disjointness

``⊑`` may be used instead of ``[=``; ``inv(R)`` instead of ``R-``.
Whether a name denotes a concept or a role is decided by capitalisation
(concepts start with an upper-case letter, roles with a lower-case
letter), which matches the convention used throughout the paper's
examples (``studies``, ``likes`` vs ``STUD``-style source relations).
A declared :class:`~repro.dl.ontology.Ontology` vocabulary, when passed
in, overrides the capitalisation heuristic.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Union

from ..errors import OntologyParseError
from .ontology import Ontology
from .syntax import (
    AtomicConcept,
    AtomicRole,
    Axiom,
    BasicConcept,
    Concept,
    ConceptInclusion,
    ExistentialRestriction,
    NegatedConcept,
    NegatedRole,
    Role,
    RoleInclusion,
)

_INCLUSION_RE = re.compile(r"\s*(?:\[=|⊑|<=|subClassOf|subPropertyOf)\s*")
_INVERSE_SUFFIX = re.compile(r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*(?:-|\^-|⁻)$")
_INVERSE_FUNCTION = re.compile(r"^inv\(\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\)$")
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _parse_role(text: str) -> Role:
    text = text.strip()
    match = _INVERSE_SUFFIX.match(text) or _INVERSE_FUNCTION.match(text)
    if match:
        return AtomicRole(match.group("name")).inverse()
    if not _NAME_RE.match(text):
        raise OntologyParseError(f"cannot parse role expression {text!r}")
    return AtomicRole(text)


def _looks_like_concept(name: str, ontology: Optional[Ontology]) -> bool:
    if ontology is not None:
        if name in ontology.concept_names:
            return True
        if name in ontology.role_names:
            return False
    return name[0].isupper()


def _parse_side(text: str, ontology: Optional[Ontology]) -> Union[Concept, Role, NegatedRole]:
    """Parse one side of an inclusion into a concept or role expression."""
    text = text.strip()
    if not text:
        raise OntologyParseError("empty side of an inclusion")

    negated = False
    lowered = text.lower()
    if lowered.startswith("not "):
        negated = True
        text = text[4:].strip()
    elif text.startswith("¬"):
        negated = True
        text = text[1:].strip()

    lowered = text.lower()
    if lowered.startswith("exists ") or text.startswith("∃"):
        remainder = text[7:] if lowered.startswith("exists ") else text[1:]
        role = _parse_role(remainder)
        concept: Concept = ExistentialRestriction(role)
        return NegatedConcept(concept) if negated else concept

    # A bare name or inverse role.
    inverse_match = _INVERSE_SUFFIX.match(text) or _INVERSE_FUNCTION.match(text)
    if inverse_match:
        role = AtomicRole(inverse_match.group("name")).inverse()
        return NegatedRole(role) if negated else role
    if not _NAME_RE.match(text):
        raise OntologyParseError(f"cannot parse expression {text!r}")
    if _looks_like_concept(text, ontology):
        concept = AtomicConcept(text)
        return NegatedConcept(concept) if negated else concept
    role = AtomicRole(text)
    return NegatedRole(role) if negated else role


def parse_axiom(text: str, ontology: Optional[Ontology] = None) -> Axiom:
    """Parse a single axiom from its textual form."""
    text = text.strip()
    if not text:
        raise OntologyParseError("empty axiom text")
    parts = _INCLUSION_RE.split(text)
    if len(parts) != 2:
        raise OntologyParseError(
            f"expected exactly one inclusion symbol ('[=' or '⊑') in {text!r}"
        )
    lhs = _parse_side(parts[0], ontology)
    rhs = _parse_side(parts[1], ontology)

    lhs_is_concept = isinstance(lhs, (AtomicConcept, ExistentialRestriction, NegatedConcept))
    rhs_is_concept = isinstance(rhs, (AtomicConcept, ExistentialRestriction, NegatedConcept))

    if isinstance(lhs, (NegatedConcept, NegatedRole)):
        raise OntologyParseError(f"negation is not allowed on the left-hand side: {text!r}")

    # Resolve mixed interpretations caused by the capitalisation heuristic:
    # if one side is clearly a concept (existential or declared), interpret
    # bare names on the other side as concepts too, and vice versa.
    if lhs_is_concept != rhs_is_concept:
        if lhs_is_concept:
            if isinstance(rhs, AtomicRole):
                rhs = AtomicConcept(rhs.name)
                rhs_is_concept = True
            elif isinstance(rhs, NegatedRole) and isinstance(rhs.role, AtomicRole):
                rhs = NegatedConcept(AtomicConcept(rhs.role.name))
                rhs_is_concept = True
        else:
            if isinstance(lhs, AtomicRole):
                lhs = AtomicConcept(lhs.name)
                lhs_is_concept = True
        if lhs_is_concept != rhs_is_concept:
            raise OntologyParseError(
                f"cannot mix a concept and a role in one inclusion: {text!r}"
            )

    if lhs_is_concept:
        return ConceptInclusion(lhs, rhs)
    return RoleInclusion(lhs, rhs)


def parse_axioms(text: str, ontology: Optional[Ontology] = None) -> List[Axiom]:
    """Parse several axioms separated by newlines, ``;`` or ``.`` lines.

    Lines starting with ``#`` or ``//`` are comments.
    """
    axioms: List[Axiom] = []
    for raw_line in re.split(r"[;\n]+", text):
        line = raw_line.strip().rstrip(".")
        if not line or line.startswith("#") or line.startswith("//"):
            continue
        axioms.append(parse_axiom(line, ontology))
    return axioms


def parse_ontology(
    text: str,
    concept_names: Iterable[str] = (),
    role_names: Iterable[str] = (),
    name: str = "ontology",
) -> Ontology:
    """Parse a whole ontology from text.

    *concept_names* / *role_names* pre-declare vocabulary so that names
    that never appear in axioms (mapping-only predicates) are known, and
    so that the capitalisation heuristic can be overridden.
    """
    ontology = Ontology((), concept_names, role_names, name)
    for axiom in parse_axioms(text, ontology):
        ontology.add_axiom(axiom)
    return ontology
