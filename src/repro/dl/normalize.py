"""Normalisation utilities for DL-Lite_R TBoxes.

Normalisation keeps the reasoner and the rewriting engine simple by
guaranteeing a few structural invariants:

* duplicate axioms are removed;
* trivially redundant axioms (``B ⊑ B``, ``R ⊑ R``) are dropped;
* double inverses are flattened (``(P⁻)⁻`` becomes ``P``) — these can be
  produced by programmatic ontology construction;
* optionally, the deductive closure of positive inclusions is
  materialised (useful to inspect what the reasoner entails, and in
  tests as an independent oracle for subsumption).
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from .ontology import Ontology
from .reasoner import Reasoner
from .syntax import (
    AtomicConcept,
    AtomicRole,
    Axiom,
    BasicConcept,
    ConceptInclusion,
    ExistentialRestriction,
    InverseRole,
    NegatedConcept,
    NegatedRole,
    Role,
    RoleInclusion,
)


def flatten_role(role: Role) -> Role:
    """Remove double inverses: ``inv(inv(P)) -> P``."""
    while isinstance(role, InverseRole) and isinstance(role.role, InverseRole):
        role = role.role.role
    return role


def _flatten_concept(concept):
    if isinstance(concept, ExistentialRestriction):
        return ExistentialRestriction(flatten_role(concept.role))
    if isinstance(concept, NegatedConcept):
        return NegatedConcept(_flatten_concept(concept.concept))
    return concept


def normalize_axiom(axiom: Axiom) -> Axiom:
    """Return the axiom with flattened role expressions."""
    if isinstance(axiom, ConceptInclusion):
        return ConceptInclusion(_flatten_concept(axiom.lhs), _flatten_concept(axiom.rhs))
    rhs = axiom.rhs
    if isinstance(rhs, NegatedRole):
        rhs = NegatedRole(flatten_role(rhs.role))
    else:
        rhs = flatten_role(rhs)
    return RoleInclusion(flatten_role(axiom.lhs), rhs)


def _is_trivial(axiom: Axiom) -> bool:
    if isinstance(axiom, ConceptInclusion):
        return axiom.lhs == axiom.rhs
    return axiom.lhs == axiom.rhs


def normalize(ontology: Ontology) -> Ontology:
    """Return a normalised copy of the ontology (same entailments)."""
    seen: Set[Axiom] = set()
    normalized_axioms: List[Axiom] = []
    for axiom in ontology.axioms:
        normalized = normalize_axiom(axiom)
        if _is_trivial(normalized) or normalized in seen:
            continue
        seen.add(normalized)
        normalized_axioms.append(normalized)
    return Ontology(
        normalized_axioms,
        ontology.concept_names,
        ontology.role_names,
        ontology.name,
    )


def positive_closure(ontology: Ontology) -> Tuple[Set[Tuple[BasicConcept, BasicConcept]], Set[Tuple[Role, Role]]]:
    """Materialise all entailed positive subsumptions.

    Returns ``(concept_pairs, role_pairs)`` where each pair ``(x, y)``
    means ``O ⊨ x ⊑ y`` and ``x != y``.
    """
    reasoner = Reasoner(ontology)
    concept_pairs = reasoner.concept_hierarchy_pairs()
    role_pairs: Set[Tuple[Role, Role]] = set()
    roles: Set[Role] = set()
    for name in ontology.role_names:
        atomic = AtomicRole(name)
        roles.add(atomic)
        roles.add(atomic.inverse())
    for role in roles:
        for subsumer in reasoner.role_subsumers(role):
            if subsumer != role:
                role_pairs.add((role, subsumer))
    return concept_pairs, role_pairs
