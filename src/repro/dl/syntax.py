"""Syntax of the ontology language (DL-Lite_R).

The paper assumes the ontology is formulated in a Description Logic and
relies on the OBDM/OBDA literature (DL-Lite_A and relatives) for
decidability and first-order rewritability of query answering.  We
implement DL-Lite_R, the member of the DL-Lite family underlying
OWL 2 QL:

* roles:            ``R ::= P | P⁻``
* basic concepts:   ``B ::= A | ∃R``
* general concepts: ``C ::= B | ¬B``        (negation only on right-hand sides)
* general roles:    ``E ::= R | ¬R``
* TBox axioms:      ``B ⊑ C`` (concept inclusion), ``R ⊑ E`` (role inclusion)

Positive inclusions (no negation on the right) drive query rewriting;
negative inclusions (disjointness) drive consistency checking.

All syntax objects are immutable and hashable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from ..errors import OntologyError


# ---------------------------------------------------------------------------
# Roles
# ---------------------------------------------------------------------------

@dataclass(frozen=True, order=True)
class AtomicRole:
    """A role (binary predicate) name, e.g. ``studies``."""

    name: str

    def __post_init__(self):
        if not self.name:
            raise OntologyError("role name must be non-empty")

    def inverse(self) -> "InverseRole":
        return InverseRole(self)

    @property
    def predicate(self) -> str:
        """The predicate symbol used for this role in query atoms."""
        return self.name

    def __str__(self):
        return self.name


@dataclass(frozen=True, order=True)
class InverseRole:
    """The inverse ``P⁻`` of an atomic role ``P``."""

    role: AtomicRole

    def inverse(self) -> AtomicRole:
        return self.role

    @property
    def predicate(self) -> str:
        return self.role.name

    def __str__(self):
        return f"{self.role.name}^-"


Role = Union[AtomicRole, InverseRole]


def role_of(name: str, inverse: bool = False) -> Role:
    """Build a role from its name; ``inverse=True`` yields ``name⁻``."""
    atomic = AtomicRole(name)
    return atomic.inverse() if inverse else atomic


def is_inverse(role: Role) -> bool:
    return isinstance(role, InverseRole)


# ---------------------------------------------------------------------------
# Concepts
# ---------------------------------------------------------------------------

@dataclass(frozen=True, order=True)
class AtomicConcept:
    """A concept (unary predicate) name, e.g. ``Student``."""

    name: str

    def __post_init__(self):
        if not self.name:
            raise OntologyError("concept name must be non-empty")

    @property
    def predicate(self) -> str:
        return self.name

    def __str__(self):
        return self.name


@dataclass(frozen=True, order=True)
class ExistentialRestriction:
    """The unqualified existential ``∃R`` (objects with at least one R-filler)."""

    role: Role

    def __str__(self):
        return f"exists {self.role}"


BasicConcept = Union[AtomicConcept, ExistentialRestriction]


@dataclass(frozen=True, order=True)
class NegatedConcept:
    """``¬B`` — only allowed on the right-hand side of inclusions."""

    concept: BasicConcept

    def __str__(self):
        return f"not {self.concept}"


Concept = Union[AtomicConcept, ExistentialRestriction, NegatedConcept]


@dataclass(frozen=True, order=True)
class NegatedRole:
    """``¬R`` — only allowed on the right-hand side of role inclusions."""

    role: Role

    def __str__(self):
        return f"not {self.role}"


RoleExpression = Union[AtomicRole, InverseRole, NegatedRole]


def exists(role: Union[str, Role], inverse: bool = False) -> ExistentialRestriction:
    """Convenience constructor for ``∃R`` / ``∃R⁻``."""
    if isinstance(role, str):
        role = role_of(role, inverse)
    elif inverse:
        role = role.inverse()
    return ExistentialRestriction(role)


def is_basic_concept(concept: Concept) -> bool:
    return isinstance(concept, (AtomicConcept, ExistentialRestriction))


# ---------------------------------------------------------------------------
# Axioms
# ---------------------------------------------------------------------------

@dataclass(frozen=True, order=True)
class ConceptInclusion:
    """A concept inclusion ``lhs ⊑ rhs`` with basic lhs."""

    lhs: BasicConcept
    rhs: Concept

    def __post_init__(self):
        if not is_basic_concept(self.lhs):
            raise OntologyError(
                f"left-hand side of a concept inclusion must be basic, got {self.lhs}"
            )

    def is_positive(self) -> bool:
        """Positive inclusions have no negation on the right-hand side."""
        return not isinstance(self.rhs, NegatedConcept)

    def __str__(self):
        return f"{self.lhs} ⊑ {self.rhs}"


@dataclass(frozen=True, order=True)
class RoleInclusion:
    """A role inclusion ``lhs ⊑ rhs`` with (possibly inverse) atomic lhs."""

    lhs: Role
    rhs: RoleExpression

    def is_positive(self) -> bool:
        return not isinstance(self.rhs, NegatedRole)

    def __str__(self):
        return f"{self.lhs} ⊑ {self.rhs}"


Axiom = Union[ConceptInclusion, RoleInclusion]


def concept_vocabulary(axiom: Axiom) -> Tuple[set, set]:
    """Return the (concept names, role names) used by an axiom."""
    concepts, roles = set(), set()

    def visit_concept(concept: Concept) -> None:
        if isinstance(concept, AtomicConcept):
            concepts.add(concept.name)
        elif isinstance(concept, ExistentialRestriction):
            roles.add(concept.role.predicate)
        elif isinstance(concept, NegatedConcept):
            visit_concept(concept.concept)

    if isinstance(axiom, ConceptInclusion):
        visit_concept(axiom.lhs)
        visit_concept(axiom.rhs)
    else:
        roles.add(axiom.lhs.predicate)
        rhs = axiom.rhs
        if isinstance(rhs, NegatedRole):
            roles.add(rhs.role.predicate)
        else:
            roles.add(rhs.predicate)
    return concepts, roles
