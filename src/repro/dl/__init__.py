"""Description Logic substrate: DL-Lite_R syntax, ontologies, reasoning, parsing."""

from .normalize import flatten_role, normalize, normalize_axiom, positive_closure
from .ontology import Ontology, disjoint, domain_of, range_of, subclass, subrole
from .parser import parse_axiom, parse_axioms, parse_ontology
from .reasoner import Reasoner, invert
from .syntax import (
    AtomicConcept,
    AtomicRole,
    Axiom,
    BasicConcept,
    Concept,
    ConceptInclusion,
    ExistentialRestriction,
    InverseRole,
    NegatedConcept,
    NegatedRole,
    Role,
    RoleInclusion,
    exists,
    is_basic_concept,
    is_inverse,
    role_of,
)

__all__ = [
    "AtomicConcept",
    "AtomicRole",
    "Axiom",
    "BasicConcept",
    "Concept",
    "ConceptInclusion",
    "ExistentialRestriction",
    "InverseRole",
    "NegatedConcept",
    "NegatedRole",
    "Ontology",
    "Reasoner",
    "Role",
    "RoleInclusion",
    "disjoint",
    "domain_of",
    "exists",
    "flatten_role",
    "invert",
    "is_basic_concept",
    "is_inverse",
    "normalize",
    "normalize_axiom",
    "parse_axiom",
    "parse_axioms",
    "parse_ontology",
    "positive_closure",
    "range_of",
    "subclass",
    "subrole",
    "role_of",
]
