"""The ontology (TBox) container.

An :class:`Ontology` is a finite set of DL-Lite_R axioms together with a
declared vocabulary of concept and role names.  Declaring vocabulary
explicitly (in addition to whatever appears in axioms) matters because
mapping assertions may target concepts or roles that no axiom mentions
— in the paper's Example 3.6, ``taughtIn`` and ``locatedIn`` appear only
in the mapping, while the single axiom is ``studies ⊑ likes``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..errors import OntologyError
from .syntax import (
    AtomicConcept,
    AtomicRole,
    Axiom,
    BasicConcept,
    Concept,
    ConceptInclusion,
    ExistentialRestriction,
    InverseRole,
    NegatedConcept,
    NegatedRole,
    Role,
    RoleInclusion,
    concept_vocabulary,
    is_basic_concept,
)


class Ontology:
    """A DL-Lite_R TBox with an explicit vocabulary."""

    def __init__(
        self,
        axioms: Iterable[Axiom] = (),
        concept_names: Iterable[str] = (),
        role_names: Iterable[str] = (),
        name: str = "ontology",
    ):
        self.name = name
        self._axioms: List[Axiom] = []
        self._concept_names: Set[str] = set(concept_names)
        self._role_names: Set[str] = set(role_names)
        for axiom in axioms:
            self.add_axiom(axiom)

    # -- construction ------------------------------------------------------

    def add_axiom(self, axiom: Axiom) -> None:
        """Add an axiom and register its vocabulary."""
        if not isinstance(axiom, (ConceptInclusion, RoleInclusion)):
            raise OntologyError(f"unsupported axiom type: {type(axiom).__name__}")
        concepts, roles = concept_vocabulary(axiom)
        self._concept_names |= concepts
        self._role_names |= roles
        if axiom not in self._axioms:
            self._axioms.append(axiom)

    def add_axioms(self, axioms: Iterable[Axiom]) -> None:
        for axiom in axioms:
            self.add_axiom(axiom)

    def declare_concept(self, name: str) -> AtomicConcept:
        """Declare (or look up) a concept name in the vocabulary."""
        self._concept_names.add(name)
        return AtomicConcept(name)

    def declare_role(self, name: str) -> AtomicRole:
        """Declare (or look up) a role name in the vocabulary."""
        self._role_names.add(name)
        return AtomicRole(name)

    # -- inspection -----------------------------------------------------------

    @property
    def axioms(self) -> Tuple[Axiom, ...]:
        return tuple(self._axioms)

    @property
    def concept_names(self) -> FrozenSet[str]:
        return frozenset(self._concept_names)

    @property
    def role_names(self) -> FrozenSet[str]:
        return frozenset(self._role_names)

    def vocabulary(self) -> FrozenSet[str]:
        """All ontology predicate symbols (concepts are unary, roles binary)."""
        return frozenset(self._concept_names | self._role_names)

    def arity_of(self, predicate: str) -> int:
        """Arity of an ontology predicate: 1 for concepts, 2 for roles."""
        if predicate in self._concept_names:
            return 1
        if predicate in self._role_names:
            return 2
        raise OntologyError(
            f"predicate {predicate!r} is not in the vocabulary of ontology {self.name!r}"
        )

    def has_predicate(self, predicate: str) -> bool:
        return predicate in self._concept_names or predicate in self._role_names

    def concept_inclusions(self) -> List[ConceptInclusion]:
        return [a for a in self._axioms if isinstance(a, ConceptInclusion)]

    def role_inclusions(self) -> List[RoleInclusion]:
        return [a for a in self._axioms if isinstance(a, RoleInclusion)]

    def positive_concept_inclusions(self) -> List[ConceptInclusion]:
        return [a for a in self.concept_inclusions() if a.is_positive()]

    def positive_role_inclusions(self) -> List[RoleInclusion]:
        return [a for a in self.role_inclusions() if a.is_positive()]

    def negative_concept_inclusions(self) -> List[ConceptInclusion]:
        return [a for a in self.concept_inclusions() if not a.is_positive()]

    def negative_role_inclusions(self) -> List[RoleInclusion]:
        return [a for a in self.role_inclusions() if not a.is_positive()]

    def __len__(self) -> int:
        return len(self._axioms)

    def __iter__(self) -> Iterator[Axiom]:
        return iter(self._axioms)

    def __contains__(self, axiom: Axiom) -> bool:
        return axiom in self._axioms

    def copy(self) -> "Ontology":
        return Ontology(self._axioms, self._concept_names, self._role_names, self.name)

    def __str__(self):
        lines = [f"Ontology {self.name!r}:"]
        lines += [f"  {axiom}" for axiom in self._axioms]
        lines.append(f"  concepts: {sorted(self._concept_names)}")
        lines.append(f"  roles: {sorted(self._role_names)}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Convenience builders
# ---------------------------------------------------------------------------

def subclass(lhs: Union[str, BasicConcept], rhs: Union[str, Concept]) -> ConceptInclusion:
    """Shorthand for a concept inclusion given names or concept objects."""
    if isinstance(lhs, str):
        lhs = AtomicConcept(lhs)
    if isinstance(rhs, str):
        rhs = AtomicConcept(rhs)
    return ConceptInclusion(lhs, rhs)


def subrole(lhs: Union[str, Role], rhs: Union[str, Role, NegatedRole]) -> RoleInclusion:
    """Shorthand for a role inclusion given names or role objects."""
    if isinstance(lhs, str):
        lhs = AtomicRole(lhs)
    if isinstance(rhs, str):
        rhs = AtomicRole(rhs)
    return RoleInclusion(lhs, rhs)


def domain_of(role: Union[str, Role], concept: Union[str, Concept]) -> ConceptInclusion:
    """Domain axiom ``∃R ⊑ C``."""
    if isinstance(role, str):
        role = AtomicRole(role)
    if isinstance(concept, str):
        concept = AtomicConcept(concept)
    return ConceptInclusion(ExistentialRestriction(role), concept)


def range_of(role: Union[str, Role], concept: Union[str, Concept]) -> ConceptInclusion:
    """Range axiom ``∃R⁻ ⊑ C``."""
    if isinstance(role, str):
        role = AtomicRole(role)
    if isinstance(concept, str):
        concept = AtomicConcept(concept)
    return ConceptInclusion(ExistentialRestriction(role.inverse() if isinstance(role, AtomicRole) else role), concept)


def disjoint(lhs: Union[str, BasicConcept], rhs: Union[str, BasicConcept]) -> ConceptInclusion:
    """Disjointness axiom ``B1 ⊑ ¬B2``."""
    if isinstance(lhs, str):
        lhs = AtomicConcept(lhs)
    if isinstance(rhs, str):
        rhs = AtomicConcept(rhs)
    return ConceptInclusion(lhs, NegatedConcept(rhs))
