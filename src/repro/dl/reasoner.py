"""TBox reasoning for DL-Lite_R.

The reasoner answers the structural questions needed by the OBDM layer
and by the explanation framework:

* role subsumption (``R ⊑? S``), taking inverses into account;
* basic-concept subsumption (``B1 ⊑? B2``), taking the role hierarchy
  into account (``R ⊑ S`` entails ``∃R ⊑ ∃S`` and ``∃R⁻ ⊑ ∃S⁻``);
* the full sets of subsumers/subsumees of a basic concept or role
  (used by query rewriting and candidate-explanation generalisation);
* disjointness entailment and ABox consistency checking.

DL-Lite subsumption reduces to reachability over a graph whose nodes
are basic concepts (respectively roles) and whose edges are the direct
positive inclusions plus those induced by the role hierarchy, so the
implementation below is a cached breadth-first closure.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from ..queries.atoms import Atom
from .ontology import Ontology
from .syntax import (
    AtomicConcept,
    AtomicRole,
    BasicConcept,
    ConceptInclusion,
    ExistentialRestriction,
    InverseRole,
    NegatedConcept,
    NegatedRole,
    Role,
    RoleInclusion,
    is_basic_concept,
)


def invert(role: Role) -> Role:
    """The inverse of a role (``(P⁻)⁻ = P``)."""
    return role.inverse()


class Reasoner:
    """Cached structural reasoner over a DL-Lite_R ontology."""

    def __init__(self, ontology: Ontology):
        self.ontology = ontology
        self._role_successors: Dict[Role, Set[Role]] = {}
        self._role_predecessors: Dict[Role, Set[Role]] = {}
        self._concept_successors: Dict[BasicConcept, Set[BasicConcept]] = {}
        self._concept_predecessors: Dict[BasicConcept, Set[BasicConcept]] = {}
        self._subsumer_cache: Dict[BasicConcept, FrozenSet[BasicConcept]] = {}
        self._subsumee_cache: Dict[BasicConcept, FrozenSet[BasicConcept]] = {}
        self._role_subsumer_cache: Dict[Role, FrozenSet[Role]] = {}
        self._role_subsumee_cache: Dict[Role, FrozenSet[Role]] = {}
        self._build_graphs()

    # -- graph construction ----------------------------------------------

    def _add_role_edge(self, lhs: Role, rhs: Role) -> None:
        self._role_successors.setdefault(lhs, set()).add(rhs)
        self._role_predecessors.setdefault(rhs, set()).add(lhs)

    def _add_concept_edge(self, lhs: BasicConcept, rhs: BasicConcept) -> None:
        self._concept_successors.setdefault(lhs, set()).add(rhs)
        self._concept_predecessors.setdefault(rhs, set()).add(lhs)

    def _build_graphs(self) -> None:
        for axiom in self.ontology.positive_role_inclusions():
            rhs = axiom.rhs
            assert not isinstance(rhs, NegatedRole)
            self._add_role_edge(axiom.lhs, rhs)
            self._add_role_edge(invert(axiom.lhs), invert(rhs))
        for axiom in self.ontology.positive_concept_inclusions():
            rhs = axiom.rhs
            assert is_basic_concept(rhs)
            self._add_concept_edge(axiom.lhs, rhs)

    # -- role reasoning -------------------------------------------------------

    def role_subsumers(self, role: Role) -> FrozenSet[Role]:
        """All roles ``S`` with ``O ⊨ role ⊑ S`` (reflexive)."""
        cached = self._role_subsumer_cache.get(role)
        if cached is None:
            cached = frozenset(self._closure(role, self._role_successors))
            self._role_subsumer_cache[role] = cached
        return cached

    def role_subsumees(self, role: Role) -> FrozenSet[Role]:
        """All roles ``S`` with ``O ⊨ S ⊑ role`` (reflexive)."""
        cached = self._role_subsumee_cache.get(role)
        if cached is None:
            cached = frozenset(self._closure(role, self._role_predecessors))
            self._role_subsumee_cache[role] = cached
        return cached

    def is_role_subsumed(self, sub: Role, sup: Role) -> bool:
        """``True`` iff ``O ⊨ sub ⊑ sup``."""
        return sup in self.role_subsumers(sub)

    # -- concept reasoning -------------------------------------------------------

    def _concept_successors_of(self, concept: BasicConcept) -> Set[BasicConcept]:
        successors = set(self._concept_successors.get(concept, set()))
        if isinstance(concept, ExistentialRestriction):
            for role in self._role_successors.get(concept.role, set()):
                successors.add(ExistentialRestriction(role))
        return successors

    def _concept_predecessors_of(self, concept: BasicConcept) -> Set[BasicConcept]:
        predecessors = set(self._concept_predecessors.get(concept, set()))
        if isinstance(concept, ExistentialRestriction):
            for role in self._role_predecessors.get(concept.role, set()):
                predecessors.add(ExistentialRestriction(role))
        return predecessors

    def subsumers(self, concept: BasicConcept) -> FrozenSet[BasicConcept]:
        """All basic concepts ``C`` with ``O ⊨ concept ⊑ C`` (reflexive)."""
        cached = self._subsumer_cache.get(concept)
        if cached is None:
            cached = frozenset(self._closure(concept, None, self._concept_successors_of))
            self._subsumer_cache[concept] = cached
        return cached

    def subsumees(self, concept: BasicConcept) -> FrozenSet[BasicConcept]:
        """All basic concepts ``C`` with ``O ⊨ C ⊑ concept`` (reflexive)."""
        cached = self._subsumee_cache.get(concept)
        if cached is None:
            cached = frozenset(self._closure(concept, None, self._concept_predecessors_of))
            self._subsumee_cache[concept] = cached
        return cached

    def is_subsumed(self, sub: BasicConcept, sup: BasicConcept) -> bool:
        """``True`` iff ``O ⊨ sub ⊑ sup``."""
        return sup in self.subsumers(sub)

    # -- closure helper ------------------------------------------------------------

    @staticmethod
    def _closure(start, adjacency: Optional[Dict], successor_function=None) -> Set:
        reached = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            if successor_function is not None:
                successors = successor_function(node)
            else:
                successors = adjacency.get(node, set())
            for successor in successors:
                if successor not in reached:
                    reached.add(successor)
                    frontier.append(successor)
        return reached

    # -- classification --------------------------------------------------------------

    def all_basic_concepts(self) -> Set[BasicConcept]:
        """Every basic concept over the ontology vocabulary."""
        concepts: Set[BasicConcept] = {
            AtomicConcept(name) for name in self.ontology.concept_names
        }
        for name in self.ontology.role_names:
            role = AtomicRole(name)
            concepts.add(ExistentialRestriction(role))
            concepts.add(ExistentialRestriction(role.inverse()))
        return concepts

    def classify(self) -> Dict[BasicConcept, FrozenSet[BasicConcept]]:
        """Map every basic concept to its full set of subsumers."""
        return {concept: self.subsumers(concept) for concept in self.all_basic_concepts()}

    def concept_hierarchy_pairs(self) -> Set[Tuple[BasicConcept, BasicConcept]]:
        """All entailed pairs ``(B1, B2)`` with ``B1 ⊑ B2`` and ``B1 != B2``."""
        pairs: Set[Tuple[BasicConcept, BasicConcept]] = set()
        for concept in self.all_basic_concepts():
            for subsumer in self.subsumers(concept):
                if subsumer != concept:
                    pairs.add((concept, subsumer))
        return pairs

    # -- disjointness and consistency ---------------------------------------------------

    def entailed_disjointness(self) -> Set[Tuple[BasicConcept, BasicConcept]]:
        """All pairs of basic concepts entailed to be disjoint.

        ``B1`` and ``B2`` are disjoint when there is a negative inclusion
        ``C1 ⊑ ¬C2`` such that ``B1 ⊑ C1`` and ``B2 ⊑ C2`` (or symmetrically).
        """
        disjoint_pairs: Set[Tuple[BasicConcept, BasicConcept]] = set()
        for axiom in self.ontology.negative_concept_inclusions():
            negated = axiom.rhs
            assert isinstance(negated, NegatedConcept)
            left_subsumees = self.subsumees(axiom.lhs)
            right_subsumees = self.subsumees(negated.concept)
            for left in left_subsumees:
                for right in right_subsumees:
                    disjoint_pairs.add((left, right))
                    disjoint_pairs.add((right, left))
        return disjoint_pairs

    def are_disjoint(self, first: BasicConcept, second: BasicConcept) -> bool:
        """``True`` iff the ontology entails ``first ⊓ second ⊑ ⊥``."""
        return (first, second) in self.entailed_disjointness()

    def is_concept_satisfiable(self, concept: BasicConcept) -> bool:
        """A basic concept is unsatisfiable iff it is disjoint from itself."""
        return not self.are_disjoint(concept, concept)

    def check_abox_consistency(self, facts: Iterable[Atom]) -> List[Tuple[str, Atom, Atom]]:
        """Check an ABox (set of ontology facts) against disjointness axioms.

        Returns a list of violations ``(individual, fact1, fact2)``; an
        empty list means the ABox is consistent with the TBox's negative
        inclusions.  Membership is computed on the saturated view: an
        individual belongs to every subsumer of the concepts its facts
        assert directly.
        """
        facts = list(facts)
        memberships: Dict[str, Set[BasicConcept]] = {}
        witnesses: Dict[Tuple[str, BasicConcept], Atom] = {}

        def record(individual, concept: BasicConcept, fact: Atom) -> None:
            for subsumer in self.subsumers(concept):
                memberships.setdefault(individual, set()).add(subsumer)
                witnesses.setdefault((individual, subsumer), fact)

        for fact in facts:
            if fact.arity == 1 and fact.predicate in self.ontology.concept_names:
                record(fact.args[0], AtomicConcept(fact.predicate), fact)
            elif fact.arity == 2 and fact.predicate in self.ontology.role_names:
                role = AtomicRole(fact.predicate)
                record(fact.args[0], ExistentialRestriction(role), fact)
                record(fact.args[1], ExistentialRestriction(role.inverse()), fact)

        violations: List[Tuple[str, Atom, Atom]] = []
        disjoint_pairs = self.entailed_disjointness()
        for individual, concepts in memberships.items():
            concept_list = sorted(concepts, key=str)
            for i, first in enumerate(concept_list):
                for second in concept_list[i:]:
                    if (first, second) in disjoint_pairs:
                        violations.append(
                            (
                                str(individual),
                                witnesses[(individual, first)],
                                witnesses[(individual, second)],
                            )
                        )
        return violations
