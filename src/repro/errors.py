"""Exception hierarchy for the ``repro`` library.

Every error raised on purpose by the library derives from
:class:`ReproError`, so applications can catch a single base class.  The
subclasses mirror the layering of the library: query-language errors,
ontology (DL) errors, OBDM errors, machine-learning errors and
explanation-framework errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class QueryError(ReproError):
    """Problems with query construction, parsing or evaluation."""


class QueryParseError(QueryError):
    """A textual query could not be parsed."""


class QueryArityError(QueryError):
    """A query or atom was used with the wrong number of arguments."""


class UnsafeQueryError(QueryError):
    """A query has head variables that do not occur in its body."""


class OntologyError(ReproError):
    """Problems with ontology (TBox) construction or reasoning."""


class OntologyParseError(OntologyError):
    """A textual ontology axiom could not be parsed."""


class UnsatisfiableConceptError(OntologyError):
    """A concept was proven unsatisfiable and strict mode is enabled."""


class SchemaError(ReproError):
    """Problems with source schemas or source databases."""


class UnknownRelationError(SchemaError):
    """A fact or query referenced a relation that is not in the schema."""


class MappingError(ReproError):
    """Problems with OBDM mapping assertions."""


class OBDMError(ReproError):
    """Problems at the level of OBDM specifications or systems."""


class CertainAnswerError(OBDMError):
    """Certain-answer computation failed or was configured incorrectly."""


class DatasetError(ReproError):
    """Problems with tabular machine-learning datasets."""


class NotFittedError(ReproError):
    """A classifier was used before :meth:`fit` was called."""


class ExplanationError(ReproError):
    """Problems raised by the explanation framework (``repro.core``)."""


class GatewayError(ReproError):
    """Problems raised by the async serving gateway (``repro.gateway``)."""


class GatewayOverloaded(GatewayError):
    """The gateway shed a request because admission control is saturated.

    The 503-style fast-fail: raised *before* any evaluation work is
    queued, so callers can retry against another replica immediately.
    ``status`` carries the HTTP-equivalent code for transport layers.
    """

    status = 503


class GatewayTimeout(GatewayError):
    """A request's per-call timeout elapsed before its evaluation finished.

    The underlying (possibly coalesced) evaluation keeps running to
    completion — the session is never left half-built and later
    requests for the same key are served warm.
    """

    status = 504


class UnknownTenantError(GatewayError):
    """A gateway request named a tenant no builder was registered for."""


class CriterionError(ExplanationError):
    """A criterion function was mis-configured or returned a bad value."""


class ScoringError(ExplanationError):
    """A scoring expression was mis-configured."""


class SearchBudgetExceeded(ExplanationError):
    """A best-description search exceeded its configured budget.

    The exception carries the best query found so far, so callers can
    still make use of partial results.
    """

    def __init__(self, message, best_so_far=None):
        super().__init__(message)
        self.best_so_far = best_so_far
