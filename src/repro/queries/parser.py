"""A small datalog-style parser for CQs and UCQs.

The concrete syntax accepted is the one used throughout the paper and in
this repository's examples and tests::

    q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, 'Rome')
    q(x) :- studies(x, 'Math')

* lower-case bare identifiers in argument positions are variables;
* quoted strings (single or double quotes) and numbers are constants;
* identifiers starting with an upper-case letter in argument positions
  are also treated as constants (handy for individuals such as ``Rome``);
* a UCQ is written as several rules with the same head separated by
  newlines or ``;``.

The parser is deliberately small: a tokenizer plus a recursive-descent
grammar, with precise error messages carrying the offending position.
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple, Optional, Sequence, Tuple, Union

from ..errors import QueryParseError
from .atoms import Atom
from .cq import ConjunctiveQuery
from .terms import Constant, Term, Variable
from .ucq import UnionOfConjunctiveQueries

_TOKEN_SPEC = [
    ("ARROW", r":-|<-"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("SEMI", r";"),
    ("STRING", r"'[^']*'|\"[^\"]*\""),
    ("NUMBER", r"-?\d+\.\d+|-?\d+"),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_\-]*"),
    ("WS", r"[ \t]+"),
    ("NEWLINE", r"\r?\n"),
    ("MISMATCH", r"."),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup or "MISMATCH"
        value = match.group()
        if kind == "WS":
            continue
        if kind == "MISMATCH":
            raise QueryParseError(f"unexpected character {value!r} at position {match.start()}")
        tokens.append(_Token(kind, value, match.start()))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: Sequence[_Token], text: str):
        self._tokens = list(tokens)
        self._text = text
        self._position = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryParseError(f"unexpected end of input in {self._text!r}")
        self._position += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise QueryParseError(
                f"expected {kind} but found {token.value!r} at position {token.position}"
            )
        return token

    def _skip_newlines(self) -> None:
        while True:
            token = self._peek()
            if token is not None and token.kind in ("NEWLINE", "SEMI"):
                self._position += 1
            else:
                return

    def at_end(self) -> bool:
        self._skip_newlines()
        return self._peek() is None

    # -- grammar -----------------------------------------------------------

    def parse_term(self) -> Term:
        token = self._next()
        if token.kind == "STRING":
            return Constant(token.value[1:-1])
        if token.kind == "NUMBER":
            text = token.value
            return Constant(float(text) if "." in text else int(text))
        if token.kind == "NAME":
            if token.value[0].isupper():
                return Constant(token.value)
            return Variable(token.value)
        raise QueryParseError(
            f"expected a term but found {token.value!r} at position {token.position}"
        )

    def parse_atom(self) -> Atom:
        predicate = self._expect("NAME").value
        self._expect("LPAREN")
        args: List[Term] = []
        if self._peek() is not None and self._peek().kind != "RPAREN":
            args.append(self.parse_term())
            while self._peek() is not None and self._peek().kind == "COMMA":
                self._next()
                args.append(self.parse_term())
        self._expect("RPAREN")
        return Atom(predicate, tuple(args))

    def parse_rule(self) -> ConjunctiveQuery:
        self._skip_newlines()
        head_atom = self.parse_atom()
        for argument in head_atom.args:
            if not isinstance(argument, Variable):
                raise QueryParseError(
                    f"head arguments must be variables, found {argument} in {head_atom}"
                )
        self._expect("ARROW")
        body: List[Atom] = [self.parse_atom()]
        while self._peek() is not None and self._peek().kind == "COMMA":
            self._next()
            body.append(self.parse_atom())
        return ConjunctiveQuery(
            tuple(head_atom.args), tuple(body), name=head_atom.predicate
        )


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse a single conjunctive query from rule syntax."""
    parser = _Parser(_tokenize(text), text)
    query = parser.parse_rule()
    if not parser.at_end():
        token = parser._peek()
        raise QueryParseError(
            f"trailing input starting at {token.value!r} (position {token.position})"
        )
    return query


def parse_ucq(text: str, name: Optional[str] = None) -> UnionOfConjunctiveQueries:
    """Parse a UCQ given as several rules separated by newlines or ``;``."""
    parser = _Parser(_tokenize(text), text)
    disjuncts: List[ConjunctiveQuery] = []
    while not parser.at_end():
        disjuncts.append(parser.parse_rule())
    if not disjuncts:
        raise QueryParseError("no rules found in UCQ text")
    return UnionOfConjunctiveQueries(tuple(disjuncts), name or disjuncts[0].name)


def parse_query(text: str) -> Union[ConjunctiveQuery, UnionOfConjunctiveQueries]:
    """Parse either a CQ (single rule) or a UCQ (several rules)."""
    ucq = parse_ucq(text)
    if len(ucq) == 1:
        return ucq.disjuncts[0]
    return ucq
