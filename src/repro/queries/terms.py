"""Terms of the query language: constants and variables.

The query substrate is shared by three layers of the library:

* source queries in mapping assertions (over the relational schema ``S``);
* ontology queries (CQs / UCQs over concept and role names);
* the explanation framework, which manipulates queries as candidate
  explanations.

Terms are immutable and hashable so they can be freely used in sets and
as dictionary keys (substitutions are plain ``dict`` objects).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Union


@dataclass(frozen=True)
class Variable:
    """A query variable, identified by its name (e.g. ``x``, ``y0``)."""

    name: str

    def __post_init__(self):
        if not self.name:
            raise ValueError("variable name must be a non-empty string")

    def sort_key(self):
        """Total order across terms: variables sort after constants."""
        return (1, "", self.name)

    def __lt__(self, other):
        if isinstance(other, (Variable, Constant)):
            return self.sort_key() < other.sort_key()
        return NotImplemented

    def __str__(self):
        return self.name

    def __repr__(self):
        return f"Variable({self.name!r})"


@dataclass(frozen=True, eq=False)
class Constant:
    """A constant value (database constant or ontology individual).

    Values are stored as strings, integers, floats or booleans.  Two
    constants are equal iff their values are equal, so ``Constant(1)``
    and ``Constant("1")`` are distinct.  Booleans are additionally kept
    distinct from the numbers they coerce to under Python equality:
    without the type tag, ``Constant(True) == Constant(1)`` (``bool`` is
    an ``int`` subclass), which made a labeling over boolean features
    collide with one over 0/1-valued features — e.g. ``λ+ = {True}``,
    ``λ- = {1}`` raised a spurious both-labels conflict.
    """

    value: Union[str, int, float, bool]

    def _tag(self) -> bool:
        return isinstance(self.value, bool)

    def __eq__(self, other):
        if isinstance(other, Constant):
            return self._tag() == other._tag() and self.value == other.value
        return NotImplemented

    def __hash__(self):
        # Constants key every fact index, provenance map and substitution
        # on the scoring hot path; the value is immutable, so the hash is
        # computed once and remembered (same discipline as Border).
        try:
            return object.__getattribute__(self, "_cached_hash")
        except AttributeError:
            value = hash((self._tag(), self.value))
            object.__setattr__(self, "_cached_hash", value)
            return value

    def __getstate__(self):
        # String hashing is salted per process (PYTHONHASHSEED), so a
        # pickled cached hash would be stale in any other interpreter and
        # corrupt every dict keyed by the constant there; recompute lazily
        # on arrival instead.
        state = dict(self.__dict__)
        state.pop("_cached_hash", None)
        return state

    def sort_key(self):
        """Total order across terms, robust to mixed value types."""
        return (0, type(self.value).__name__, repr(self.value))

    def __lt__(self, other):
        if isinstance(other, (Variable, Constant)):
            return self.sort_key() < other.sort_key()
        return NotImplemented

    def __str__(self):
        return str(self.value)

    def __repr__(self):
        return f"Constant({self.value!r})"


Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """Return ``True`` if *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return ``True`` if *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def make_term(value) -> Term:
    """Coerce a raw Python value into a :class:`Term`.

    Strings starting with ``?`` become variables (``?x`` -> ``Variable('x')``);
    existing terms are returned unchanged; everything else becomes a
    :class:`Constant`.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value.startswith("?") and len(value) > 1:
        return Variable(value[1:])
    return Constant(value)


class VariableFactory:
    """Generates fresh variables that do not clash with a reserved set.

    Used by query rewriting and candidate generation, which repeatedly
    need "new" variables distinct from every variable already present in
    a query.
    """

    def __init__(self, reserved: Iterable[Variable] = (), prefix: str = "_v"):
        self._reserved = {v.name for v in reserved}
        self._prefix = prefix
        self._counter = itertools.count()

    def reserve(self, variables: Iterable[Variable]) -> None:
        """Mark *variables* as taken so they are never generated."""
        self._reserved.update(v.name for v in variables)

    def fresh(self) -> Variable:
        """Return a variable whose name has never been produced before."""
        while True:
            name = f"{self._prefix}{next(self._counter)}"
            if name not in self._reserved:
                self._reserved.add(name)
                return Variable(name)
