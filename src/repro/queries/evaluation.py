"""Evaluation of conjunctive queries over sets of ground facts.

Evaluation is homomorphism search: find every assignment of the query's
variables to constants such that each body atom maps to a fact.  The
implementation is a backtracking join with two standard optimisations:

* atoms are processed most-constrained-first (fewest candidate facts,
  preferring atoms that share variables with those already joined);
* facts are indexed by predicate once per fact set.

These CQs are small (explanation queries have a handful of atoms) and
the fact sets are either borders (tiny) or virtual ABoxes (thousands of
facts), so a tuned nested-loop join is entirely adequate and keeps the
code dependency-free and easy to audit.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import UnsafeQueryError
from .atoms import Atom, Substitution, facts_by_predicate
from .cq import ConjunctiveQuery
from .terms import Constant, Term, Variable, is_constant, is_variable

_EMPTY: FrozenSet[Atom] = frozenset()


class FactIndex:
    """A predicate- and constant-indexed, reusable view over ground facts.

    Two indexes are maintained: facts by predicate, and facts by
    ``(predicate, argument position, constant)``.  The second one makes
    lookups for partially bound atoms (the common case during
    ``J``-matching, where the answer tuple is already substituted into
    the query) proportional to the number of actually matching facts.

    The index is immutable once built: :meth:`candidates` hands out
    frozenset views of the internal buckets, so callers can never corrupt
    the index by mutating a returned set (and no defensive copy is paid
    on the hot path).
    """

    def __init__(self, facts: Iterable[Atom]):
        self._facts: FrozenSet[Atom] = frozenset(facts)
        self._by_predicate: Dict[str, FrozenSet[Atom]] = {
            predicate: frozenset(bucket)
            for predicate, bucket in facts_by_predicate(self._facts).items()
        }
        by_position: Dict[tuple, Set[Atom]] = {}
        for fact in self._facts:
            for position, argument in enumerate(fact.args):
                by_position.setdefault(
                    (fact.predicate, position, argument), set()
                ).add(fact)
        self._by_position: Dict[tuple, FrozenSet[Atom]] = {
            key: frozenset(bucket) for key, bucket in by_position.items()
        }

    @property
    def facts(self) -> FrozenSet[Atom]:
        return self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def candidates(self, atom: Atom) -> FrozenSet[Atom]:
        """Facts that could match *atom*, using the most selective index.

        The returned frozenset is a live view of the index bucket, not a
        copy; it is immutable by construction.
        """
        best = self._by_predicate.get(atom.predicate)
        if best is None:
            return _EMPTY
        for position, argument in enumerate(atom.args):
            if is_constant(argument):
                narrowed = self._by_position.get((atom.predicate, position, argument))
                if narrowed is None:
                    return _EMPTY
                if len(narrowed) < len(best):
                    best = narrowed
        return best

    def predicates(self) -> Set[str]:
        return set(self._by_predicate)


def _order_atoms(query: ConjunctiveQuery, index: FactIndex) -> List[Atom]:
    """Greedy join order: repeatedly pick the cheapest connected atom."""
    remaining = list(query.body)
    ordered: List[Atom] = []
    bound_vars: Set[Variable] = set()
    # Candidate counts are selection-independent, so compute them once up
    # front instead of re-probing the index on every greedy iteration.
    candidate_count = {atom: len(index.candidates(atom)) for atom in remaining}

    def cost(atom: Atom) -> Tuple[int, int]:
        connected = bool(atom.variables() & bound_vars) or not bound_vars
        return (0 if connected else 1, candidate_count[atom])

    while remaining:
        best = min(remaining, key=cost)
        remaining.remove(best)
        ordered.append(best)
        bound_vars |= best.variables()
    return ordered


def iter_homomorphisms(
    query: ConjunctiveQuery,
    facts: Iterable[Atom],
    index: Optional[FactIndex] = None,
) -> Iterator[Substitution]:
    """Yield every homomorphism from the query body into the fact set."""
    index = index if index is not None else FactIndex(facts)
    ordered = _order_atoms(query, index)

    def extend(position: int, substitution: Substitution) -> Iterator[Substitution]:
        if position == len(ordered):
            yield dict(substitution)
            return
        atom = ordered[position].apply(substitution)
        for fact in index.candidates(atom):
            local = atom.matches_fact(fact)
            if local is None:
                continue
            merged = dict(substitution)
            merged.update(local)
            yield from extend(position + 1, merged)

    yield from extend(0, {})


def evaluate(
    query: ConjunctiveQuery,
    facts: Iterable[Atom],
    index: Optional[FactIndex] = None,
) -> Set[Tuple[Constant, ...]]:
    """Evaluate a CQ, returning the set of answer tuples.

    For a boolean query the result is ``{()}`` if the query is satisfied
    and ``set()`` otherwise.  An unsafe query (a head variable that does
    not occur in the body, possible for queries constructed outside the
    validating :class:`~repro.queries.cq.ConjunctiveQuery` constructor)
    raises :class:`~repro.errors.UnsafeQueryError` instead of leaking a
    bare ``KeyError`` from the homomorphism lookup.
    """
    body_variables = query.variables()
    missing = [v for v in query.head if v not in body_variables]
    if missing:
        rendered = ", ".join(v.name for v in missing)
        raise UnsafeQueryError(
            f"cannot evaluate unsafe query {query}: head variables "
            f"{{{rendered}}} do not occur in the body"
        )
    answers: Set[Tuple[Constant, ...]] = set()
    for homomorphism in iter_homomorphisms(query, facts, index):
        answers.add(tuple(homomorphism[v] for v in query.head))
    return answers


def holds(
    query: ConjunctiveQuery,
    facts: Iterable[Atom],
    index: Optional[FactIndex] = None,
) -> bool:
    """``True`` iff the query has at least one answer over the facts."""
    for _ in iter_homomorphisms(query, facts, index):
        return True
    return False


def contains_tuple(
    query: ConjunctiveQuery,
    answer: Sequence[Constant],
    facts: Iterable[Atom],
    index: Optional[FactIndex] = None,
) -> bool:
    """Check whether a specific tuple is an answer to the query.

    This is the primitive the explanation framework uses constantly: the
    ``J``-matching test of Definition 3.4 asks whether the tuple ``t`` is
    a (certain) answer over the border.  Binding the answer variables
    before evaluation keeps the check cheap.
    """
    if len(answer) != query.arity:
        return False
    binding: Substitution = {}
    for variable, constant in zip(query.head, answer):
        bound = binding.get(variable)
        if bound is not None and bound != constant:
            return False
        binding[variable] = constant
    bound_body = tuple(atom.apply(binding) for atom in query.body)
    index = index if index is not None else FactIndex(facts)
    if not _unary_consistent(bound_body, index):
        return False
    # Re-order the bound body most-constrained-first; for large queries (e.g.
    # canonical product queries used by the separability check) the original
    # atom order can be pathological for backtracking.
    ordered_body = _order_bound_atoms(bound_body, index)

    def extend(position: int, substitution: Substitution) -> bool:
        if position == len(ordered_body):
            return True
        atom = ordered_body[position].apply(substitution)
        for fact in index.candidates(atom):
            local = atom.matches_fact(fact)
            if local is None:
                continue
            merged = dict(substitution)
            merged.update(local)
            if extend(position + 1, merged):
                return True
        return False

    return extend(0, {})


def _unary_consistent(atoms: Sequence[Atom], index: FactIndex) -> bool:
    """Cheap arc-consistency prefilter for boolean homomorphism checks.

    For every variable, intersect the values it could take according to
    each atom it occurs in (looking only at facts matching that atom's
    predicate and constants).  An empty candidate set proves that no
    homomorphism exists, which lets very large queries (e.g. canonical
    product queries) fail fast instead of backtracking exhaustively.
    """
    domains: Dict[Variable, Set] = {}
    for atom in atoms:
        facts = index.candidates(atom)
        if not facts:
            return False
        for position, argument in enumerate(atom.args):
            if not is_variable(argument):
                continue
            values = {fact.args[position] for fact in facts}
            known = domains.get(argument)
            if known is None:
                domains[argument] = values
            else:
                known &= values
                if not known:
                    return False
    return True


def _order_bound_atoms(atoms: Sequence[Atom], index: FactIndex) -> List[Atom]:
    """Greedy connected, most-constrained-first order for a bound atom list."""
    remaining = list(atoms)
    ordered: List[Atom] = []
    bound_vars: Set[Variable] = set()
    candidate_count = {atom: len(index.candidates(atom)) for atom in remaining}

    def cost(atom: Atom):
        connected = bool(atom.variables() & bound_vars) or not bound_vars or not atom.variables()
        return (0 if connected else 1, candidate_count[atom])

    while remaining:
        best = min(remaining, key=cost)
        remaining.remove(best)
        ordered.append(best)
        bound_vars |= best.variables()
    return ordered
