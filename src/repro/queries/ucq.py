"""Unions of conjunctive queries (UCQs).

A UCQ is a finite set of CQs of the same arity; its answers are the
union of the answers of its disjuncts.  UCQs appear in two places:

* as the target language of the DL-Lite perfect rewriting
  (:mod:`repro.obdm.rewriting`);
* as a richer explanation language ``L_O = UCQ`` — the paper's criterion
  δ6 ("are there few disjuncts used by the query?") only makes sense for
  UCQs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import QueryArityError
from .atoms import Atom
from .cq import ConjunctiveQuery
from .evaluation import FactIndex, contains_tuple, evaluate
from .terms import Constant


@dataclass(frozen=True)
class UnionOfConjunctiveQueries:
    """An immutable union of CQs of identical arity."""

    disjuncts: Tuple[ConjunctiveQuery, ...]
    name: str = "Q"

    def __post_init__(self):
        disjuncts = tuple(self.disjuncts)
        if not disjuncts:
            raise QueryArityError("a UCQ must have at least one disjunct")
        arities = {cq.arity for cq in disjuncts}
        if len(arities) != 1:
            raise QueryArityError(f"UCQ disjuncts have mixed arities: {sorted(arities)}")
        object.__setattr__(self, "disjuncts", disjuncts)

    # -- constructors ---------------------------------------------------

    @staticmethod
    def of(disjuncts: Iterable[ConjunctiveQuery], name: str = "Q") -> "UnionOfConjunctiveQueries":
        return UnionOfConjunctiveQueries(tuple(disjuncts), name)

    @staticmethod
    def single(query: ConjunctiveQuery) -> "UnionOfConjunctiveQueries":
        """Wrap a single CQ as a one-disjunct UCQ."""
        return UnionOfConjunctiveQueries((query,), query.name)

    # -- basic properties -------------------------------------------------

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    def disjunct_count(self) -> int:
        """Number of disjuncts (the quantity criterion δ6 measures)."""
        return len(self.disjuncts)

    def atom_count(self) -> int:
        """Total number of atoms across all disjuncts."""
        return sum(cq.atom_count() for cq in self.disjuncts)

    def predicates(self) -> Set[str]:
        result: Set[str] = set()
        for cq in self.disjuncts:
            result |= cq.predicates()
        return result

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    # -- operations ---------------------------------------------------------

    def deduplicated(self) -> "UnionOfConjunctiveQueries":
        """Remove syntactically equivalent disjuncts (canonical-form equality)."""
        seen = set()
        unique: List[ConjunctiveQuery] = []
        for cq in self.disjuncts:
            signature = cq.signature()
            if signature not in seen:
                seen.add(signature)
                unique.append(cq)
        return UnionOfConjunctiveQueries(tuple(unique), self.name)

    def minimized(self) -> "UnionOfConjunctiveQueries":
        """Remove disjuncts subsumed by another disjunct.

        Uses CQ containment: if ``cq_i ⊑ cq_j`` (every answer of ``cq_i``
        is an answer of ``cq_j``) then ``cq_i`` is redundant in the union.
        Import is local to avoid a module cycle.
        """
        from .containment import is_contained_in

        survivors: List[ConjunctiveQuery] = []
        deduplicated = self.deduplicated().disjuncts
        for i, candidate in enumerate(deduplicated):
            redundant = False
            for j, other in enumerate(deduplicated):
                if i == j:
                    continue
                if is_contained_in(candidate, other):
                    # Break ties deterministically: drop the later disjunct
                    # when the two are mutually contained (equivalent).
                    if is_contained_in(other, candidate) and i < j:
                        continue
                    redundant = True
                    break
            if not redundant:
                survivors.append(candidate)
        return UnionOfConjunctiveQueries(tuple(survivors), self.name)

    def union(self, other: "UnionOfConjunctiveQueries") -> "UnionOfConjunctiveQueries":
        """Union of two UCQs of the same arity."""
        return UnionOfConjunctiveQueries(self.disjuncts + other.disjuncts, self.name).deduplicated()

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, facts: Iterable[Atom], index: Optional[FactIndex] = None) -> Set[Tuple[Constant, ...]]:
        """Answers of the UCQ over a fact set (union of disjunct answers)."""
        index = index if index is not None else FactIndex(facts)
        answers: Set[Tuple[Constant, ...]] = set()
        for cq in self.disjuncts:
            answers |= evaluate(cq, (), index=index)
        return answers

    def contains_tuple(
        self,
        answer: Sequence[Constant],
        facts: Iterable[Atom],
        index: Optional[FactIndex] = None,
    ) -> bool:
        """``True`` iff some disjunct has *answer* among its answers."""
        index = index if index is not None else FactIndex(facts)
        return any(contains_tuple(cq, answer, (), index=index) for cq in self.disjuncts)

    def __str__(self):
        return " UNION ".join(str(cq) for cq in self.disjuncts)


UCQ = UnionOfConjunctiveQueries


def query_key(query) -> Tuple:
    """Hashable, renaming-invariant cache key for a CQ or UCQ.

    Used wherever queries key a cache or a dedup set (perfect-rewriting
    cache, J-match memo, candidate-pool deduplication), so that
    syntactically equivalent queries share one entry.
    """
    if isinstance(query, ConjunctiveQuery):
        return ("cq", query.signature())
    return ("ucq", tuple(sorted(cq.signature() for cq in query.disjuncts)))
