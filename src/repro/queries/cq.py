"""Conjunctive queries (CQs).

A conjunctive query is a select-project-join query written in rule form::

    q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, 'Rome')

The head lists the *distinguished* (answer) variables; the body is a
conjunction of atoms.  CQs are the query language the paper uses for
explanations (``L_O = CQ``), for mapping source queries, and as the
disjuncts of UCQs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set, Tuple

from ..errors import QueryArityError, UnsafeQueryError
from .atoms import Atom, Substitution, apply_substitution, atoms_constants, atoms_variables
from .terms import Constant, Term, Variable, VariableFactory, is_constant, is_variable, make_term


@dataclass(frozen=True)
class ConjunctiveQuery:
    """An immutable conjunctive query ``name(head) :- body``."""

    head: Tuple[Variable, ...]
    body: Tuple[Atom, ...]
    name: str = "q"

    def __post_init__(self):
        head = tuple(make_term(v) for v in self.head)
        if not all(is_variable(v) for v in head):
            raise QueryArityError("CQ head must contain only variables")
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(self.body))
        if not self.body:
            raise QueryArityError("CQ body must contain at least one atom")
        body_vars = atoms_variables(self.body)
        missing = [v for v in head if v not in body_vars]
        if missing:
            rendered = ", ".join(v.name for v in missing)
            raise UnsafeQueryError(
                f"head variables {{{rendered}}} do not occur in the body"
            )

    # -- constructors --------------------------------------------------

    @staticmethod
    def of(head: Sequence, body: Iterable[Atom], name: str = "q") -> "ConjunctiveQuery":
        """Convenience constructor accepting raw strings in the head."""
        return ConjunctiveQuery(tuple(make_term(v) for v in head), tuple(body), name)

    # -- basic properties ----------------------------------------------

    @property
    def arity(self) -> int:
        """Number of answer variables."""
        return len(self.head)

    def is_boolean(self) -> bool:
        """``True`` when the query has no answer variables."""
        return not self.head

    def variables(self) -> Set[Variable]:
        """All variables occurring in the query body."""
        return atoms_variables(self.body)

    def existential_variables(self) -> Set[Variable]:
        """Body variables that are not answer variables."""
        return self.variables() - set(self.head)

    def constants(self) -> Set[Constant]:
        """All constants occurring in the query body."""
        return atoms_constants(self.body)

    def predicates(self) -> Set[str]:
        """Predicate symbols used in the body."""
        return {atom.predicate for atom in self.body}

    def atom_count(self) -> int:
        """Number of body atoms (the quantity criterion δ5 measures)."""
        return len(self.body)

    # -- shared / unbound variable analysis (used by PerfectRef) --------

    def is_bound(self, term: Term) -> bool:
        """A term is *bound* if it is a constant, an answer variable, or a
        variable occurring more than once in the body."""
        if is_constant(term):
            return True
        if term in self.head:
            return True
        occurrences = 0
        for atom in self.body:
            occurrences += sum(1 for arg in atom.args if arg == term)
        return occurrences > 1

    # -- operations ------------------------------------------------------

    def apply(self, substitution: Substitution, name: Optional[str] = None) -> "ConjunctiveQuery":
        """Apply a substitution to the body (and consistently to the head).

        The substitution must not map an answer variable to a constant or
        merge two answer variables (that would change the query arity);
        if it does, a :class:`QueryArityError` is raised.
        """
        new_head = []
        for variable in self.head:
            image = substitution.get(variable, variable)
            if not is_variable(image):
                raise QueryArityError(
                    f"substitution maps answer variable {variable} to constant {image}"
                )
            new_head.append(image)
        if len(set(new_head)) != len(new_head):
            raise QueryArityError("substitution merges answer variables")
        return ConjunctiveQuery(
            tuple(new_head), apply_substitution(self.body, substitution), name or self.name
        )

    def with_body(self, body: Iterable[Atom], name: Optional[str] = None) -> "ConjunctiveQuery":
        """Return a copy of the query with a replaced body."""
        return ConjunctiveQuery(self.head, tuple(body), name or self.name)

    def with_name(self, name: str) -> "ConjunctiveQuery":
        """Return a copy of the query with a different name."""
        return ConjunctiveQuery(self.head, self.body, name)

    def add_atoms(self, atoms: Iterable[Atom]) -> "ConjunctiveQuery":
        """Return a copy of the query with extra body atoms appended."""
        return ConjunctiveQuery(self.head, self.body + tuple(atoms), self.name)

    def rename_apart(self, factory: Optional[VariableFactory] = None) -> "ConjunctiveQuery":
        """Rename every variable to a fresh one (used before unification)."""
        factory = factory or VariableFactory()
        mapping: Substitution = {v: factory.fresh() for v in sorted(self.variables())}
        return self.apply(mapping)

    def canonical_form(self) -> "ConjunctiveQuery":
        """Return a structurally canonical variant of the query.

        Variables are renamed to ``x0, x1, ...`` following the order of
        first appearance in the (sorted) head and body, and the body atoms
        are sorted.  Two CQs that are equal up to variable renaming and
        atom ordering have identical canonical forms, which gives a cheap
        syntactic equivalence check (semantic equivalence is handled by
        :mod:`repro.queries.containment`).
        """
        ordered_terms = list(self.head)
        for atom in sorted(self.body):
            ordered_terms.extend(atom.args)
        mapping: Substitution = {}
        for term in ordered_terms:
            if is_variable(term) and term not in mapping:
                mapping[term] = Variable(f"x{len(mapping)}")
        renamed_head = tuple(mapping[v] for v in self.head)
        renamed_body = tuple(sorted(apply_substitution(self.body, mapping)))
        return ConjunctiveQuery(renamed_head, renamed_body, self.name)

    def signature(self) -> Tuple:
        """Hashable canonical signature (ignores the query name).

        The signature is memoised on the instance: it keys every cache of
        the evaluation engine (rewritings, J-match results), so it is
        computed far more often than the query changes (never — CQs are
        immutable).
        """
        cached = self.__dict__.get("_signature")
        if cached is None:
            canonical = self.canonical_form()
            cached = (canonical.head, canonical.body)
            object.__setattr__(self, "_signature", cached)
        return cached

    def __str__(self):
        head = ", ".join(f"?{v.name}" for v in self.head)
        body = ", ".join(str(atom) for atom in self.body)
        return f"{self.name}({head}) :- {body}"


def freeze(query: ConjunctiveQuery, prefix: str = "_c_") -> Tuple[Tuple[Atom, ...], Tuple[Constant, ...]]:
    """Freeze a CQ into its canonical database.

    Every variable is replaced by a fresh constant; the function returns
    the resulting set of facts together with the frozen head tuple.  The
    canonical database is the standard tool for CQ containment: ``q1`` is
    contained in ``q2`` iff the frozen head of ``q1`` is an answer to
    ``q2`` over the canonical database of ``q1``.
    """
    mapping: Substitution = {}
    for variable in sorted(query.variables()):
        mapping[variable] = Constant(f"{prefix}{variable.name}")
    frozen_body = apply_substitution(query.body, mapping)
    frozen_head = tuple(mapping[v] for v in query.head)
    return frozen_body, frozen_head
