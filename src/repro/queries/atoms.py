"""Atoms: predicate symbols applied to terms.

An atom ``R(t1, ..., tn)`` is the basic building block of databases
(ground atoms, i.e. facts), of conjunctive-query bodies, and of mapping
assertions.  Atoms are immutable and hashable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Sequence, Set, Tuple

from ..errors import QueryArityError
from .terms import Constant, Term, Variable, is_constant, is_variable, make_term

Substitution = Dict[Variable, Term]


@dataclass(frozen=True)
class Atom:
    """An atom ``predicate(args)`` over constants and variables."""

    predicate: str
    args: Tuple[Term, ...]

    def __post_init__(self):
        if not self.predicate:
            raise ValueError("atom predicate must be a non-empty string")
        object.__setattr__(self, "args", tuple(make_term(a) for a in self.args))

    def __hash__(self):
        # Atoms key fact indexes, provenance maps and memo layers on the
        # scoring hot path; the fields are deeply frozen, so the hash is
        # computed once and remembered (same discipline as Border).
        try:
            return object.__getattribute__(self, "_cached_hash")
        except AttributeError:
            value = hash((self.predicate, self.args))
            object.__setattr__(self, "_cached_hash", value)
            return value

    def __getstate__(self):
        # Never ship the cached hash across a process boundary: string
        # hashing is salted per process, so it would be stale on arrival
        # (see Border.__getstate__ for the same rule).
        state = dict(self.__dict__)
        state.pop("_cached_hash", None)
        return state

    def sort_key(self):
        """Deterministic total order, robust to mixed term/value types."""
        return (self.predicate, len(self.args), tuple(a.sort_key() for a in self.args))

    def __lt__(self, other):
        if isinstance(other, Atom):
            return self.sort_key() < other.sort_key()
        return NotImplemented

    # -- constructors -------------------------------------------------

    @staticmethod
    def of(predicate: str, *args) -> "Atom":
        """Convenience constructor: ``Atom.of('R', 'a', '?x')``."""
        return Atom(predicate, tuple(make_term(a) for a in args))

    # -- basic properties ---------------------------------------------

    @property
    def arity(self) -> int:
        """Number of arguments of the atom."""
        return len(self.args)

    def is_ground(self) -> bool:
        """Return ``True`` when every argument is a constant (a fact)."""
        return all(is_constant(a) for a in self.args)

    def variables(self) -> Set[Variable]:
        """The set of variables occurring in the atom."""
        return {a for a in self.args if is_variable(a)}

    def constants(self) -> Set[Constant]:
        """The set of constants occurring in the atom."""
        return {a for a in self.args if is_constant(a)}

    # -- operations ----------------------------------------------------

    def apply(self, substitution: Substitution) -> "Atom":
        """Apply a substitution to the atom's arguments."""
        new_args = tuple(
            substitution.get(a, a) if is_variable(a) else a for a in self.args
        )
        return Atom(self.predicate, new_args)

    def rename_predicate(self, predicate: str) -> "Atom":
        """Return a copy of the atom with a different predicate symbol."""
        return Atom(predicate, self.args)

    def matches_fact(self, fact: "Atom") -> Optional[Substitution]:
        """Try to match this (possibly non-ground) atom against a ground fact.

        Returns a substitution mapping this atom's variables to the
        fact's constants, or ``None`` if the atom does not match.  A
        variable occurring twice must match equal constants.
        """
        if fact.predicate != self.predicate or fact.arity != self.arity:
            return None
        substitution: Substitution = {}
        for mine, theirs in zip(self.args, fact.args):
            if is_constant(mine):
                if mine != theirs:
                    return None
            else:
                bound = substitution.get(mine)
                if bound is None:
                    substitution[mine] = theirs
                elif bound != theirs:
                    return None
        return substitution

    def unify(self, other: "Atom") -> Optional[Substitution]:
        """Most general unifier of two atoms, or ``None`` if none exists.

        Used by the PerfectRef ``reduce`` step and by CQ containment.
        The returned substitution maps variables (from either atom) to
        terms, with constants never rewritten.
        """
        if self.predicate != other.predicate or self.arity != other.arity:
            return None
        substitution: Substitution = {}

        def resolve(term: Term) -> Term:
            while is_variable(term) and term in substitution:
                term = substitution[term]
            return term

        for left, right in zip(self.args, other.args):
            left, right = resolve(left), resolve(right)
            if left == right:
                continue
            if is_variable(left):
                substitution[left] = right
            elif is_variable(right):
                substitution[right] = left
            else:
                return None
        return substitution

    def __str__(self):
        rendered = ", ".join(
            str(a.value) if is_constant(a) else f"?{a.name}" for a in self.args
        )
        return f"{self.predicate}({rendered})"


def ground_atom(predicate: str, *values) -> Atom:
    """Build a ground atom (fact); raises if any value looks like a variable."""
    atom = Atom.of(predicate, *values)
    if not atom.is_ground():
        raise QueryArityError(f"fact {atom} contains variables")
    return atom


def atoms_variables(atoms: Iterable[Atom]) -> Set[Variable]:
    """Union of the variables of a collection of atoms."""
    result: Set[Variable] = set()
    for atom in atoms:
        result |= atom.variables()
    return result


def atoms_constants(atoms: Iterable[Atom]) -> Set[Constant]:
    """Union of the constants of a collection of atoms."""
    result: Set[Constant] = set()
    for atom in atoms:
        result |= atom.constants()
    return result


def apply_substitution(atoms: Sequence[Atom], substitution: Substitution) -> Tuple[Atom, ...]:
    """Apply *substitution* to every atom of a sequence."""
    return tuple(atom.apply(substitution) for atom in atoms)


def compose(first: Substitution, second: Substitution) -> Substitution:
    """Compose two substitutions: ``compose(f, s)(x) == s(f(x))``."""
    composed: Substitution = {}
    for variable, term in first.items():
        if is_variable(term):
            composed[variable] = second.get(term, term)
        else:
            composed[variable] = term
    for variable, term in second.items():
        if variable not in composed:
            composed[variable] = term
    return composed


def facts_by_predicate(facts: Iterable[Atom]) -> Dict[str, Set[Atom]]:
    """Index a collection of ground atoms by predicate symbol."""
    index: Dict[str, Set[Atom]] = {}
    for fact in facts:
        index.setdefault(fact.predicate, set()).add(fact)
    return index


def iter_constants_of_facts(facts: Iterable[Atom]) -> Iterator[Constant]:
    """Iterate over every constant occurring in a collection of facts."""
    for fact in facts:
        for arg in fact.args:
            if is_constant(arg):
                yield arg
