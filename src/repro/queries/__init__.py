"""Query-language substrate: terms, atoms, CQs, UCQs, evaluation, containment.

This package is the shared query machinery used by the relational data
layer, the OBDM layer (mappings, rewriting, certain answers) and the
explanation framework itself.
"""

from .atoms import (
    Atom,
    Substitution,
    apply_substitution,
    atoms_constants,
    atoms_variables,
    compose,
    facts_by_predicate,
    ground_atom,
)
from .containment import (
    are_equivalent,
    core_of,
    deduplicate_queries,
    is_contained_in,
    ucq_are_equivalent,
    ucq_is_contained_in,
)
from .cq import ConjunctiveQuery, freeze
from .evaluation import FactIndex, contains_tuple, evaluate, holds, iter_homomorphisms
from .parser import parse_cq, parse_query, parse_ucq
from .terms import Constant, Term, Variable, VariableFactory, is_constant, is_variable, make_term
from .ucq import UCQ, UnionOfConjunctiveQueries

__all__ = [
    "Atom",
    "Constant",
    "ConjunctiveQuery",
    "FactIndex",
    "Substitution",
    "Term",
    "UCQ",
    "UnionOfConjunctiveQueries",
    "Variable",
    "VariableFactory",
    "apply_substitution",
    "are_equivalent",
    "atoms_constants",
    "atoms_variables",
    "compose",
    "contains_tuple",
    "core_of",
    "deduplicate_queries",
    "evaluate",
    "facts_by_predicate",
    "freeze",
    "ground_atom",
    "holds",
    "is_constant",
    "is_contained_in",
    "is_variable",
    "iter_homomorphisms",
    "make_term",
    "parse_cq",
    "parse_query",
    "parse_ucq",
    "ucq_are_equivalent",
    "ucq_is_contained_in",
]
