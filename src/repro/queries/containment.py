"""Containment and equivalence of conjunctive queries and UCQs.

CQ containment is decided with the classical Chandra–Merlin canonical
database argument: ``q1 ⊑ q2`` iff the frozen head of ``q1`` is an
answer of ``q2`` evaluated over the canonical (frozen) database of
``q1``.  UCQ containment reduces to CQ containment disjunct-wise.

Containment is used by:

* :meth:`repro.queries.ucq.UnionOfConjunctiveQueries.minimized` to prune
  redundant disjuncts of perfect rewritings;
* the explanation search, to avoid scoring semantically duplicate
  candidate queries;
* core-computation (:func:`core_of`), which minimises a CQ by removing
  redundant atoms — the paper's criterion δ5 rewards small queries, so
  candidates are reduced to their cores before scoring.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..errors import QueryArityError, UnsafeQueryError
from .atoms import Atom
from .cq import ConjunctiveQuery, freeze
from .evaluation import FactIndex, contains_tuple
from .ucq import UnionOfConjunctiveQueries


def is_contained_in(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """``True`` iff every answer of *first* is an answer of *second* (q1 ⊑ q2)."""
    if first.arity != second.arity:
        return False
    frozen_body, frozen_head = freeze(first)
    index = FactIndex(frozen_body)
    return contains_tuple(second, frozen_head, (), index=index)


def are_equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """Semantic equivalence of two CQs (mutual containment)."""
    return is_contained_in(first, second) and is_contained_in(second, first)


def ucq_is_contained_in(
    first: UnionOfConjunctiveQueries, second: UnionOfConjunctiveQueries
) -> bool:
    """UCQ containment: every disjunct of *first* is contained in *second*.

    ``⋃ q_i ⊑ ⋃ p_j`` iff for every ``q_i`` there is some ``p_j`` with
    ``q_i ⊑ p_j`` (Sagiv–Yannakakis).
    """
    if first.arity != second.arity:
        return False
    return all(
        any(is_contained_in(disjunct, other) for other in second.disjuncts)
        for disjunct in first.disjuncts
    )


def ucq_are_equivalent(
    first: UnionOfConjunctiveQueries, second: UnionOfConjunctiveQueries
) -> bool:
    """Semantic equivalence of two UCQs."""
    return ucq_is_contained_in(first, second) and ucq_is_contained_in(second, first)


def core_of(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Return an equivalent CQ with a minimal number of body atoms.

    Greedily drops atoms whose removal leaves an equivalent query.  The
    result is a core of the query (unique up to isomorphism), which is
    the right object to measure with the paper's δ5 criterion — a query
    should not be penalised for containing redundant atoms.
    """
    body: List[Atom] = list(query.body)
    changed = True
    while changed and len(body) > 1:
        changed = False
        for index in range(len(body)):
            candidate_body = body[:index] + body[index + 1:]
            try:
                candidate = query.with_body(candidate_body)
            except (QueryArityError, UnsafeQueryError):
                # Dropping the atom would make the query unsafe (a head
                # variable loses its only occurrence); keep the atom.
                continue
            if are_equivalent(candidate, query):
                body = candidate_body
                changed = True
                break
    return query.with_body(body)


def deduplicate_queries(queries: Iterable[ConjunctiveQuery]) -> List[ConjunctiveQuery]:
    """Drop semantically equivalent duplicates, keeping first occurrences.

    A cheap syntactic signature pass runs first; full equivalence checks
    are only performed between queries that survive it and use the same
    predicate multiset (a necessary condition for equivalence of cores).
    """
    survivors: List[ConjunctiveQuery] = []
    seen_signatures = set()
    for query in queries:
        signature = query.signature()
        if signature in seen_signatures:
            continue
        seen_signatures.add(signature)
        if any(
            candidate.arity == query.arity and are_equivalent(candidate, query)
            for candidate in survivors
        ):
            continue
        survivors.append(query)
    return survivors
