"""Classifier substrate: from-scratch binary classifiers, datasets and metrics."""

from .base import (
    NEGATIVE_LABEL,
    POSITIVE_LABEL,
    BinaryClassifier,
    as_matrix,
    normalize_labels,
)
from .dataset import TabularDataset
from .decision_tree import DecisionTreeClassifier
from .knn import KNearestNeighbors
from .logistic_regression import LogisticRegression
from .metrics import (
    accuracy,
    balanced_accuracy,
    classification_report,
    confusion_matrix,
    f1_score,
    precision,
    recall,
)
from .naive_bayes import GaussianNaiveBayes
from .rule_classifier import DecisionStump, ThresholdCondition, ThresholdRuleClassifier

__all__ = [
    "BinaryClassifier",
    "DecisionStump",
    "DecisionTreeClassifier",
    "GaussianNaiveBayes",
    "KNearestNeighbors",
    "LogisticRegression",
    "NEGATIVE_LABEL",
    "POSITIVE_LABEL",
    "TabularDataset",
    "ThresholdCondition",
    "ThresholdRuleClassifier",
    "accuracy",
    "as_matrix",
    "balanced_accuracy",
    "classification_report",
    "confusion_matrix",
    "f1_score",
    "normalize_labels",
    "precision",
    "recall",
]
