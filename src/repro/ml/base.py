"""Common estimator interface of the classifier substrate.

The paper treats the classifier as a black box ("a classification task
carried out by any actor, e.g., a human or a machine"); the explanation
framework only consumes the resulting labeling ``λ``.  To reproduce the
intended usage (explain an actual trained model) without scikit-learn,
this package ships small, from-scratch classifiers sharing a minimal
``fit`` / ``predict`` / ``predict_proba`` interface.

Labels are always ``+1`` / ``-1`` internally (the paper's convention);
:func:`normalize_labels` converts arbitrary binary label encodings.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DatasetError, NotFittedError

POSITIVE_LABEL = 1
NEGATIVE_LABEL = -1


def as_matrix(features) -> np.ndarray:
    """Coerce a feature matrix to a 2-D float array."""
    matrix = np.asarray(features, dtype=float)
    if matrix.ndim == 1:
        matrix = matrix.reshape(-1, 1)
    if matrix.ndim != 2:
        raise DatasetError(f"feature matrix must be 2-D, got shape {matrix.shape}")
    return matrix


def normalize_labels(labels) -> np.ndarray:
    """Map a binary label vector onto ``{+1, -1}``.

    Accepted encodings: already ``{+1, -1}``; ``{0, 1}`` (1 is positive);
    ``{False, True}``; any two distinct values, where the larger one (by
    Python ordering of the sorted unique values) is treated as positive.
    """
    array = np.asarray(labels)
    if array.ndim != 1:
        raise DatasetError(f"label vector must be 1-D, got shape {array.shape}")
    if array.shape[0] == 0:
        return np.zeros(0, dtype=int)
    unique = sorted(set(array.tolist()))
    if len(unique) > 2:
        raise DatasetError(f"binary classification expects <= 2 classes, got {unique}")
    if len(unique) == 1:
        only = unique[0]
        value = POSITIVE_LABEL if only in (1, True, POSITIVE_LABEL) else NEGATIVE_LABEL
        return np.full(array.shape[0], value, dtype=int)
    negative, positive = unique
    result = np.where(array == positive, POSITIVE_LABEL, NEGATIVE_LABEL)
    return result.astype(int)


class BinaryClassifier:
    """Base class for the from-scratch binary classifiers."""

    def __init__(self):
        self._fitted = False
        self.n_features_: Optional[int] = None

    # -- template methods -----------------------------------------------------

    def fit(self, features, labels) -> "BinaryClassifier":
        """Fit the classifier; returns ``self`` for chaining."""
        matrix = as_matrix(features)
        if matrix.shape[0] == 0:
            raise DatasetError("cannot fit a classifier on an empty dataset")
        target = normalize_labels(labels)
        if matrix.shape[0] != target.shape[0]:
            raise DatasetError(
                f"{matrix.shape[0]} rows of features but {target.shape[0]} labels"
            )
        self.n_features_ = matrix.shape[1]
        self._fit(matrix, target)
        self._fitted = True
        return self

    def predict(self, features) -> np.ndarray:
        """Predict ``+1`` / ``-1`` labels."""
        self._check_fitted()
        matrix = self._check_features(features)
        return self._predict(matrix)

    def predict_proba(self, features) -> np.ndarray:
        """Probability of the positive class, one value per row."""
        self._check_fitted()
        matrix = self._check_features(features)
        return self._predict_proba(matrix)

    def decision_function(self, features) -> np.ndarray:
        """Signed score; positive means the positive class."""
        return self.predict_proba(features) - 0.5

    def score(self, features, labels) -> float:
        """Accuracy on a labelled sample."""
        predictions = self.predict(features)
        target = normalize_labels(labels)
        return float(np.mean(predictions == target))

    # -- hooks for subclasses ------------------------------------------------------

    def _fit(self, matrix: np.ndarray, target: np.ndarray) -> None:
        raise NotImplementedError

    def _predict(self, matrix: np.ndarray) -> np.ndarray:
        probabilities = self._predict_proba(matrix)
        return np.where(probabilities >= 0.5, POSITIVE_LABEL, NEGATIVE_LABEL)

    def _predict_proba(self, matrix: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- validation ------------------------------------------------------------------

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before prediction"
            )

    def _check_features(self, features) -> np.ndarray:
        matrix = as_matrix(features)
        if self.n_features_ is not None and matrix.shape[1] != self.n_features_:
            raise DatasetError(
                f"expected {self.n_features_} features, got {matrix.shape[1]}"
            )
        return matrix

    @property
    def is_fitted(self) -> bool:
        return self._fitted
