"""Classification metrics shared by the ML substrate and the experiments.

All metrics take ``+1`` / ``-1`` label vectors (other binary encodings
are normalised first) and return floats.  The experiment harness uses
them both to measure classifier quality and to compare the *fidelity*
of an explanation query against the classifier it explains.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..errors import DatasetError
from .base import NEGATIVE_LABEL, POSITIVE_LABEL, normalize_labels


def _pair(truth, predictions) -> Tuple[np.ndarray, np.ndarray]:
    truth = normalize_labels(truth)
    predictions = normalize_labels(predictions)
    if truth.shape[0] != predictions.shape[0]:
        raise DatasetError(
            f"{truth.shape[0]} true labels but {predictions.shape[0]} predictions"
        )
    return truth, predictions


def confusion_matrix(truth, predictions) -> Dict[str, int]:
    """Counts of true/false positives/negatives."""
    truth, predictions = _pair(truth, predictions)
    return {
        "tp": int(np.sum((truth == POSITIVE_LABEL) & (predictions == POSITIVE_LABEL))),
        "fp": int(np.sum((truth == NEGATIVE_LABEL) & (predictions == POSITIVE_LABEL))),
        "fn": int(np.sum((truth == POSITIVE_LABEL) & (predictions == NEGATIVE_LABEL))),
        "tn": int(np.sum((truth == NEGATIVE_LABEL) & (predictions == NEGATIVE_LABEL))),
    }


def accuracy(truth, predictions) -> float:
    truth, predictions = _pair(truth, predictions)
    if truth.shape[0] == 0:
        return 0.0
    return float(np.mean(truth == predictions))


def precision(truth, predictions) -> float:
    counts = confusion_matrix(truth, predictions)
    denominator = counts["tp"] + counts["fp"]
    return counts["tp"] / denominator if denominator else 0.0


def recall(truth, predictions) -> float:
    counts = confusion_matrix(truth, predictions)
    denominator = counts["tp"] + counts["fn"]
    return counts["tp"] / denominator if denominator else 0.0


def f1_score(truth, predictions) -> float:
    p, r = precision(truth, predictions), recall(truth, predictions)
    return 2 * p * r / (p + r) if (p + r) else 0.0


def balanced_accuracy(truth, predictions) -> float:
    counts = confusion_matrix(truth, predictions)
    positive_total = counts["tp"] + counts["fn"]
    negative_total = counts["tn"] + counts["fp"]
    sensitivity = counts["tp"] / positive_total if positive_total else 0.0
    specificity = counts["tn"] / negative_total if negative_total else 0.0
    return (sensitivity + specificity) / 2.0


def classification_report(truth, predictions) -> Dict[str, float]:
    """All metrics in one dictionary (used by the experiment tables)."""
    counts = confusion_matrix(truth, predictions)
    report: Dict[str, float] = {key: float(value) for key, value in counts.items()}
    report.update(
        {
            "accuracy": accuracy(truth, predictions),
            "precision": precision(truth, predictions),
            "recall": recall(truth, predictions),
            "f1": f1_score(truth, predictions),
            "balanced_accuracy": balanced_accuracy(truth, predictions),
        }
    )
    return report
