"""CART-style decision tree classifier.

Binary splits on numeric features chosen by Gini impurity reduction,
with the usual stopping criteria (max depth, minimum samples per split,
minimum impurity decrease).  The tree is deterministic: ties between
candidate splits are broken towards the lowest feature index and the
smallest threshold, so repeated runs produce identical trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import DatasetError
from .base import BinaryClassifier, NEGATIVE_LABEL, POSITIVE_LABEL


@dataclass
class _Node:
    """A tree node: either a leaf (probability) or an internal split."""

    probability: float
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(labels: np.ndarray) -> float:
    if labels.size == 0:
        return 0.0
    positive = float(np.mean(labels == POSITIVE_LABEL))
    return 2.0 * positive * (1.0 - positive)


class DecisionTreeClassifier(BinaryClassifier):
    """A small CART classifier on numeric features."""

    def __init__(
        self,
        max_depth: int = 5,
        min_samples_split: int = 2,
        min_impurity_decrease: float = 1e-7,
    ):
        super().__init__()
        if max_depth < 1:
            raise DatasetError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise DatasetError("min_samples_split must be >= 2")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_impurity_decrease = min_impurity_decrease
        self.root_: Optional[_Node] = None

    # -- fitting --------------------------------------------------------------

    def _fit(self, matrix: np.ndarray, target: np.ndarray) -> None:
        self.root_ = self._build(matrix, target, depth=0)

    def _build(self, matrix: np.ndarray, target: np.ndarray, depth: int) -> _Node:
        probability = float(np.mean(target == POSITIVE_LABEL)) if target.size else 0.0
        node = _Node(probability=probability)
        if (
            depth >= self.max_depth
            or target.size < self.min_samples_split
            or probability in (0.0, 1.0)
        ):
            return node
        split = self._best_split(matrix, target)
        if split is None:
            return node
        feature, threshold = split
        mask = matrix[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(matrix[mask], target[mask], depth + 1)
        node.right = self._build(matrix[~mask], target[~mask], depth + 1)
        return node

    def _best_split(self, matrix: np.ndarray, target: np.ndarray) -> Optional[Tuple[int, float]]:
        samples, features = matrix.shape
        parent_impurity = _gini(target)
        best: Optional[Tuple[int, float]] = None
        best_gain = self.min_impurity_decrease
        for feature in range(features):
            values = np.unique(matrix[:, feature])
            if values.size < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            for threshold in thresholds:
                mask = matrix[:, feature] <= threshold
                left, right = target[mask], target[~mask]
                if left.size == 0 or right.size == 0:
                    continue
                weighted = (
                    left.size * _gini(left) + right.size * _gini(right)
                ) / samples
                gain = parent_impurity - weighted
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best = (feature, float(threshold))
        return best

    # -- prediction ----------------------------------------------------------------

    def _predict_proba(self, matrix: np.ndarray) -> np.ndarray:
        probabilities = np.empty(matrix.shape[0])
        for index, row in enumerate(matrix):
            probabilities[index] = self._traverse(row)
        return probabilities

    def _traverse(self, row: np.ndarray) -> float:
        node = self.root_
        while node is not None and not node.is_leaf():
            if row[node.feature] <= node.threshold:
                node = node.left
            else:
                node = node.right
        return node.probability if node is not None else 0.5

    # -- introspection ----------------------------------------------------------------

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        self._check_fitted()

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf():
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def node_count(self) -> int:
        """Total number of nodes in the fitted tree."""
        self._check_fitted()

        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf():
                return 1
            return 1 + walk(node.left) + walk(node.right)

        return walk(self.root_)

    def rules(self, feature_names: Optional[List[str]] = None) -> List[str]:
        """Flatten the tree into human-readable decision rules."""
        self._check_fitted()
        names = feature_names or [f"f{i}" for i in range(self.n_features_ or 0)]
        collected: List[str] = []

        def walk(node: _Node, conditions: List[str]) -> None:
            if node.is_leaf():
                label = "+1" if node.probability >= 0.5 else "-1"
                clause = " AND ".join(conditions) if conditions else "TRUE"
                collected.append(f"IF {clause} THEN {label} (p+={node.probability:.2f})")
                return
            name = names[node.feature] if node.feature < len(names) else f"f{node.feature}"
            walk(node.left, conditions + [f"{name} <= {node.threshold:.4g}"])
            walk(node.right, conditions + [f"{name} > {node.threshold:.4g}"])

        walk(self.root_, [])
        return collected
