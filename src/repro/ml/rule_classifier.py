"""Threshold-rule classifiers.

Two tiny but useful classifiers:

* :class:`ThresholdRuleClassifier` — a hand-written conjunction of
  attribute thresholds; used in tests and benchmarks to construct
  classifiers whose *true* explanation is known, so the fidelity of the
  explanation framework can be measured against ground truth.
* :class:`DecisionStump` — a learned one-feature threshold (the best
  single split by Gini), the weakest interesting learned baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DatasetError
from .base import BinaryClassifier, NEGATIVE_LABEL, POSITIVE_LABEL


@dataclass(frozen=True)
class ThresholdCondition:
    """A single condition ``feature <op> value`` on a named feature."""

    feature: str
    operator: str
    value: float

    _OPERATORS = {
        "<=": lambda left, right: left <= right,
        "<": lambda left, right: left < right,
        ">=": lambda left, right: left >= right,
        ">": lambda left, right: left > right,
        "==": lambda left, right: left == right,
        "!=": lambda left, right: left != right,
    }

    def __post_init__(self):
        if self.operator not in self._OPERATORS:
            raise DatasetError(
                f"unknown operator {self.operator!r}; expected one of {sorted(self._OPERATORS)}"
            )

    def holds(self, value: float) -> bool:
        return bool(self._OPERATORS[self.operator](value, self.value))

    def __str__(self):
        return f"{self.feature} {self.operator} {self.value:g}"


class ThresholdRuleClassifier(BinaryClassifier):
    """Classifies positively iff every condition of the rule holds.

    The classifier needs the feature names to resolve conditions against
    columns, so :meth:`fit` only records them — there is nothing to learn.
    """

    def __init__(self, conditions: Sequence[ThresholdCondition], feature_names: Sequence[str]):
        super().__init__()
        if not conditions:
            raise DatasetError("a rule classifier needs at least one condition")
        self.conditions = tuple(conditions)
        self.feature_names = list(feature_names)
        missing = [c.feature for c in conditions if c.feature not in self.feature_names]
        if missing:
            raise DatasetError(f"conditions refer to unknown features: {missing}")
        self._positions: Dict[str, int] = {
            name: index for index, name in enumerate(self.feature_names)
        }

    @staticmethod
    def from_strings(rules: Sequence[str], feature_names: Sequence[str]) -> "ThresholdRuleClassifier":
        """Parse conditions like ``"income >= 40000"``."""
        conditions = []
        for rule in rules:
            for operator in ("<=", ">=", "==", "!=", "<", ">"):
                if operator in rule:
                    feature, value = rule.split(operator, 1)
                    conditions.append(
                        ThresholdCondition(feature.strip(), operator, float(value.strip()))
                    )
                    break
            else:
                raise DatasetError(f"cannot parse rule {rule!r}")
        return ThresholdRuleClassifier(conditions, feature_names)

    def _fit(self, matrix: np.ndarray, target: np.ndarray) -> None:
        if matrix.shape[1] != len(self.feature_names):
            raise DatasetError(
                f"rule classifier was declared with {len(self.feature_names)} features "
                f"but fitted on {matrix.shape[1]}"
            )

    def _predict_proba(self, matrix: np.ndarray) -> np.ndarray:
        results = np.ones(matrix.shape[0], dtype=bool)
        for condition in self.conditions:
            column = matrix[:, self._positions[condition.feature]]
            holds = np.array([condition.holds(value) for value in column])
            results &= holds
        return results.astype(float)

    def describe(self) -> str:
        return " AND ".join(str(condition) for condition in self.conditions)


class DecisionStump(BinaryClassifier):
    """The best single-feature threshold split (a depth-1 decision tree)."""

    def __init__(self):
        super().__init__()
        self.feature_: Optional[int] = None
        self.threshold_: float = 0.0
        self.left_positive_: bool = True

    def _fit(self, matrix: np.ndarray, target: np.ndarray) -> None:
        best_accuracy = -1.0
        samples = matrix.shape[0]
        for feature in range(matrix.shape[1]):
            values = np.unique(matrix[:, feature])
            if values.size < 2:
                thresholds = values
            else:
                thresholds = (values[:-1] + values[1:]) / 2.0
            for threshold in thresholds:
                mask = matrix[:, feature] <= threshold
                for left_positive in (True, False):
                    predictions = np.where(
                        mask,
                        POSITIVE_LABEL if left_positive else NEGATIVE_LABEL,
                        NEGATIVE_LABEL if left_positive else POSITIVE_LABEL,
                    )
                    correct = float(np.mean(predictions == target))
                    if correct > best_accuracy + 1e-12:
                        best_accuracy = correct
                        self.feature_ = feature
                        self.threshold_ = float(threshold)
                        self.left_positive_ = left_positive

    def _predict_proba(self, matrix: np.ndarray) -> np.ndarray:
        if self.feature_ is None:
            return np.full(matrix.shape[0], 0.5)
        mask = matrix[:, self.feature_] <= self.threshold_
        positive = mask if self.left_positive_ else ~mask
        return positive.astype(float)
