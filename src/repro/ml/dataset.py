"""Tabular datasets bridging the relational source and the classifiers.

A :class:`TabularDataset` is a named collection of rows with a key
column (the identifier of the classified object — the constant that
appears in the source database), feature columns and a binary label.
It converts to numpy matrices for the classifiers and to
:class:`~repro.core.labeling.Labeling` objects for the explanation
framework, which is exactly the bridge the paper's pipeline needs:
classifier predictions over database objects become ``λ+`` / ``λ-``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.labeling import Labeling
from ..errors import DatasetError
from .base import NEGATIVE_LABEL, POSITIVE_LABEL, normalize_labels

Value = Union[str, int, float, bool]


@dataclass
class TabularDataset:
    """Rows of (key, features, label) with named feature columns."""

    keys: List[Value]
    feature_names: List[str]
    features: List[List[float]]
    labels: List[int]
    name: str = "dataset"

    def __post_init__(self):
        if len(self.keys) != len(self.features) or len(self.keys) != len(self.labels):
            raise DatasetError(
                f"inconsistent dataset sizes: {len(self.keys)} keys, "
                f"{len(self.features)} feature rows, {len(self.labels)} labels"
            )
        for row in self.features:
            if len(row) != len(self.feature_names):
                raise DatasetError(
                    f"feature row of length {len(row)} does not match "
                    f"{len(self.feature_names)} feature names"
                )
        self.labels = list(normalize_labels(self.labels)) if self.labels else []

    # -- construction -----------------------------------------------------------

    @staticmethod
    def from_records(
        records: Sequence[Mapping[str, Value]],
        key_column: str,
        label_column: str,
        feature_columns: Optional[Sequence[str]] = None,
        name: str = "dataset",
    ) -> "TabularDataset":
        """Build a dataset from dictionaries (one per row)."""
        if not records:
            raise DatasetError("cannot build a dataset from zero records")
        if feature_columns is None:
            feature_columns = [
                column
                for column in records[0]
                if column not in (key_column, label_column)
            ]
        keys, rows, labels = [], [], []
        for record in records:
            if key_column not in record or label_column not in record:
                raise DatasetError(
                    f"record {record!r} is missing {key_column!r} or {label_column!r}"
                )
            keys.append(record[key_column])
            rows.append([float(record[column]) for column in feature_columns])
            labels.append(record[label_column])
        return TabularDataset(keys, list(feature_columns), rows, list(labels), name)

    # -- numpy views --------------------------------------------------------------

    @property
    def X(self) -> np.ndarray:
        return np.asarray(self.features, dtype=float)

    @property
    def y(self) -> np.ndarray:
        return np.asarray(self.labels, dtype=int)

    def __len__(self) -> int:
        return len(self.keys)

    # -- splitting -----------------------------------------------------------------

    def train_test_split(
        self, test_fraction: float = 0.3, seed: int = 0
    ) -> Tuple["TabularDataset", "TabularDataset"]:
        """Deterministic shuffled split into train and test subsets."""
        if not 0.0 < test_fraction < 1.0:
            raise DatasetError(f"test_fraction must be in (0, 1), got {test_fraction}")
        indices = np.arange(len(self))
        rng = np.random.default_rng(seed)
        rng.shuffle(indices)
        cut = max(1, int(round(len(self) * test_fraction)))
        if cut >= len(self):
            raise DatasetError("test split would consume the whole dataset")
        test_idx, train_idx = indices[:cut], indices[cut:]
        return self.subset(train_idx, f"{self.name}_train"), self.subset(
            test_idx, f"{self.name}_test"
        )

    def subset(self, indices: Iterable[int], name: Optional[str] = None) -> "TabularDataset":
        indices = list(int(i) for i in indices)
        return TabularDataset(
            [self.keys[i] for i in indices],
            list(self.feature_names),
            [self.features[i] for i in indices],
            [self.labels[i] for i in indices],
            name or self.name,
        )

    # -- bridges ---------------------------------------------------------------------

    def true_labeling(self, name: Optional[str] = None) -> Labeling:
        """The labeling induced by the dataset's ground-truth labels."""
        positives = [key for key, label in zip(self.keys, self.labels) if label == POSITIVE_LABEL]
        negatives = [key for key, label in zip(self.keys, self.labels) if label == NEGATIVE_LABEL]
        return Labeling(positives, negatives, name or f"{self.name}_truth")

    def predicted_labeling(self, classifier, name: Optional[str] = None) -> Labeling:
        """The labeling induced by a fitted classifier's predictions."""
        predictions = classifier.predict(self.X)
        positives = [key for key, label in zip(self.keys, predictions) if label == POSITIVE_LABEL]
        negatives = [key for key, label in zip(self.keys, predictions) if label == NEGATIVE_LABEL]
        return Labeling(positives, negatives, name or f"{self.name}_predicted")

    def class_balance(self) -> Dict[int, int]:
        """Counts of positive and negative rows."""
        balance = {POSITIVE_LABEL: 0, NEGATIVE_LABEL: 0}
        for label in self.labels:
            balance[label] += 1
        return balance

    def __str__(self):
        balance = self.class_balance()
        return (
            f"TabularDataset({self.name!r}: {len(self)} rows, "
            f"{len(self.feature_names)} features, "
            f"+{balance[POSITIVE_LABEL]}/-{balance[NEGATIVE_LABEL]})"
        )
