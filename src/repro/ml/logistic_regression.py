"""Logistic regression trained with batch gradient descent.

A linear model ``p(+1 | x) = sigmoid(w·x + b)`` with optional L2
regularisation and feature standardisation.  Deterministic (no random
initialisation), so experiments are exactly reproducible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import DatasetError
from .base import BinaryClassifier, NEGATIVE_LABEL, POSITIVE_LABEL


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clipping keeps exp() finite for extreme scores.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class LogisticRegression(BinaryClassifier):
    """L2-regularised logistic regression (full-batch gradient descent)."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        iterations: int = 500,
        l2: float = 0.0,
        standardize: bool = True,
        tolerance: float = 1e-7,
    ):
        super().__init__()
        if learning_rate <= 0:
            raise DatasetError("learning_rate must be positive")
        if iterations <= 0:
            raise DatasetError("iterations must be positive")
        if l2 < 0:
            raise DatasetError("l2 must be non-negative")
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.l2 = l2
        self.standardize = standardize
        self.tolerance = tolerance
        self.weights_: Optional[np.ndarray] = None
        self.bias_: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    # -- fitting ---------------------------------------------------------------

    def _standardize(self, matrix: np.ndarray, fit: bool) -> np.ndarray:
        if not self.standardize:
            return matrix
        if fit:
            self._mean = matrix.mean(axis=0)
            scale = matrix.std(axis=0)
            scale[scale == 0] = 1.0
            self._scale = scale
        return (matrix - self._mean) / self._scale

    def _fit(self, matrix: np.ndarray, target: np.ndarray) -> None:
        matrix = self._standardize(matrix, fit=True)
        # Work with {0, 1} targets for the cross-entropy gradient.
        binary = (target == POSITIVE_LABEL).astype(float)
        samples, features = matrix.shape
        weights = np.zeros(features)
        bias = 0.0
        previous_loss = np.inf
        for _ in range(self.iterations):
            scores = matrix @ weights + bias
            probabilities = _sigmoid(scores)
            error = probabilities - binary
            gradient_w = matrix.T @ error / samples + self.l2 * weights
            gradient_b = float(np.mean(error))
            weights -= self.learning_rate * gradient_w
            bias -= self.learning_rate * gradient_b
            loss = float(
                -np.mean(
                    binary * np.log(probabilities + 1e-12)
                    + (1 - binary) * np.log(1 - probabilities + 1e-12)
                )
                + 0.5 * self.l2 * float(weights @ weights)
            )
            if abs(previous_loss - loss) < self.tolerance:
                break
            previous_loss = loss
        self.weights_ = weights
        self.bias_ = bias

    # -- prediction --------------------------------------------------------------

    def _predict_proba(self, matrix: np.ndarray) -> np.ndarray:
        matrix = self._standardize(matrix, fit=False)
        return _sigmoid(matrix @ self.weights_ + self.bias_)

    def coefficients(self) -> np.ndarray:
        """Learned weights (in standardised feature space when enabled)."""
        self._check_fitted()
        return np.array(self.weights_)
