"""Gaussian naive Bayes classifier.

Each feature is modelled as a class-conditional Gaussian; features are
assumed independent given the class.  Variance smoothing avoids
degenerate zero-variance features (constant columns).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import DatasetError
from .base import BinaryClassifier, NEGATIVE_LABEL, POSITIVE_LABEL


class GaussianNaiveBayes(BinaryClassifier):
    """Naive Bayes with Gaussian class-conditional likelihoods."""

    def __init__(self, var_smoothing: float = 1e-9):
        super().__init__()
        if var_smoothing < 0:
            raise DatasetError("var_smoothing must be non-negative")
        self.var_smoothing = var_smoothing
        self.prior_positive_: float = 0.5
        self._mean: Optional[np.ndarray] = None  # shape (2, n_features)
        self._variance: Optional[np.ndarray] = None

    def _fit(self, matrix: np.ndarray, target: np.ndarray) -> None:
        positive_mask = target == POSITIVE_LABEL
        negative_mask = ~positive_mask
        if not positive_mask.any() or not negative_mask.any():
            # Degenerate single-class training set: predict the prior.
            self.prior_positive_ = float(positive_mask.mean())
            self._mean = np.zeros((2, matrix.shape[1]))
            self._variance = np.ones((2, matrix.shape[1]))
            return
        self.prior_positive_ = float(positive_mask.mean())
        means = np.vstack(
            [matrix[negative_mask].mean(axis=0), matrix[positive_mask].mean(axis=0)]
        )
        variances = np.vstack(
            [matrix[negative_mask].var(axis=0), matrix[positive_mask].var(axis=0)]
        )
        smoothing = self.var_smoothing * float(matrix.var(axis=0).max() or 1.0)
        variances = variances + max(smoothing, 1e-12)
        self._mean = means
        self._variance = variances

    def _log_likelihood(self, matrix: np.ndarray, class_index: int) -> np.ndarray:
        mean = self._mean[class_index]
        variance = self._variance[class_index]
        return np.sum(
            -0.5 * np.log(2.0 * np.pi * variance)
            - ((matrix - mean) ** 2) / (2.0 * variance),
            axis=1,
        )

    def _predict_proba(self, matrix: np.ndarray) -> np.ndarray:
        if self._mean is None:
            return np.full(matrix.shape[0], self.prior_positive_)
        prior_positive = np.clip(self.prior_positive_, 1e-12, 1 - 1e-12)
        log_positive = self._log_likelihood(matrix, 1) + np.log(prior_positive)
        log_negative = self._log_likelihood(matrix, 0) + np.log(1 - prior_positive)
        # Numerically stable normalisation.
        stacked = np.vstack([log_negative, log_positive])
        maximum = stacked.max(axis=0)
        exponentials = np.exp(stacked - maximum)
        return exponentials[1] / exponentials.sum(axis=0)
