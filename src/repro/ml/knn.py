"""k-nearest-neighbours classifier.

Brute-force Euclidean neighbours with optional feature standardisation;
adequate for the dataset sizes of the benchmark workloads (hundreds to a
few thousand rows) and entirely deterministic.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import DatasetError
from .base import BinaryClassifier, NEGATIVE_LABEL, POSITIVE_LABEL


class KNearestNeighbors(BinaryClassifier):
    """Majority vote among the k nearest training rows."""

    def __init__(self, k: int = 5, standardize: bool = True):
        super().__init__()
        if k < 1:
            raise DatasetError("k must be >= 1")
        self.k = k
        self.standardize = standardize
        self._train: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def _standardize(self, matrix: np.ndarray, fit: bool) -> np.ndarray:
        if not self.standardize:
            return matrix
        if fit:
            self._mean = matrix.mean(axis=0)
            scale = matrix.std(axis=0)
            scale[scale == 0] = 1.0
            self._scale = scale
        return (matrix - self._mean) / self._scale

    def _fit(self, matrix: np.ndarray, target: np.ndarray) -> None:
        self._train = self._standardize(matrix, fit=True)
        self._labels = target

    def _predict_proba(self, matrix: np.ndarray) -> np.ndarray:
        matrix = self._standardize(matrix, fit=False)
        k = min(self.k, self._train.shape[0])
        probabilities = np.empty(matrix.shape[0])
        for index, row in enumerate(matrix):
            distances = np.sqrt(((self._train - row) ** 2).sum(axis=1))
            # argsort is stable, so ties are resolved deterministically.
            nearest = np.argsort(distances, kind="stable")[:k]
            votes = self._labels[nearest]
            probabilities[index] = float(np.mean(votes == POSITIVE_LABEL))
        return probabilities
