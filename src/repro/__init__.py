"""repro — a full reproduction of "Ontology-based explanation of classifiers".

The library implements the framework of Croce, Cima, Lenzerini and
Catarci (EDBT/ICDT 2020 workshops) for explaining binary classifiers in
terms of queries over a domain ontology, on top of a complete
Ontology-Based Data Management (OBDM) stack built from scratch:

* :mod:`repro.queries`    — conjunctive queries, UCQs, evaluation, containment;
* :mod:`repro.sql`        — the relational data layer (relations, algebra, mini-SQL);
* :mod:`repro.dl`         — DL-Lite_R ontologies and structural reasoning;
* :mod:`repro.obdm`       — mappings, specifications, systems, certain answers;
* :mod:`repro.ml`         — from-scratch classifiers producing the labelings λ;
* :mod:`repro.core`       — borders, J-matching, criteria, Z-scores, explainer;
* :mod:`repro.engine`     — shared evaluation cache + concurrent batch scoring;
* :mod:`repro.service`    — long-lived explanation serving (warm cache, eviction,
  persistence, incremental verdict maintenance);
* :mod:`repro.ontologies` — ready-made domain ontologies (university, loans, ...);
* :mod:`repro.workloads`  — deterministic synthetic data generators;
* :mod:`repro.experiments`— the harness reproducing the paper's numbers.

Quickstart::

    from repro import OntologyExplainer, Labeling
    from repro.ontologies.university import build_university_system

    system = build_university_system()
    labeling = Labeling(positives=["A10", "B80", "C12", "D50"], negatives=["E25"])
    report = OntologyExplainer(system).explain(labeling, radius=1)
    print(report.render())
"""

from .core import (
    Labeling,
    MatchEvaluator,
    MatchProfile,
    OntologyExplainer,
    WeightedAverage,
    example_3_8_expression,
)
from .dl import Ontology, parse_ontology
from .engine import BatchExplainer, CacheLimits, EvaluationCache
from .obdm import (
    Mapping,
    MappingAssertion,
    OBDMSpecification,
    OBDMSystem,
    SourceDatabase,
    SourceSchema,
)
from .queries import ConjunctiveQuery, UnionOfConjunctiveQueries, parse_cq, parse_ucq
from .service import ExplanationService

__version__ = "1.0.0"

__all__ = [
    "BatchExplainer",
    "CacheLimits",
    "ConjunctiveQuery",
    "EvaluationCache",
    "ExplanationService",
    "Labeling",
    "Mapping",
    "MappingAssertion",
    "MatchEvaluator",
    "MatchProfile",
    "OBDMSpecification",
    "OBDMSystem",
    "Ontology",
    "OntologyExplainer",
    "SourceDatabase",
    "SourceSchema",
    "UnionOfConjunctiveQueries",
    "WeightedAverage",
    "example_3_8_expression",
    "parse_cq",
    "parse_ontology",
    "parse_ucq",
    "__version__",
]
