"""Concurrent batch scoring of candidate pools and labelings.

The sequential path scores one (labeling, candidate) pair at a time.
Batch workloads — "explain these five classifiers over the same system"
or "score this pool of 200 candidates" — have no data dependencies
between pairs, so :class:`BatchExplainer` fans them out over a
:class:`concurrent.futures.ThreadPoolExecutor`.  Correctness rests on
two invariants:

* **shared state is memo-only** — worker threads only touch the
  specification's :class:`~repro.engine.cache.EvaluationCache`, whose
  entries are content-addressed and idempotent to recompute, so races
  can at worst duplicate work, never corrupt a result;
* **deterministic ordering** — results are written into slots indexed
  by (labeling position, candidate position) and ranked with the exact
  tie-breaking comparator of the sequential search
  (:meth:`BestDescriptionSearch._sort_key`), so the batch output is
  query-for-query identical to a sequential loop regardless of thread
  scheduling.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Iterable, List, Optional, Sequence, Union

from ..core.best_describe import BestDescriptionSearch, ScoredQuery
from ..core.border import BorderComputer
from ..core.candidates import CandidateConfig
from ..core.criteria import DEFAULT_REGISTRY, DELTA_1, DELTA_4, DELTA_5, Criterion, CriteriaRegistry
from ..core.labeling import Labeling
from ..core.refinement import RefinementConfig
from ..core.report import ExplanationReport, build_report
from ..core.scoring import ScoringExpression, describe_expression, example_3_8_expression
from ..obdm.certain_answers import OntologyQuery
from ..obdm.system import OBDMSystem


def _default_workers() -> int:
    return min(8, os.cpu_count() or 1)


class BatchExplainer:
    """Scores many (labeling, candidate) pairs concurrently over one Σ."""

    def __init__(
        self,
        system: OBDMSystem,
        radius: int = 1,
        criteria: Sequence[Union[str, Criterion]] = (DELTA_1, DELTA_4, DELTA_5),
        expression: Optional[ScoringExpression] = None,
        registry: CriteriaRegistry = DEFAULT_REGISTRY,
        border_computer: Optional[BorderComputer] = None,
        max_workers: Optional[int] = None,
    ):
        self.system = system
        self.radius = radius
        self.criteria = criteria
        self.expression = expression or example_3_8_expression()
        self.registry = registry
        self.border_computer = border_computer or BorderComputer(system.database)
        self.max_workers = max_workers if max_workers is not None else _default_workers()

    # -- building blocks --------------------------------------------------

    def search_for(self, labeling: Labeling) -> BestDescriptionSearch:
        """A sequential search bound to one labeling, sharing our borders."""
        return BestDescriptionSearch(
            self.system,
            labeling,
            self.radius,
            self.criteria,
            self.expression,
            self.registry,
            self.border_computer,
        )

    def _score_pools(
        self,
        searches: Sequence[BestDescriptionSearch],
        pools: Sequence[Sequence[OntologyQuery]],
    ) -> List[List[ScoredQuery]]:
        """Score every (labeling, candidate) pair, preserving pool order."""
        results: List[List[Optional[ScoredQuery]]] = [[None] * len(pool) for pool in pools]
        tasks = [
            (labeling_index, candidate_index, query)
            for labeling_index, pool in enumerate(pools)
            for candidate_index, query in enumerate(pool)
        ]
        if self.max_workers <= 1 or len(tasks) <= 1:
            for labeling_index, candidate_index, query in tasks:
                results[labeling_index][candidate_index] = searches[labeling_index].scorer.score(query)
            return results  # type: ignore[return-value]
        with ThreadPoolExecutor(max_workers=self.max_workers) as executor:
            futures = {
                executor.submit(searches[labeling_index].scorer.score, query): (
                    labeling_index,
                    candidate_index,
                )
                for labeling_index, candidate_index, query in tasks
            }
            for future in as_completed(futures):
                labeling_index, candidate_index = futures[future]
                results[labeling_index][candidate_index] = future.result()
        return results  # type: ignore[return-value]

    # -- scoring API ------------------------------------------------------

    def score_pool(self, labeling: Labeling, candidates: Sequence[OntologyQuery]) -> List[ScoredQuery]:
        """Scores in candidate order (no ranking applied)."""
        return self._score_pools([self.search_for(labeling)], [list(candidates)])[0]

    def rank_pool(self, labeling: Labeling, candidates: Sequence[OntologyQuery]) -> List[ScoredQuery]:
        """Concurrent equivalent of :meth:`BestDescriptionSearch.rank`."""
        scored = self.score_pool(labeling, candidates)
        return sorted(scored, key=BestDescriptionSearch._sort_key)

    # -- the batch entry point --------------------------------------------

    def explain_batch(
        self,
        labelings: Sequence[Labeling],
        candidates: Optional[Sequence[OntologyQuery]] = None,
        strategy: str = "enumerate",
        candidate_config: Optional[CandidateConfig] = None,
        refinement_config: Optional[RefinementConfig] = None,
        top_k: Optional[int] = 10,
    ) -> List[ExplanationReport]:
        """One report per labeling, identical to sequential ``explain``.

        When *candidates* is given the same pool is scored for every
        labeling; otherwise each labeling builds its own pool with the
        chosen strategy, exactly as the sequential search would.
        """
        labelings = list(labelings)
        searches = [self.search_for(labeling) for labeling in labelings]
        pools: List[List[OntologyQuery]] = []
        explicit_counts: List[Optional[int]] = []
        for search in searches:
            if candidates is not None:
                pool = list(candidates)
                explicit_counts.append(len(pool))
            else:
                pool = search.candidate_pool(strategy, candidate_config, refinement_config)
                explicit_counts.append(None)
            pools.append(pool)

        scored_pools = self._score_pools(searches, pools)

        reports: List[ExplanationReport] = []
        for labeling, search, scored, explicit_count in zip(
            labelings, searches, scored_pools, explicit_counts
        ):
            ranking = sorted(scored, key=BestDescriptionSearch._sort_key)
            candidate_count = explicit_count if explicit_count is not None else len(ranking)
            criteria_keys = [criterion.key for criterion in search.scorer.criteria]
            reports.append(
                build_report(
                    labeling,
                    self.radius,
                    criteria_keys,
                    describe_expression(self.expression),
                    ranking,
                    candidate_count,
                    top_k=top_k,
                )
            )
        return reports
