"""Concurrent batch scoring of candidate pools and labelings.

The sequential path scores one (labeling, candidate) pair at a time.
Batch workloads — "explain these five classifiers over the same system"
or "score this pool of 200 candidates" — have no data dependencies
between pairs, so :class:`BatchExplainer` fans them out over an
executor.  Two executor modes are available:

* ``executor="thread"`` (default) — a
  :class:`concurrent.futures.ThreadPoolExecutor` scores individual
  (labeling, candidate) pairs; all workers share the specification's
  evaluation cache in-process;
* ``executor="process"`` — a
  :class:`concurrent.futures.ProcessPoolExecutor` shards each candidate
  pool into contiguous chunks and ships (specification, database,
  labeling, chunk) payloads to worker processes.  Specifications pickle
  cleanly (locks are dropped and rebuilt; memo entries are
  content-addressed values, so warm entries stay valid in the worker),
  which is what makes the shards self-contained.  Process sharding
  requires picklable criteria/expressions — the paper's δ criteria and
  the ready-made expressions all are; lambda-backed ones (e.g.
  ``PRECISION``) are rejected with a clear error.

Correctness rests on two invariants:

* **shared state is memo-only** — worker threads only touch the
  specification's :class:`~repro.engine.cache.EvaluationCache`, whose
  entries are content-addressed and idempotent to recompute, so races
  can at worst duplicate work, never corrupt a result (worker
  *processes* share nothing at all: each shard scores against its own
  copy of the specification);
* **deterministic ordering** — results are written into slots indexed
  by (labeling position, candidate position) — shard results are
  reassembled in shard order, which is pool order — and ranked with the
  exact tie-breaking comparator of the sequential search
  (:meth:`BestDescriptionSearch._sort_key`), so batch output is
  query-for-query identical to a sequential loop regardless of thread
  or process scheduling.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..core.best_describe import BestDescriptionSearch, ScoredQuery
from ..core.border import BorderComputer
from ..core.candidates import CandidateConfig
from ..core.criteria import DEFAULT_REGISTRY, DELTA_1, DELTA_4, DELTA_5, Criterion, CriteriaRegistry
from ..core.labeling import Labeling
from ..core.refinement import RefinementConfig
from ..core.report import ExplanationReport, build_report
from ..core.scoring import ScoringExpression, describe_expression, example_3_8_expression
from ..errors import ExplanationError
from ..obdm.certain_answers import OntologyQuery
from ..obdm.system import OBDMSystem

EXECUTORS = ("thread", "process")


def _default_workers() -> int:
    return min(8, os.cpu_count() or 1)


def _shard_slices(pool_size: int, shard_count: int) -> List[Tuple[int, int]]:
    """Contiguous, near-even (start, stop) slices covering the pool."""
    shard_count = max(1, min(shard_count, pool_size))
    base, remainder = divmod(pool_size, shard_count)
    slices: List[Tuple[int, int]] = []
    start = 0
    for index in range(shard_count):
        stop = start + base + (1 if index < remainder else 0)
        slices.append((start, stop))
        start = stop
    return slices


def _score_shard(shared: bytes, shard: bytes) -> Tuple[List[ScoredQuery], dict]:
    """Worker-process entry point: score one candidate shard in isolation.

    *shared* is one pickle of (specification, database, border computer)
    — identical for every shard, serialized once by the parent; *shard*
    carries the per-task (labeling, candidates, radius, criteria,
    expression).  The worker rebuilds the search exactly as the
    sequential path would and returns the scores in candidate order.
    Bitset-backed profiles reduce to plain
    :class:`~repro.core.matching.MatchProfile` objects on the way back,
    so the parent sees the same values either way.

    Alongside the scores, the worker returns the *delta* of its cache
    counters over the shard (the rebuilt cache starts from the parent's
    pickled counts, so the raw values would double-count).  The parent
    merges the deltas into its own stats, keeping hit/miss/eviction
    numbers truthful under sharding instead of silently dropping every
    worker-side count with the discarded worker caches.
    """
    specification, database, border_computer = pickle.loads(shared)
    labeling, candidates, radius, criteria, expression = pickle.loads(shard)
    system = OBDMSystem(specification, database, name="shard")
    stats = specification.engine.cache.stats
    baseline = stats.as_dict()
    search = BestDescriptionSearch(
        system, labeling, radius, criteria, expression, DEFAULT_REGISTRY, border_computer
    )
    search.scorer.prepare(candidates)
    scores = [search.scorer.score(query) for query in candidates]
    return scores, stats.delta_since(baseline)


class BatchExplainer:
    """Scores many (labeling, candidate) pairs concurrently over one Σ."""

    def __init__(
        self,
        system: OBDMSystem,
        radius: int = 1,
        criteria: Sequence[Union[str, Criterion]] = (DELTA_1, DELTA_4, DELTA_5),
        expression: Optional[ScoringExpression] = None,
        registry: CriteriaRegistry = DEFAULT_REGISTRY,
        border_computer: Optional[BorderComputer] = None,
        max_workers: Optional[int] = None,
        executor: str = "thread",
    ):
        if executor not in EXECUTORS:
            raise ExplanationError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.system = system
        self.radius = radius
        self.criteria = criteria
        self.expression = expression or example_3_8_expression()
        self.registry = registry
        self.border_computer = border_computer or BorderComputer(system.database)
        self.max_workers = max_workers if max_workers is not None else _default_workers()
        self.executor = executor

    # -- building blocks --------------------------------------------------

    def search_for(self, labeling: Labeling) -> BestDescriptionSearch:
        """A sequential search bound to one labeling, sharing our borders."""
        return BestDescriptionSearch(
            self.system,
            labeling,
            self.radius,
            self.criteria,
            self.expression,
            self.registry,
            self.border_computer,
        )

    def _score_pools(
        self,
        searches: Sequence[BestDescriptionSearch],
        pools: Sequence[Sequence[OntologyQuery]],
    ) -> List[List[ScoredQuery]]:
        """Score every (labeling, candidate) pair, preserving pool order."""
        if self.executor == "process":
            return self._score_pools_sharded(searches, pools)
        self._prepare_pools(searches, pools)
        results: List[List[Optional[ScoredQuery]]] = [[None] * len(pool) for pool in pools]
        tasks = [
            (labeling_index, candidate_index, query)
            for labeling_index, pool in enumerate(pools)
            for candidate_index, query in enumerate(pool)
        ]
        if self.max_workers <= 1 or len(tasks) <= 1:
            for labeling_index, candidate_index, query in tasks:
                results[labeling_index][candidate_index] = searches[labeling_index].scorer.score(query)
            return results  # type: ignore[return-value]
        with ThreadPoolExecutor(max_workers=self.max_workers) as executor:
            futures = {
                executor.submit(searches[labeling_index].scorer.score, query): (
                    labeling_index,
                    candidate_index,
                )
                for labeling_index, candidate_index, query in tasks
            }
            for future in as_completed(futures):
                labeling_index, candidate_index = futures[future]
                results[labeling_index][candidate_index] = future.result()
        return results  # type: ignore[return-value]

    def _prepare_pools(
        self,
        searches: Sequence[BestDescriptionSearch],
        pools: Sequence[Sequence[OntologyQuery]],
    ) -> None:
        """Build every labeling's verdict matrix up front (thread path).

        Worker threads then only do criteria arithmetic, instead of
        racing on the lazy matrix init and duplicating the one-pass row
        build.  All searches share one system, so the whole batch goes
        through :meth:`VerdictMatrix.build_batch` — one bit-sliced
        kernel dispatch over the union of the labelings' borders when
        ``engine.kernel.batch`` is on, per-labeling builds otherwise.
        A no-op per scorer on the legacy (non-matrix) path.
        """
        matrices = []
        matrix_pools: List[Sequence[OntologyQuery]] = []
        for search, pool in zip(searches, pools):
            if search.scorer.uses_verdict_matrix:
                matrices.append(search.scorer.verdict_matrix())
                matrix_pools.append(pool)
        if matrices:
            from .verdicts import VerdictMatrix

            VerdictMatrix.build_batch(matrices, matrix_pools)

    def _pickle_for_sharding(self, value, what: str) -> bytes:
        try:
            return pickle.dumps(value)
        except Exception as error:
            raise ExplanationError(
                f"process-sharded scoring needs picklable {what}; the paper's "
                "δ criteria, the ready-made expressions and every built-in "
                f"specification qualify, but this configuration does not: {error}"
            ) from error

    def _score_pools_sharded(
        self,
        searches: Sequence[BestDescriptionSearch],
        pools: Sequence[Sequence[OntologyQuery]],
    ) -> List[List[ScoredQuery]]:
        """Shard each pool across worker processes; reassemble in order."""
        results: List[List[Optional[ScoredQuery]]] = [[None] * len(pool) for pool in pools]
        # The system state is identical for every shard: serialize it once,
        # not once per (labeling, shard) task.  The border computer rides
        # along so workers honour a custom computer exactly like the
        # sequential and thread paths do (and inherit its warm borders).
        shared = self._pickle_for_sharding(
            (self.system.specification, self.system.database, self.border_computer),
            "specifications",
        )
        criteria = self.registry.resolve(self.criteria)
        tasks: List[Tuple[int, int, bytes]] = []
        for labeling_index, (search, pool) in enumerate(zip(searches, pools)):
            for start, stop in _shard_slices(len(pool), self.max_workers):
                tasks.append(
                    (
                        labeling_index,
                        start,
                        self._pickle_for_sharding(
                            (
                                search.labeling,
                                pool[start:stop],
                                self.radius,
                                criteria,
                                self.expression,
                            ),
                            "criteria and expressions",
                        ),
                    )
                )
        if not tasks:
            return results  # type: ignore[return-value]
        parent_stats = self.system.specification.engine.cache.stats
        if self.max_workers <= 1:
            # One worker would serialize anyway; score in-process (the
            # payloads are still built so pickling problems never hide).
            for labeling_index, start, payload in tasks:
                scored, stats_delta = _score_shard(shared, payload)
                parent_stats.merge(stats_delta)
                results[labeling_index][start : start + len(scored)] = scored
            return results  # type: ignore[return-value]
        with ProcessPoolExecutor(max_workers=self.max_workers) as executor:
            futures = {
                executor.submit(_score_shard, shared, payload): (labeling_index, start)
                for labeling_index, start, payload in tasks
            }
            for future in as_completed(futures):
                labeling_index, start = futures[future]
                scored, stats_delta = future.result()
                parent_stats.merge(stats_delta)
                results[labeling_index][start : start + len(scored)] = scored
        return results  # type: ignore[return-value]

    # -- scoring API ------------------------------------------------------

    def score_pool(self, labeling: Labeling, candidates: Sequence[OntologyQuery]) -> List[ScoredQuery]:
        """Scores in candidate order (no ranking applied)."""
        return self._score_pools([self.search_for(labeling)], [list(candidates)])[0]

    def rank_pool(self, labeling: Labeling, candidates: Sequence[OntologyQuery]) -> List[ScoredQuery]:
        """Concurrent equivalent of :meth:`BestDescriptionSearch.rank`."""
        scored = self.score_pool(labeling, candidates)
        return sorted(scored, key=BestDescriptionSearch._sort_key)

    # -- the batch entry point --------------------------------------------

    def explain_batch(
        self,
        labelings: Sequence[Labeling],
        candidates: Optional[Sequence[OntologyQuery]] = None,
        strategy: str = "enumerate",
        candidate_config: Optional[CandidateConfig] = None,
        refinement_config: Optional[RefinementConfig] = None,
        top_k: Optional[int] = 10,
    ) -> List[ExplanationReport]:
        """One report per labeling, identical to sequential ``explain``.

        When *candidates* is given the same pool is scored for every
        labeling; otherwise each labeling builds its own pool with the
        chosen strategy, exactly as the sequential search would.
        """
        labelings = list(labelings)
        searches = [self.search_for(labeling) for labeling in labelings]
        pools: List[List[OntologyQuery]] = []
        explicit_counts: List[Optional[int]] = []
        for search in searches:
            if candidates is not None:
                pool = list(candidates)
                explicit_counts.append(len(pool))
            else:
                pool = search.candidate_pool(strategy, candidate_config, refinement_config)
                explicit_counts.append(None)
            pools.append(pool)

        scored_pools = self._score_pools(searches, pools)

        reports: List[ExplanationReport] = []
        for labeling, search, scored, explicit_count in zip(
            labelings, searches, scored_pools, explicit_counts
        ):
            ranking = sorted(scored, key=BestDescriptionSearch._sort_key)
            candidate_count = explicit_count if explicit_count is not None else len(ranking)
            criteria_keys = [criterion.key for criterion in search.scorer.criteria]
            reports.append(
                build_report(
                    labeling,
                    self.radius,
                    criteria_keys,
                    describe_expression(self.expression),
                    ranking,
                    candidate_count,
                    top_k=top_k,
                )
            )
        return reports
