"""Bit-sliced multi-labeling batch kernel: one index, many column layouts.

The pool-level match kernel (:mod:`repro.engine.kernel`) collapsed
verdict-row construction into one set-at-a-time pass — but one pass
*per labeling*: every :class:`~repro.engine.verdicts.VerdictMatrix`
builds its own :class:`~repro.engine.kernel.UnifiedBorderIndex`, and a
batch of L labelings over the same ontology pays L full homomorphism
enumerations even when their borders overlap almost completely (the
"many users' labelings against one database" workload shape).  This
module makes the batch a **single kernel dispatch**:

:class:`MultiLabelingBatchKernel`
    Merges the borders of *all* requested column layouts into one
    deduplicated **global layout** (columns sorted by tuple, one column
    per distinct border, shared columns paid for once) and runs one
    :class:`~repro.engine.kernel.PoolMatchKernel` over it.  Each
    candidate's *global* verdict row is computed exactly once; every
    layout's local row is then a bit-gather of the global row through a
    precomputed selection vector.  Restriction is exact, not
    approximate: bit ``i`` of a row depends only on border ``i``'s facts
    and column tuple, never on which other borders share the index, so
    sliced rows are byte-identical to the per-labeling PR-5 kernel's
    (``tests/engine/test_batch_kernel.py`` pins this across all four
    domains × {thread, process}).

**Bit-sliced storage and vectorized δ-counts** — the global rows of a
whole pool × labeling batch are packed into a 2-D numpy bit matrix
(``uint64`` words, one row of words per candidate).  Slicing a layout
out of it is a vectorized bit gather, and the δ1–δ4 confusion counts of
every candidate become two masked popcount passes
(``numpy.bitwise_count`` over the words ANDed with the layout's
positive/negative column masks) instead of per-row Python
``int.bit_count`` calls — see :func:`masked_popcounts`, consumed by
:meth:`~repro.engine.verdicts.VerdictMatrix.build` /
:meth:`~repro.engine.verdicts.BitsetVerdictProfile`.

**Dependency boundary** — numpy is imported *only* here and only
optionally: :data:`HAS_NUMPY` gates every consumer, and the
``specification.engine.kernel.batch`` policy
(:class:`~repro.engine.cache.BatchKernelPolicy`) is inert without it,
falling back to the per-labeling kernel transparently.  Nothing outside
this module imports numpy.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by every import site
    import numpy as _np

    HAS_NUMPY = hasattr(_np, "bitwise_count")
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None
    HAS_NUMPY = False

from ..errors import ExplanationError
from ..queries.ucq import query_key
from .kernel import PoolMatchKernel

WORD_BITS = 64


def batch_available() -> bool:
    """Whether the bit-sliced batch path can run at all (numpy present)."""
    return HAS_NUMPY


def _require_numpy() -> None:
    if not HAS_NUMPY:
        raise ExplanationError(
            "the bit-sliced batch kernel needs numpy (with bitwise_count); "
            "gate callers on repro.engine.batch_kernel.HAS_NUMPY"
        )


def _word_count(width: int) -> int:
    return max(1, (width + WORD_BITS - 1) // WORD_BITS)


def pack_rows(rows: Sequence[int], width: int):
    """Pack Python-int bitset rows into a ``(len(rows), words)`` uint64 matrix.

    Bit ``i`` of a row lands in word ``i // 64`` at position ``i % 64``
    (little-endian words), so masked popcounts over the words agree with
    ``int.bit_count`` over the ints.
    """
    _require_numpy()
    words = _word_count(width)
    nbytes = words * 8
    buffer = bytearray(len(rows) * nbytes)
    for position, row in enumerate(rows):
        buffer[position * nbytes : (position + 1) * nbytes] = row.to_bytes(
            nbytes, "little"
        )
    return _np.frombuffer(bytes(buffer), dtype="<u8").reshape(len(rows), words)


def unpack_bits(words, width: int):
    """The ``(rows, width)`` 0/1 matrix behind a packed word matrix."""
    _require_numpy()
    positions = _np.arange(width)
    word_index = positions // WORD_BITS
    shifts = (positions % WORD_BITS).astype(_np.uint64)
    if width == 0:
        return _np.zeros((words.shape[0], 0), dtype=_np.uint8)
    return ((words[:, word_index] >> shifts) & _np.uint64(1)).astype(_np.uint8)


def pack_bit_matrix(bits) -> Tuple[object, List[int]]:
    """Pack a 0/1 matrix back into (uint64 words, Python-int rows)."""
    _require_numpy()
    count, width = bits.shape
    nbytes = _word_count(width) * 8
    padded = _np.zeros((count, nbytes), dtype=_np.uint8)
    if width:
        packed = _np.packbits(bits, axis=1, bitorder="little")
        padded[:, : packed.shape[1]] = packed
    words = padded.view("<u8")
    row_bytes = padded.tobytes()
    ints = [
        int.from_bytes(row_bytes[position * nbytes : (position + 1) * nbytes], "little")
        for position in range(count)
    ]
    return words, ints


def masked_popcounts(words, mask: int, width: int):
    """Per-row popcounts of ``words & mask`` — one vectorized δ-count pass.

    This is the batch replacement for the per-row
    ``(row & mask).bit_count()`` calls of
    :class:`~repro.engine.verdicts.BitsetVerdictProfile`: one call
    yields the masked counts of *every* candidate in the slab.
    """
    _require_numpy()
    mask_words = pack_rows([mask], width)
    return _np.bitwise_count(words & mask_words).sum(axis=1)


class LayoutRows:
    """One layout's share of a batch dispatch: rows + precomputed δ-counts.

    ``rows[i]`` is the verdict bitset of the layout's pool entry ``i``
    (byte-identical to what the per-labeling kernel would emit) and
    ``counts[i]`` its ``(matched positives, matched negatives)`` pair,
    computed by the vectorized popcount pass so profile construction
    never re-counts bits.
    """

    __slots__ = ("rows", "counts")

    def __init__(self, rows: List[int], counts: List[Tuple[int, int]]):
        self.rows = rows
        self.counts = counts


class MultiLabelingBatchKernel:
    """One unified border index serving many column layouts at once.

    Built for one evaluator and a sequence of
    :class:`~repro.engine.verdicts.BorderColumns` layouts (typically the
    matrices of one labeling batch).  The global layout deduplicates
    borders across layouts — overlapping labelings share columns, and
    the whole batch shares one homomorphism enumeration per candidate.
    """

    def __init__(self, evaluator, layouts: Sequence):
        _require_numpy()
        self.evaluator = evaluator
        self.layouts = list(layouts)
        self._cache = evaluator.system.specification.engine.cache
        distinct: Dict[object, None] = {}
        for layout in self.layouts:
            for border in layout.borders:
                distinct.setdefault(border, None)
        # Deterministic global order: by tuple then radius, so equal
        # batches address the same subquery tables whatever order the
        # layouts arrived in.  Borders embed their tuple, radius and
        # layers, so two distinct borders never collide on this key
        # within one database.
        ordered = sorted(distinct, key=lambda border: (repr(border.tuple), border.radius))
        from .verdicts import BorderColumns

        # The global layout files every column as a "positive": the
        # positive/negative split is a per-labeling notion that only
        # matters after slicing, while the kernel needs just the
        # (border, tuple) columns and a content-addressed key.
        self.global_columns = BorderColumns(
            positive_tuples=tuple(border.tuple for border in ordered),
            negative_tuples=(),
            borders=tuple(ordered),
            radius=self.layouts[0].radius if self.layouts else 0,
        )
        self.kernel = PoolMatchKernel(evaluator, self.global_columns)
        bit_of = {border: bit for bit, border in enumerate(ordered)}
        self._selections: List[List[int]] = [
            [bit_of[border] for border in layout.borders] for layout in self.layouts
        ]

    # -- geometry ----------------------------------------------------------

    @property
    def global_width(self) -> int:
        return self.global_columns.width

    def selection_for(self, layout_index: int) -> List[int]:
        """Global bit position of each of the layout's local columns."""
        return self._selections[layout_index]

    def shared_columns(self) -> int:
        """How many column slots the dedup saved versus per-layout indexes."""
        return sum(layout.width for layout in self.layouts) - self.global_width

    # -- single rows (lazy consumers: UCQ extensions, drift, bounds) -------

    def _slice(self, global_row: int, layout_index: int) -> int:
        local = 0
        for bit, position in enumerate(self._selections[layout_index]):
            local |= ((global_row >> position) & 1) << bit
        return local

    def row_for(self, layout_index: int, query) -> int:
        """One query's verdict row in one layout's local bit space."""
        return self._slice(self.kernel.row(query), layout_index)

    def upper_bound_for(self, layout_index: int, query) -> int:
        """A superset of ``row_for`` bits (per-atom provenance bound, sliced)."""
        return self._slice(self.kernel.upper_bound_row(query), layout_index)

    # -- the batch dispatch ------------------------------------------------

    def rows_for(self, pools: Sequence[Sequence]) -> List[LayoutRows]:
        """Verdict rows for per-layout pools from one kernel dispatch.

        Distinct queries across all pools are enumerated once against
        the global index; the resulting global rows are packed into the
        uint64 bit matrix, every layout is sliced out with a vectorized
        bit gather, and each slice's δ-counts come from two masked
        popcount passes.  ``pools[i]`` may repeat queries and may differ
        between layouts — each layout's result is aligned with its own
        pool.
        """
        if len(pools) != len(self.layouts):
            raise ExplanationError(
                f"batch dispatch got {len(pools)} pools for {len(self.layouts)} layouts"
            )
        stats = self._cache.stats
        stats.count("batch_dispatches")
        ordered_queries: List = []
        global_of: Dict[Tuple, int] = {}
        for pool in pools:
            for query in pool:
                key = query_key(query)
                if key not in global_of:
                    global_of[key] = len(ordered_queries)
                    ordered_queries.append(query)
        global_rows = [self.kernel.row(query) for query in ordered_queries]
        stats.merge({"batch_rows": len(global_rows)})
        words = pack_rows(global_rows, self.global_width)
        bits = unpack_bits(words, self.global_width)
        results: List[LayoutRows] = []
        for layout, selection, pool in zip(self.layouts, self._selections, pools):
            if selection:
                local_bits = bits[:, selection]
            else:
                local_bits = _np.zeros((len(ordered_queries), 0), dtype=_np.uint8)
            local_words, local_ints = pack_bit_matrix(local_bits)
            matched_pos = masked_popcounts(local_words, layout.positives_mask, layout.width)
            matched_neg = masked_popcounts(local_words, layout.negatives_mask, layout.width)
            rows: List[int] = []
            counts: List[Tuple[int, int]] = []
            for query in pool:
                position = global_of[query_key(query)]
                rows.append(local_ints[position])
                counts.append((int(matched_pos[position]), int(matched_neg[position])))
            results.append(LayoutRows(rows, counts))
        return results

    def __str__(self):
        return (
            f"MultiLabelingBatchKernel(layouts={len(self.layouts)}, "
            f"global_width={self.global_width}, shared={self.shared_columns()})"
        )
