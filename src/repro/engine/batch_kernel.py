"""Bit-sliced multi-labeling batch kernel: one index, many column layouts.

The pool-level match kernel (:mod:`repro.engine.kernel`) collapsed
verdict-row construction into one set-at-a-time pass — but one pass
*per labeling*: every :class:`~repro.engine.verdicts.VerdictMatrix`
builds its own :class:`~repro.engine.kernel.UnifiedBorderIndex`, and a
batch of L labelings over the same ontology pays L full homomorphism
enumerations even when their borders overlap almost completely (the
"many users' labelings against one database" workload shape).  This
module makes the batch a **single kernel dispatch**:

:class:`MultiLabelingBatchKernel`
    Merges the borders of *all* requested column layouts into one
    deduplicated **global layout** (columns sorted by tuple, one column
    per distinct border, shared columns paid for once) and runs one
    :class:`~repro.engine.kernel.PoolMatchKernel` over it.  Each
    candidate's *global* verdict row is computed exactly once; every
    layout's local row is then a bit-gather of the global row through a
    precomputed selection vector.  Restriction is exact, not
    approximate: bit ``i`` of a row depends only on border ``i``'s facts
    and column tuple, never on which other borders share the index, so
    sliced rows are byte-identical to the per-labeling PR-5 kernel's
    (``tests/engine/test_batch_kernel.py`` pins this across all four
    domains × {thread, process}).

**Bit-sliced storage and vectorized δ-counts** — the global rows of a
whole pool × labeling batch are packed into a 2-D numpy bit matrix
(``uint64`` words, one row of words per candidate).  Slicing a layout
out of it is a vectorized bit gather, and the δ1–δ4 confusion counts of
every candidate become two masked popcount passes
(``numpy.bitwise_count`` over the words ANDed with the layout's
positive/negative column masks) instead of per-row Python
``int.bit_count`` calls — see :func:`masked_popcounts`, consumed by
:meth:`~repro.engine.verdicts.VerdictMatrix.build` /
:meth:`~repro.engine.verdicts.BitsetVerdictProfile`.

**Dependency boundary** — numpy is imported *only* here and only
optionally: :data:`HAS_NUMPY` gates every consumer, and the
``specification.engine.kernel.batch`` policy
(:class:`~repro.engine.cache.BatchKernelPolicy`) is inert without it,
falling back to the per-labeling kernel transparently.  Nothing outside
this module imports numpy.
"""

from __future__ import annotations

import tempfile
from typing import Dict, List, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by every import site
    import numpy as _np

    HAS_NUMPY = hasattr(_np, "bitwise_count")
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None
    HAS_NUMPY = False

from ..errors import ExplanationError
from ..queries.ucq import query_key
from .kernel import PoolMatchKernel

WORD_BITS = 64

# Rows per processing slab on the spill path: large enough that numpy
# calls stay vectorized, small enough that the transient unpacked 0/1
# slab (8× its packed words) bounds the Python-heap peak well below the
# full matrix.
SPILL_SLAB_ROWS = 64


def batch_available() -> bool:
    """Whether the bit-sliced batch path can run at all (numpy present)."""
    return HAS_NUMPY


def _require_numpy() -> None:
    if not HAS_NUMPY:
        raise ExplanationError(
            "the bit-sliced batch kernel needs numpy (with bitwise_count); "
            "gate callers on repro.engine.batch_kernel.HAS_NUMPY"
        )


def _word_count(width: int) -> int:
    return max(1, (width + WORD_BITS - 1) // WORD_BITS)


def _spill_matrix(shape: Tuple[int, int]):
    """A zero-initialised ``numpy.memmap`` uint64 matrix in a temp file.

    Mirrors the PR-9 spill-store discipline (``SpillArgsRows`` /
    ``SpillMaskRows``): the backing ``tempfile.TemporaryFile`` is
    anonymous on POSIX (already unlinked, prefix ``repro-spill-``), so
    releasing the array and its attached ``_spill_source`` handle gives
    the disk back with no orphan path to clean up.
    """
    rows, words = int(shape[0]), int(shape[1])
    handle = tempfile.TemporaryFile(prefix="repro-spill-")
    handle.truncate(rows * words * 8)
    matrix = _np.memmap(handle, dtype="<u8", mode="r+", shape=(rows, words))
    matrix._spill_source = handle
    return matrix


def pack_rows(rows: Sequence[int], width: int, spill: bool = False):
    """Pack Python-int bitset rows into a ``(len(rows), words)`` uint64 matrix.

    Bit ``i`` of a row lands in word ``i // 64`` at position ``i % 64``
    (little-endian words), so masked popcounts over the words agree with
    ``int.bit_count`` over the ints.  With ``spill=True`` the matrix is
    a memory-mapped temp file written one row at a time — the Python
    heap never holds more than a single row's bytes.
    """
    _require_numpy()
    words = _word_count(width)
    nbytes = words * 8
    if spill and rows:
        matrix = _spill_matrix((len(rows), words))
        for position, row in enumerate(rows):
            matrix[position] = _np.frombuffer(row.to_bytes(nbytes, "little"), dtype="<u8")
        return matrix
    buffer = bytearray(len(rows) * nbytes)
    for position, row in enumerate(rows):
        buffer[position * nbytes : (position + 1) * nbytes] = row.to_bytes(
            nbytes, "little"
        )
    return _np.frombuffer(bytes(buffer), dtype="<u8").reshape(len(rows), words)


def unpack_bits(words, width: int):
    """The ``(rows, width)`` 0/1 matrix behind a packed word matrix."""
    _require_numpy()
    positions = _np.arange(width)
    word_index = positions // WORD_BITS
    shifts = (positions % WORD_BITS).astype(_np.uint64)
    if width == 0:
        return _np.zeros((words.shape[0], 0), dtype=_np.uint8)
    return ((words[:, word_index] >> shifts) & _np.uint64(1)).astype(_np.uint8)


def pack_bit_matrix(bits, spill: bool = False) -> Tuple[object, List[int]]:
    """Pack a 0/1 matrix back into (uint64 words, Python-int rows).

    With ``spill=True`` the word matrix is a memory-mapped temp file
    filled slab by slab (:data:`SPILL_SLAB_ROWS` rows at a time), so
    the heap peak is one slab's words instead of the whole matrix; the
    packed bits are identical either way.
    """
    _require_numpy()
    count, width = bits.shape
    nbytes = _word_count(width) * 8
    if spill and count:
        matrix = _spill_matrix((count, _word_count(width)))
        ints: List[int] = []
        for start in range(0, count, SPILL_SLAB_ROWS):
            stop = min(start + SPILL_SLAB_ROWS, count)
            slab_words, slab_ints = pack_bit_matrix(bits[start:stop])
            matrix[start:stop] = slab_words
            ints.extend(slab_ints)
        return matrix, ints
    padded = _np.zeros((count, nbytes), dtype=_np.uint8)
    if width:
        packed = _np.packbits(bits, axis=1, bitorder="little")
        padded[:, : packed.shape[1]] = packed
    words = padded.view("<u8")
    row_bytes = padded.tobytes()
    ints = [
        int.from_bytes(row_bytes[position * nbytes : (position + 1) * nbytes], "little")
        for position in range(count)
    ]
    return words, ints


def gather_packed_spilled(words, selection: Sequence[int], width: int, count: int):
    """Column-gather a packed word matrix into a spilled (words, ints) pair.

    Processes :data:`SPILL_SLAB_ROWS` rows at a time: unpack one slab's
    0/1 bits (the 8×-wider intermediate exists only at slab size),
    gather *selection*'s columns, re-pack, and write the slab into a
    fresh memory-mapped matrix.  Per-slab ``packbits`` equals the
    whole-matrix pack row for row, so the gathered bits are identical
    to ``pack_bit_matrix(unpack_bits(words, width)[:, selection])``.
    """
    _require_numpy()
    local_width = len(selection)
    if count == 0:
        return pack_bit_matrix(_np.zeros((0, local_width), dtype=_np.uint8))
    gathered = _spill_matrix((count, _word_count(local_width)))
    ints: List[int] = []
    gather = _np.asarray(selection, dtype=_np.intp)
    for start in range(0, count, SPILL_SLAB_ROWS):
        stop = min(start + SPILL_SLAB_ROWS, count)
        slab = _np.asarray(words[start:stop])
        if local_width:
            local_bits = unpack_bits(slab, width)[:, gather]
        else:
            local_bits = _np.zeros((stop - start, 0), dtype=_np.uint8)
        slab_words, slab_ints = pack_bit_matrix(local_bits)
        gathered[start:stop] = slab_words
        ints.extend(slab_ints)
    return gathered, ints


def masked_popcounts(words, mask: int, width: int):
    """Per-row popcounts of ``words & mask`` — one vectorized δ-count pass.

    This is the batch replacement for the per-row
    ``(row & mask).bit_count()`` calls of
    :class:`~repro.engine.verdicts.BitsetVerdictProfile`: one call
    yields the masked counts of *every* candidate in the slab.  A
    memory-mapped word matrix is consumed in row slabs so the ANDed
    intermediate never materialises at full size.
    """
    _require_numpy()
    mask_words = pack_rows([mask], width)
    if isinstance(words, _np.memmap):
        chunks = []
        for start in range(0, words.shape[0], SPILL_SLAB_ROWS):
            stop = min(start + SPILL_SLAB_ROWS, words.shape[0])
            slab = _np.asarray(words[start:stop])
            chunks.append(_np.bitwise_count(slab & mask_words).sum(axis=1))
        if not chunks:
            return _np.zeros(0, dtype=_np.uint64)
        return _np.concatenate(chunks)
    return _np.bitwise_count(words & mask_words).sum(axis=1)


class LayoutRows:
    """One layout's share of a batch dispatch: rows + precomputed δ-counts.

    ``rows[i]`` is the verdict bitset of the layout's pool entry ``i``
    (byte-identical to what the per-labeling kernel would emit) and
    ``counts[i]`` its ``(matched positives, matched negatives)`` pair,
    computed by the vectorized popcount pass so profile construction
    never re-counts bits.
    """

    __slots__ = ("rows", "counts")

    def __init__(self, rows: List[int], counts: List[Tuple[int, int]]):
        self.rows = rows
        self.counts = counts


class MultiLabelingBatchKernel:
    """One unified border index serving many column layouts at once.

    Built for one evaluator and a sequence of
    :class:`~repro.engine.verdicts.BorderColumns` layouts (typically the
    matrices of one labeling batch).  The global layout deduplicates
    borders across layouts — overlapping labelings share columns, and
    the whole batch shares one homomorphism enumeration per candidate.
    """

    def __init__(self, evaluator, layouts: Sequence):
        _require_numpy()
        self.evaluator = evaluator
        self.layouts = list(layouts)
        self._engine = evaluator.system.specification.engine
        self._cache = self._engine.cache
        distinct: Dict[object, None] = {}
        for layout in self.layouts:
            for border in layout.borders:
                distinct.setdefault(border, None)
        # Deterministic global order: by tuple then radius, so equal
        # batches address the same subquery tables whatever order the
        # layouts arrived in.  Borders embed their tuple, radius and
        # layers, so two distinct borders never collide on this key
        # within one database.
        ordered = sorted(distinct, key=lambda border: (repr(border.tuple), border.radius))
        from .verdicts import BorderColumns

        # The global layout files every column as a "positive": the
        # positive/negative split is a per-labeling notion that only
        # matters after slicing, while the kernel needs just the
        # (border, tuple) columns and a content-addressed key.
        self.global_columns = BorderColumns(
            positive_tuples=tuple(border.tuple for border in ordered),
            negative_tuples=(),
            borders=tuple(ordered),
            radius=self.layouts[0].radius if self.layouts else 0,
        )
        self.kernel = PoolMatchKernel(evaluator, self.global_columns)
        bit_of = {border: bit for bit, border in enumerate(ordered)}
        self._selections: List[List[int]] = [
            [bit_of[border] for border in layout.borders] for layout in self.layouts
        ]

    # -- geometry ----------------------------------------------------------

    @property
    def global_width(self) -> int:
        return self.global_columns.width

    def selection_for(self, layout_index: int) -> List[int]:
        """Global bit position of each of the layout's local columns."""
        return self._selections[layout_index]

    def shared_columns(self) -> int:
        """How many column slots the dedup saved versus per-layout indexes."""
        return sum(layout.width for layout in self.layouts) - self.global_width

    # -- single rows (lazy consumers: UCQ extensions, drift, bounds) -------

    def _slice(self, global_row: int, layout_index: int) -> int:
        local = 0
        for bit, position in enumerate(self._selections[layout_index]):
            local |= ((global_row >> position) & 1) << bit
        return local

    def row_for(self, layout_index: int, query) -> int:
        """One query's verdict row in one layout's local bit space."""
        return self._slice(self.kernel.row(query), layout_index)

    def upper_bound_for(self, layout_index: int, query) -> int:
        """A superset of ``row_for`` bits (per-atom provenance bound, sliced)."""
        return self._slice(self.kernel.upper_bound_row(query), layout_index)

    # -- the batch dispatch ------------------------------------------------

    def _spill_enabled(self) -> bool:
        """Live read of ``engine.kernel.spill.enabled`` (same gate as the
        spilled border index — one policy moves every big matrix off-heap)."""
        spill = getattr(self._engine.kernel, "spill", None)
        return bool(spill is not None and spill.enabled)

    def _gather_spilled(self, words, selection: Sequence[int], count: int):
        """One layout's (words, ints) sliced slab-by-slab off the heap."""
        return gather_packed_spilled(words, selection, self.global_width, count)

    def rows_for(self, pools: Sequence[Sequence]) -> List[LayoutRows]:
        """Verdict rows for per-layout pools from one kernel dispatch.

        Distinct queries across all pools are enumerated once against
        the global index; the resulting global rows are packed into the
        uint64 bit matrix, every layout is sliced out with a vectorized
        bit gather, and each slice's δ-counts come from two masked
        popcount passes.  ``pools[i]`` may repeat queries and may differ
        between layouts — each layout's result is aligned with its own
        pool.
        """
        if len(pools) != len(self.layouts):
            raise ExplanationError(
                f"batch dispatch got {len(pools)} pools for {len(self.layouts)} layouts"
            )
        stats = self._cache.stats
        stats.count("batch_dispatches")
        ordered_queries: List = []
        global_of: Dict[Tuple, int] = {}
        for pool in pools:
            for query in pool:
                key = query_key(query)
                if key not in global_of:
                    global_of[key] = len(ordered_queries)
                    ordered_queries.append(query)
        global_rows = [self.kernel.row(query) for query in ordered_queries]
        stats.merge({"batch_rows": len(global_rows)})
        spill = self._spill_enabled()
        words = pack_rows(global_rows, self.global_width, spill=spill)
        bits = None if spill else unpack_bits(words, self.global_width)
        results: List[LayoutRows] = []
        for layout, selection, pool in zip(self.layouts, self._selections, pools):
            if spill:
                local_words, local_ints = self._gather_spilled(
                    words, selection, len(ordered_queries)
                )
            else:
                if selection:
                    local_bits = bits[:, selection]
                else:
                    local_bits = _np.zeros((len(ordered_queries), 0), dtype=_np.uint8)
                local_words, local_ints = pack_bit_matrix(local_bits)
            matched_pos = masked_popcounts(local_words, layout.positives_mask, layout.width)
            matched_neg = masked_popcounts(local_words, layout.negatives_mask, layout.width)
            rows: List[int] = []
            counts: List[Tuple[int, int]] = []
            for query in pool:
                position = global_of[query_key(query)]
                rows.append(local_ints[position])
                counts.append((int(matched_pos[position]), int(matched_neg[position])))
            results.append(LayoutRows(rows, counts))
        return results

    def __str__(self):
        return (
            f"MultiLabelingBatchKernel(layouts={len(self.layouts)}, "
            f"global_width={self.global_width}, shared={self.shared_columns()})"
        )
