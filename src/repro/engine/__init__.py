"""``repro.engine`` — the shared evaluation-cache and batch-scoring substrate.

Why this package exists
-----------------------

The explanation framework (Definition 3.7 of the paper) is a search: it
scores tens to thousands of candidate queries, and every score is a
J-matching profile (Definition 3.4) computed against the *same* borders
and the *same* virtual ABoxes.  The seed implementation rebuilt the
expensive intermediates on every call — most painfully, the chase
strategy re-saturated the ABox on every single ``is_certain_answer``
check.  This package centralises that repeated work behind two
components:

:class:`~repro.engine.cache.EvaluationCache`
    A content-addressed memo shared by every evaluator working against
    one OBDM specification.  It caches (1) saturated chase indexes per
    ABox fact set, (2) perfect rewritings per canonical query signature,
    (3) retrieved border ABoxes per border atom set and (4) J-match
    verdicts per query signature × border.  Keys are frozen *values*,
    never object identities, so shared use across labelings, evaluators
    and worker threads is safe by construction.  Every
    :class:`~repro.obdm.certain_answers.CertainAnswerEngine` owns one
    (``specification.engine.cache``) and the J-matching layer
    (:class:`~repro.core.matching.MatchEvaluator`) consults it.

:class:`~repro.engine.batch.BatchExplainer`
    Concurrent batch scoring of candidate pools across one or many
    labelings via :mod:`concurrent.futures`, with deterministic result
    ordering: results are placed by (labeling, candidate) index and
    ranked with the exact comparator of the sequential search, so batch
    output is query-for-query identical to calling
    :meth:`~repro.core.explainer.OntologyExplainer.explain` in a loop.
    :meth:`~repro.core.explainer.OntologyExplainer.explain_batch` is the
    public entry point.

Quickstart::

    from repro.core import Labeling, OntologyExplainer
    from repro.ontologies.university import build_university_system

    system = build_university_system()
    explainer = OntologyExplainer(system)
    reports = explainer.explain_batch(
        [lambda_a, lambda_b],                 # many labelings, one pass
        candidates=["q(x) :- studies(x, 'Math')", ...],
    )

Benchmarks: ``benchmarks/bench_batch_explain.py`` measures the cached
batch path against the seed's per-call path (toggle via
``EvaluationCache.enabled``) and asserts byte-identical rankings.

Next scaling steps this substrate unlocks (see ROADMAP.md): sharding
candidate pools across processes, async serving of explanation requests
with a warm shared cache, and cross-request cache persistence.
"""

from __future__ import annotations

from .cache import CacheStats, EvaluationCache

__all__ = ["BatchExplainer", "CacheStats", "EvaluationCache"]


def __getattr__(name: str):
    # BatchExplainer is exposed lazily: importing repro.engine.batch pulls
    # in repro.core, which itself imports repro.obdm.certain_answers →
    # repro.engine.cache; loading it eagerly here would close that loop
    # during package initialisation.
    if name == "BatchExplainer":
        from .batch import BatchExplainer

        return BatchExplainer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
