"""``repro.engine`` — the shared evaluation-cache and batch-scoring substrate.

Why this package exists
-----------------------

The explanation framework (Definition 3.7 of the paper) is a search: it
scores tens to thousands of candidate queries, and every score is a
J-matching profile (Definition 3.4) computed against the *same* borders
and the *same* virtual ABoxes.  The seed implementation rebuilt the
expensive intermediates on every call — most painfully, the chase
strategy re-saturated the ABox on every single ``is_certain_answer``
check.  This package centralises that repeated work behind two
components:

:class:`~repro.engine.cache.EvaluationCache`
    A content-addressed memo shared by every evaluator working against
    one OBDM specification.  It caches (1) saturated chase indexes per
    ABox fact set, (2) perfect rewritings per canonical query signature,
    (3) retrieved border ABoxes per border atom set and (4) J-match
    verdicts per query signature × border.  Keys are frozen *values*,
    never object identities, so shared use across labelings, evaluators
    and worker threads is safe by construction.  Every
    :class:`~repro.obdm.certain_answers.CertainAnswerEngine` owns one
    (``specification.engine.cache``) and the J-matching layer
    (:class:`~repro.core.matching.MatchEvaluator`) consults it.

:class:`~repro.engine.verdicts.VerdictMatrix`
    The bitset verdict engine of the criteria layer.  For one labeling
    it lays the border individuals out as **columns** (positives first,
    then negatives, each sorted deterministically —
    :class:`~repro.engine.verdicts.BorderColumns`) and stores, per
    candidate query, one int-backed bitset **row** whose bit ``i`` says
    whether the query J-matches border ``i``.  Rows are built in one
    pass over the border ABoxes per labeling (borders outer, candidates
    inner, so each retrieved/saturated ABox is consulted while hot),
    UCQ rows are the OR of their disjuncts' rows, and completed rows
    are memoized in the evaluation cache under the layout's
    content-addressed key, so re-ranking a pool under another (Δ, Z)
    configuration never re-runs a J-match.
    :class:`~repro.engine.verdicts.BitsetVerdictProfile` exposes the
    ``MatchProfile`` interface over a row — the criteria δ1–δ4 become
    popcount arithmetic.  **Toggle:** the path is controlled by
    ``specification.engine.verdicts.enabled``
    (:class:`~repro.engine.cache.VerdictPolicy`), in the same style as
    ``engine.cache.enabled``; disabling it restores the legacy per-pair
    path, which the differential suite
    (``tests/engine/test_verdict_matrix.py``) pins as byte-identical
    across all four domain ontologies.

:class:`~repro.engine.kernel.PoolMatchKernel`
    The pool-level match kernel behind verdict-row *construction*.
    Where the per-pair path asks one certain-answer question per
    (candidate, border) cell — O(|pool| × |borders|) independent
    rewriting + homomorphism searches — the kernel merges all border
    ABoxes of a labeling into one
    :class:`~repro.engine.kernel.UnifiedBorderIndex` (a columnar fact
    store: predicate → argument arrays + a provenance bitset per fact)
    and computes a candidate's **whole row in one homomorphism
    enumeration**: a set-at-a-time hash join ANDs provenance bitsets
    along join paths, and each final binding's head projection emits
    its mask into the row.  Partial-match states of canonical atom
    prefixes are **tabled** in the shared cache
    (:meth:`EvaluationCache.subquery_tables`,
    ``CacheStats.subquery_hits/misses``), so candidates of the
    bottom-up lattice that share a prefix pay for it once.  The
    kernel's per-atom provenance OR also yields a cheap row *upper
    bound*, which
    :meth:`~repro.core.best_describe.BestDescriptionSearch.top_k`
    turns into optimistic Z-scores for **top-k bound pruning** (exact
    top-k, candidates that provably cannot reach it never build a
    row).  **Toggle:** ``specification.engine.kernel.enabled``
    (:class:`~repro.engine.cache.KernelPolicy`), same style as
    ``engine.verdicts.enabled``; disabling it restores per-pair row
    construction.  ``VerdictMatrix.build``/``_compute_row``,
    ``apply_drift`` (fresh columns), both ``BatchExplainer`` executors
    and the explanation service's warm sessions all route through it
    when enabled; the differential suite
    (``tests/engine/test_match_kernel.py``) pins kernel rows
    byte-identical to the per-pair path across all four domains ×
    {CQ, UCQ} × {cache on, off} × {thread, process}, and
    ``benchmarks/bench_match_kernel.py`` gates a ≥3× matrix-build
    speedup.

:class:`~repro.engine.batch_kernel.MultiLabelingBatchKernel`
    The bit-sliced **multi-labeling batch kernel**: where the pool
    kernel runs one pass *per labeling*, this merges the borders of
    many column layouts into one deduplicated global layout, runs a
    single :class:`~repro.engine.kernel.PoolMatchKernel` over it, and
    slices each labeling's rows out of the global rows with a
    vectorized bit gather — one homomorphism enumeration per candidate
    for the *whole batch*.  Rows live in a 2-D numpy ``uint64`` bit
    matrix and the δ1–δ4 confusion counts of every candidate come from
    two masked-popcount passes
    (:func:`~repro.engine.batch_kernel.masked_popcounts`) instead of
    per-row ``int.bit_count``.  Entry points:
    :meth:`~repro.engine.verdicts.VerdictMatrix.build_batch` (many
    matrices, one dispatch — used by the ``BatchExplainer`` thread path
    and :meth:`~repro.service.ExplanationService.warm_start`) and the
    single-layout fast path inside ``VerdictMatrix.build``.  The
    kernel's per-atom provenance supports also feed **generator-level
    pruning** (:meth:`~repro.engine.kernel.ProvenancePruner`): candidate
    conjunctions whose AND-of-supports bound is empty are discarded by
    ``repro.core.candidates`` / ``repro.core.refinement`` before a query
    object is even materialised.  **Toggle:**
    ``specification.engine.kernel.batch.enabled``
    (:class:`~repro.engine.cache.BatchKernelPolicy`); numpy is imported
    *only* in :mod:`repro.engine.batch_kernel` and the flag is inert
    without it (``HAS_NUMPY``), falling back to the per-labeling kernel
    transparently.  The differential suite
    (``tests/engine/test_batch_kernel.py``) pins batch rows and reports
    byte-identical to the per-labeling and legacy paths across all four
    domains × {thread, process}, and
    ``benchmarks/bench_batch_labelings.py`` gates a ≥3× batch-dispatch
    speedup.

**Fact-level database drift** (:class:`~repro.engine.cache.DeltaPolicy`)
    The maintenance path that keeps all of the above warm while the
    *source database* changes under serving.  A
    :class:`~repro.obdm.database.DatabaseDelta` (added/removed facts)
    is applied in place by ``SourceDatabase.apply_delta`` — which also
    maintains an order-independent XOR content fingerprint — and then
    propagates incrementally layer by layer:
    :meth:`~repro.core.border.BorderComputer.apply_delta` evicts only
    the cached borders whose constant reach the delta intersects;
    :meth:`~repro.engine.cache.EvaluationCache.invalidate_borders`
    drops exactly the memo entries built over those borders (border
    ABoxes, their saturations, J-match verdicts, verdict layouts,
    tabled subquery states — counted in
    ``CacheStats.delta_invalidations``);
    :meth:`~repro.engine.kernel.UnifiedBorderIndex.apply_patch`
    appends/tombstones fact columns and fixes provenance bitsets in
    place instead of rebuilding the merged index; and
    :meth:`~repro.engine.verdicts.VerdictMatrix.apply_database_delta`
    migrates surviving verdict bits by masking and re-evaluates only
    the columns whose border content actually changed (one bit-sliced
    batch dispatch when the batch kernel is enabled).
    :meth:`~repro.service.ExplanationService.apply_delta` drives the
    whole pipeline for every live session, and service snapshots are
    stamped with the database fingerprint so a post-drift ``load()``
    is refused.  **Toggle:** ``specification.engine.delta.enabled``
    (:class:`~repro.engine.cache.DeltaPolicy`), same policy style as
    the other layers; disabling it reproduces the legacy cold path
    (full cache clear + session reset per delta) exactly.  The
    differential suite (``tests/engine/test_database_delta.py``) pins
    incremental rankings byte-identical to cold rebuilds under random
    delta streams across all four domains × {thread, process}, and
    ``benchmarks/bench_database_drift.py`` gates a ≥3× update-vs-cold
    speedup on a streaming-updates workload.

**Out-of-core storage** (:class:`~repro.engine.cache.SpillPolicy` and
:mod:`repro.obdm.backend`)
    The layer *under* all of the above: where facts live.  The source
    database delegates storage to a pluggable
    :class:`~repro.obdm.backend.StorageBackend` — the default
    ``MemoryBackend`` is the seed's dict indexes verbatim, while
    ``SQLiteBackend`` keeps facts in an indexed SQLite store (on disk
    or ``:memory:``), compiles CQ/SQL/algebra mapping sources to single
    pushed-down SQL statements
    (:meth:`~repro.obdm.database.SourceDatabase.execute_pushdown`,
    falling back per assertion on
    :class:`~repro.obdm.backend.PushdownUnsupported`), and streams
    mapping application (:meth:`~repro.obdm.mapping.Mapping.iter_apply`)
    and border retrieval
    (:meth:`~repro.obdm.database.SourceDatabase.facts_with_any_constant`,
    one batched ``IN`` lookup per BFS frontier) so the Python heap never
    materialises the fact set.  Fingerprints, deltas, snapshot stamping
    and every engine layer behave identically over either backend
    (suite ``tests/obdm/test_backends.py``, marker ``backend``).  On
    the engine side, ``engine.kernel.spill.enabled``
    (:class:`~repro.engine.cache.SpillPolicy`, default off) moves the
    :class:`~repro.engine.kernel.UnifiedBorderIndex`'s columnar
    argument/provenance arrays into memory-mapped temp files
    (:class:`~repro.engine.kernel.SpillArgsRows` /
    :class:`~repro.engine.kernel.SpillMaskRows`) — same layout and row
    ids, byte-identical rankings
    (``tests/engine/test_spill_index.py``).  Experiment ``E16`` and
    ``benchmarks/bench_out_of_core.py`` gate a ≥10× workload served on
    the SQLite backend with a Python-heap allocation peak strictly
    below the in-memory baseline and identical rankings.

**Whole-rewriting SQL pushdown**
(:class:`~repro.engine.cache.PushdownPolicy`)
    The perfect rewriting itself pushed into the relational engine:
    when the source database lives on ``SQLiteBackend``, a
    certain-answer check compiles the *entire* rewritten UCQ into one
    SQL statement — each disjunct a self-join ``SELECT`` over
    per-ontology-predicate ABox tables (the border/retrieved ABox is
    registered once, content-addressed and LRU-bounded, and restricted
    via a pushed-down ABox-id filter), disjuncts combined with
    ``UNION``, membership checks as constant filters under ``LIMIT 1``
    (:meth:`~repro.obdm.backend.SQLiteBackend.ucq_certain_answers` /
    :meth:`~repro.obdm.backend.SQLiteBackend.ucq_contains_tuple`) —
    instead of O(|disjuncts| × |ABox facts|) Python homomorphism
    search.  Results are memoized in the shared cache
    (:meth:`~repro.engine.cache.EvaluationCache.pushdown_result`) and
    counted in ``pushdown_hits`` / ``pushdown_misses`` /
    ``pushdown_fallbacks``, surfaced through
    :meth:`~repro.service.ExplanationService.size_report` and the
    gateway's ``stats_report``.  **Toggle:**
    ``specification.engine.pushdown.enabled``
    (:class:`~repro.engine.cache.PushdownPolicy`, default on; inert on
    the memory backend, which just counts fallbacks).  Any query the
    compiler rejects raises
    :class:`~repro.obdm.backend.PushdownUnsupported` and falls back to
    the legacy in-memory evaluation per query.  The companion
    beyond-RAM thrust lives in the batch kernel:
    ``engine.kernel.spill.enabled`` also moves the 2-D uint64 batch
    bit matrix into ``numpy.memmap`` temp files, processed in row
    slabs with bit-identical δ1–δ4 popcounts
    (:func:`~repro.engine.batch_kernel.pack_bit_matrix` with
    ``spill=True``).  Differential suite
    ``tests/obdm/test_pushdown_rewriting.py``; experiment ``E17`` and
    ``benchmarks/bench_pushdown_rewriting.py`` gate ≥3× on the
    certain-answer phase at a ≥10× loan workload with byte-identical
    rankings.

:class:`~repro.engine.batch.BatchExplainer`
    Concurrent batch scoring of candidate pools across one or many
    labelings via :mod:`concurrent.futures`, with deterministic result
    ordering: results are placed by (labeling, candidate) index and
    ranked with the exact comparator of the sequential search, so batch
    output is query-for-query identical to calling
    :meth:`~repro.core.explainer.OntologyExplainer.explain` in a loop.
    :meth:`~repro.core.explainer.OntologyExplainer.explain_batch` is the
    public entry point.  **Sharding knobs:** ``executor="thread"``
    (default) scores pairs on a thread pool sharing one in-process
    cache; ``executor="process"`` splits each candidate pool into
    contiguous shards and ships (specification, database, labeling,
    shard) payloads to a ``ProcessPoolExecutor`` — specifications
    pickle cleanly (locks dropped and rebuilt, memo entries are
    content-addressed values) and shard results are reassembled in pool
    order, so rankings stay sequential-identical.  ``max_workers``
    bounds both executors; process mode needs picklable criteria and
    expressions (the paper's δ criteria and ready-made expressions
    qualify).

Quickstart::

    from repro.core import Labeling, OntologyExplainer
    from repro.ontologies.university import build_university_system

    system = build_university_system()
    explainer = OntologyExplainer(system)
    reports = explainer.explain_batch(
        [lambda_a, lambda_b],                 # many labelings, one pass
        candidates=["q(x) :- studies(x, 'Math')", ...],
        executor="process",                   # shard pools across processes
    )

Benchmarks: ``benchmarks/bench_batch_explain.py`` measures the cached
batch path against the seed's per-call path (toggle via
``EvaluationCache.enabled``) and ``benchmarks/bench_bitset_criteria.py``
gates a ≥3× criteria-phase speedup of the verdict-matrix path over the
legacy per-pair path (toggle via ``VerdictPolicy.enabled``); both
assert byte-identical rankings.

Next scaling steps this substrate unlocks (see ROADMAP.md): a network
transport over the asyncio gateway (HTTP/MCP tool surface, replica
topologies) and scenario diversity via an ontology importer plus
parameterised synthetic workload scaling.
"""

from __future__ import annotations

from .cache import (
    BatchKernelPolicy,
    CacheLimits,
    CacheStats,
    DeltaPolicy,
    EvaluationCache,
    KernelPolicy,
    LRUStore,
    PushdownPolicy,
    SpillPolicy,
    VerdictPolicy,
)
from .kernel import PoolMatchKernel, SpillArgsRows, SpillMaskRows, UnifiedBorderIndex

__all__ = [
    "BatchExplainer",
    "BatchKernelPolicy",
    "BitsetVerdictProfile",
    "BorderColumns",
    "CacheLimits",
    "CacheStats",
    "DeltaPolicy",
    "EvaluationCache",
    "KernelPolicy",
    "LRUStore",
    "MultiLabelingBatchKernel",
    "PoolMatchKernel",
    "PushdownPolicy",
    "SpillArgsRows",
    "SpillMaskRows",
    "SpillPolicy",
    "UnifiedBorderIndex",
    "VerdictMatrix",
    "VerdictPolicy",
]

_LAZY_MODULES = {
    # These are exposed lazily: importing repro.engine.batch or
    # repro.engine.verdicts pulls in repro.core, which itself imports
    # repro.obdm.certain_answers → repro.engine.cache; loading them
    # eagerly here would close that loop during package initialisation.
    # (repro.engine.kernel only imports repro.queries and the
    # engine-free repro.obdm.backend codec, so it loads eagerly above.)
    "BatchExplainer": "batch",
    "BitsetVerdictProfile": "verdicts",
    "BorderColumns": "verdicts",
    "MultiLabelingBatchKernel": "batch_kernel",
    "VerdictMatrix": "verdicts",
}


def __getattr__(name: str):
    module_name = _LAZY_MODULES.get(name)
    if module_name is not None:
        from importlib import import_module

        return getattr(import_module(f".{module_name}", __name__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
