"""The shared evaluation cache behind certain-answer computation.

The best-description search asks the same expensive questions over and
over: *saturate this border's ABox*, *rewrite this query*, *does this
query J-match this border?*.  The seed engine recomputed the first on
every chase-strategy call and the last on every profile evaluation.
:class:`EvaluationCache` memoizes all three layers behind one object
that is shared by every evaluator working against the same OBDM
specification:

* **saturated chase indexes** — keyed by the ABox's fact set, so each
  distinct (border or full) ABox is chased exactly once;
* **perfect rewritings** — keyed by the query's canonical signature
  (:func:`repro.queries.ucq.query_key`);
* **retrieved border ABoxes** — keyed by the border's source atoms;
* **J-match verdicts** — keyed by query signature × border (the border
  value embeds its tuple, radius and atom layers, so keys are
  content-addressed and stay valid even if the source database mutates);
* **verdict-matrix rows** — bitsets of per-border verdicts, keyed by
  column layout × query signature (see :mod:`repro.engine.verdicts`);
* **kernel subquery tables** — partial-match provenance bitsets of
  canonical atom prefixes, keyed by unified-border-index identity ×
  prefix signature (see :mod:`repro.engine.kernel`), so candidates that
  share a join prefix pay for it once.

All keys are content-addressed (frozen values, not object identities),
which is what makes the cache safely shareable between evaluators,
labelings and worker threads: a hit can never observe stale state, only
skip recomputation.  Mutating dict entries under CPython is atomic, and
the expensive saturation path additionally takes a per-key lock so
concurrent scorers do not chase the same ABox twice.

The computation itself is *injected* (the cache never imports the chase
or the rewriter), keeping this module at the bottom of the dependency
stack: ``repro.obdm.certain_answers`` plugs in its own saturator and
rewriter when it builds its cache.

Setting :attr:`EvaluationCache.enabled` to ``False`` restores the
seed's per-call behaviour for the hot layers (saturation, border-ABox
retrieval, J-matching) while keeping the rewriting memo, which the seed
already had; the benchmark ``benchmarks/bench_batch_explain.py`` uses
that switch to measure the speedup honestly.

Lifecycle (for long-lived services, :mod:`repro.service`)
---------------------------------------------------------

A one-shot batch computation can let the memos grow without bound; a
resident service cannot.  Three lifecycle features keep a warm cache
useful across millions of requests:

* **bounded layers** — :class:`CacheLimits` caps the entry count of the
  expensive layers (saturations, border ABoxes, verdict-row layouts and
  J-match verdicts) with per-layer LRU eviction (:class:`LRUStore`);
  evictions are counted in :attr:`CacheStats.evictions` and the current
  occupancy is reported by :meth:`EvaluationCache.size_report`;
* **snapshot persistence** — :meth:`EvaluationCache.save` writes the
  content-addressed memo state to disk and
  :meth:`EvaluationCache.load` merges it back, so a restarted service
  starts warm.  Only values are persisted, never the injected
  callables, and the snapshot is version-stamped;
* **eviction-aware sharing** — consumers that hold a reference to a
  shared verdict-row store (a live
  :class:`~repro.engine.verdicts.VerdictMatrix`) can ask
  :meth:`EvaluationCache.has_verdict_layout` whether their layout is
  still resident; an evicted layout means the matrix no longer feeds
  the shared store and should be rebuilt rather than reused.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from ..queries.atoms import Atom
from ..queries.evaluation import FactIndex
from ..queries.ucq import query_key

Saturator = Callable[[FrozenSet[Atom]], Iterable[Atom]]

SNAPSHOT_VERSION = 1
SNAPSHOT_MAGIC = "repro-evaluation-cache"


class VerdictPolicy:
    """``cache.enabled``-style switch for the bitset verdict-matrix path.

    When ``enabled`` (the default), :class:`~repro.core.best_describe.QueryScorer`
    computes match profiles through a
    :class:`~repro.engine.verdicts.VerdictMatrix` — one bitset row per
    candidate, criteria as popcount arithmetic.  Disabling it restores
    the legacy per-pair path (``MatchEvaluator.profile``), which the
    differential test suite and ``benchmarks/bench_bitset_criteria.py``
    use as the reference implementation.  Every
    :class:`~repro.obdm.certain_answers.CertainAnswerEngine` owns one
    (``specification.engine.verdicts``), next to its evaluation cache.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled

    def __str__(self):
        return f"VerdictPolicy(enabled={self.enabled})"


class KernelPolicy:
    """Switch for the pool-level match kernel (:mod:`repro.engine.kernel`).

    When ``enabled`` (the default), :class:`~repro.engine.verdicts.VerdictMatrix`
    computes verdict rows through the
    :class:`~repro.engine.kernel.PoolMatchKernel`: all border ABoxes of a
    labeling are merged into one provenance-indexed fact store and a
    whole row (every border column of one candidate) falls out of a
    single homomorphism enumeration, with partial-match bitsets tabled
    in the shared cache and reused across the candidate lattice.
    Disabling it restores the per-pair row construction (one
    ``matches_border`` question per (candidate, border) cell), which the
    differential suite (``tests/engine/test_match_kernel.py``) and
    ``benchmarks/bench_match_kernel.py`` use as the reference.  Every
    :class:`~repro.obdm.certain_answers.CertainAnswerEngine` owns one
    (``specification.engine.kernel``), in the same style as
    ``engine.verdicts``.

    ``kernel.batch`` nests the bit-sliced multi-labeling batch kernel's
    own switch (:class:`BatchKernelPolicy`), so the three layers toggle
    independently: ``kernel.enabled=False`` forces per-pair rows
    regardless of the batch flag, and ``kernel.batch.enabled=False``
    keeps the PR-5 per-labeling kernel as the row builder.
    ``kernel.spill`` nests the out-of-core spill switch
    (:class:`SpillPolicy`) for the unified index's columnar arrays.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.batch = BatchKernelPolicy()
        self.spill = SpillPolicy()

    def __str__(self):
        return (
            f"KernelPolicy(enabled={self.enabled}, batch={self.batch}, "
            f"spill={self.spill})"
        )


class BatchKernelPolicy:
    """Switch for the bit-sliced multi-labeling batch kernel.

    When ``enabled`` (the default) *and* numpy is importable,
    :meth:`~repro.engine.verdicts.VerdictMatrix.build` /
    :meth:`~repro.engine.verdicts.VerdictMatrix.build_batch` route row
    construction through
    :class:`~repro.engine.batch_kernel.MultiLabelingBatchKernel`: one
    :class:`~repro.engine.kernel.UnifiedBorderIndex` over the union of
    all layouts' borders serves every column layout at once, rows are
    packed into a 2-D ``uint64`` word matrix, and the δ1–δ4 confusion
    counts of a whole pool × labeling batch become vectorized popcount
    passes (``numpy.bitwise_count``) instead of per-row Python
    popcounts.  Disabling it restores the per-labeling PR-5 kernel
    dispatch, which ``tests/engine/test_batch_kernel.py`` and
    ``benchmarks/bench_batch_labelings.py`` use as the reference.  The
    numpy dependency stays behind this switch: without numpy the flag is
    inert and every path falls back transparently (see
    :data:`repro.engine.batch_kernel.HAS_NUMPY`).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled

    def __str__(self):
        return f"BatchKernelPolicy(enabled={self.enabled})"


class SpillPolicy:
    """Switch for the unified index's spill-to-disk columnar storage.

    When ``enabled``, every :class:`~repro.engine.kernel.UnifiedBorderIndex`
    built by the match kernel stores its per-predicate argument rows and
    provenance bitsets in memory-mapped temporary files
    (:class:`~repro.engine.kernel.SpillArgsRows` /
    :class:`~repro.engine.kernel.SpillMaskRows`) instead of Python
    lists — same layout, same row ids, same narrowing index, so joins
    and supports are byte-identical while the fact payload no longer
    scales the Python heap.  Off by default: the in-memory lists are
    faster and right whenever the merged borders fit comfortably in
    RAM.  Toggled as ``specification.engine.kernel.spill.enabled``, in
    the same style as every other engine switch;
    ``tests/engine/test_spill_index.py`` pins the on/off differential
    and ``benchmarks/bench_out_of_core.py`` exercises it at scale.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled

    def __str__(self):
        return f"SpillPolicy(enabled={self.enabled})"


class DeltaPolicy:
    """Switch for the fact-level database delta path (database drift).

    When ``enabled`` (the default), a
    :class:`~repro.obdm.database.DatabaseDelta` applied through
    :meth:`~repro.service.ExplanationService.apply_delta` propagates
    *incrementally*: the border computer drops only the cached borders
    the delta's constants can reach, :meth:`EvaluationCache.invalidate_borders`
    evicts only the content-addressed entries whose provenance
    intersects those touched borders (saturations, border ABoxes,
    J-match verdicts, verdict-row layouts and tabled subquery states —
    everything else stays warm), the
    :class:`~repro.engine.kernel.UnifiedBorderIndex` is patched in
    place (:meth:`~repro.engine.kernel.UnifiedBorderIndex.apply_patch`)
    and live :class:`~repro.engine.verdicts.VerdictMatrix` sessions
    migrate surviving columns and re-evaluate only the changed ones
    (:meth:`~repro.engine.verdicts.VerdictMatrix.apply_database_delta`).
    Disabling it restores the legacy behaviour — the full cache is
    dropped and every session cold-rebuilds on its next request — which
    ``tests/engine/test_database_delta.py`` pins as byte-identical to
    the incremental path.  Every
    :class:`~repro.obdm.certain_answers.CertainAnswerEngine` owns one
    (``specification.engine.delta``), in the same style as
    ``engine.verdicts`` / ``engine.kernel``.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled

    def __str__(self):
        return f"DeltaPolicy(enabled={self.enabled})"


class PushdownPolicy:
    """Switch for whole-rewriting SQL pushdown of certain-answer checks.

    When ``enabled`` (the default) and the source database's storage
    backend supports it (:class:`~repro.obdm.backend.SQLiteBackend`
    with ``pushdown=True``), the rewriting strategy of
    :class:`~repro.obdm.certain_answers.CertainAnswerEngine` compiles
    the *entire* perfect rewriting — every UCQ disjunct as one
    self-join ``SELECT``, combined with ``UNION``, the ABox restriction
    as a pushed-down constant filter — and answers
    ``certain_answers`` / ``is_certain_answer`` with a single
    ``sqlite3`` execution instead of O(|disjuncts| × |ABox facts|)
    Python homomorphism search.  Queries or backends the compiler
    cannot handle raise
    :class:`~repro.obdm.backend.PushdownUnsupported` and fall back to
    the legacy in-memory evaluation *per query* (counted in
    ``CacheStats.pushdown_fallbacks``, so a workload quietly running
    the slow path is visible); pushed-down results are memoized in
    :meth:`EvaluationCache.pushdown_result` (``pushdown_hits`` /
    ``pushdown_misses``).  Disabling the policy reproduces the legacy
    path exactly — the differential suite
    (``tests/obdm/test_pushdown_rewriting.py``) pins both byte-
    identical across all four domains.  Every
    :class:`~repro.obdm.certain_answers.CertainAnswerEngine` owns one
    (``specification.engine.pushdown``), in the same style as
    ``engine.cache/verdicts/kernel/delta``.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled

    def __str__(self):
        return f"PushdownPolicy(enabled={self.enabled})"


class CacheStats:
    """Hit/miss/eviction counters per memo layer (benchmark observability).

    Increments go through a lock: ``+=`` on an attribute is a
    read-modify-write that can drop counts when batch-scoring worker
    threads share the cache.
    """

    _COUNTERS = (
        "saturation_hits",
        "saturation_misses",
        "rewriting_hits",
        "rewriting_misses",
        "border_abox_hits",
        "border_abox_misses",
        "match_hits",
        "match_misses",
        "verdict_row_hits",
        "verdict_row_misses",
        "subquery_hits",
        "subquery_misses",
        "support_hits",
        "support_misses",
        "batch_dispatches",
        "batch_rows",
        "evictions",
        "delta_invalidations",
        "pushdown_hits",
        "pushdown_misses",
        "pushdown_fallbacks",
    )

    def __init__(self):
        self._lock = threading.Lock()
        for counter in self._COUNTERS:
            setattr(self, counter, 0)

    def __getstate__(self):
        # Locks cannot cross process boundaries; counters can.  Process-
        # sharded scoring (repro.engine.batch) pickles specifications, so
        # the stats object must survive a round-trip.
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def count(self, *counters: str) -> None:
        """Increment one or more counters under a single lock acquisition.

        Multi-counter bumps (e.g. a request counter plus its outcome
        counter) are atomic as a group: a concurrent reader can never
        observe one without the other, and concurrent writers can never
        lose increments to a read-modify-write race.
        """
        with self._lock:
            for counter in counters:
                setattr(self, counter, getattr(self, counter) + 1)

    def merge(self, deltas: Dict[str, int]) -> None:
        """Fold another stats snapshot (or delta) into these counters.

        Process-sharded scoring computes each shard's counters in the
        worker and ships the *delta* back (see
        :func:`repro.engine.batch._score_shard`); merging them here keeps
        hit/miss/eviction numbers truthful under sharding.  Unknown keys
        are ignored so snapshots from older layouts merge cleanly.
        """
        with self._lock:
            for counter, value in deltas.items():
                if counter in self._COUNTERS and value:
                    setattr(self, counter, getattr(self, counter) + value)

    def as_dict(self) -> Dict[str, int]:
        return {counter: getattr(self, counter) for counter in self._COUNTERS}

    def delta_since(self, baseline: Dict[str, int]) -> Dict[str, int]:
        """Counter increments since *baseline* (an :meth:`as_dict` snapshot)."""
        return {
            counter: getattr(self, counter) - baseline.get(counter, 0)
            for counter in self._COUNTERS
        }

    def __str__(self):
        rendered = ", ".join(f"{key}={value}" for key, value in self.as_dict().items())
        return f"{type(self).__name__}({rendered})"


@dataclass(frozen=True)
class CacheLimits:
    """Per-layer entry caps for a long-lived cache (``None`` = unbounded).

    The rewriting memo stays unbounded on purpose: rewritings are tiny,
    few (one per canonical query signature) and the seed engine already
    kept them forever.  The four bounded layers are the ones that grow
    with traffic — distinct ABoxes, borders, column layouts and (query,
    border) pairs.
    """

    saturations: Optional[int] = None
    border_aboxes: Optional[int] = None
    verdict_layouts: Optional[int] = None
    matches: Optional[int] = None
    subqueries: Optional[int] = None
    """Cap on resident kernel *table sets* (one per unified border index);
    evicting one drops every partial-match bitset tabled under it, the
    same layout-as-eviction-unit discipline as ``verdict_layouts``."""
    pushdowns: Optional[int] = None
    """Cap on memoized pushed-down certain-answer results (one entry per
    ``(rewriting, ABox, binding)`` triple); a derived layer like
    ``subqueries`` — never persisted in snapshots."""

    def __str__(self):
        return (
            f"CacheLimits(saturations={self.saturations}, "
            f"border_aboxes={self.border_aboxes}, "
            f"verdict_layouts={self.verdict_layouts}, matches={self.matches}, "
            f"subqueries={self.subqueries}, pushdowns={self.pushdowns})"
        )


class LRUStore:
    """A thread-safe memo store with optional LRU bounding.

    Backed by an :class:`collections.OrderedDict`; a hit refreshes the
    entry's recency, an insert beyond ``capacity`` evicts the least
    recently used entry and reports it to the shared
    :class:`CacheStats.evictions` counter.  With ``capacity=None`` the
    store behaves like the unbounded dicts it replaced.  Locks are
    dropped on pickling and rebuilt on arrival (same discipline as the
    cache itself).
    """

    def __init__(self, capacity: Optional[int] = None, stats: Optional[CacheStats] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"LRUStore capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._stats = stats
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()

    # -- pickling ---------------------------------------------------------

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- dict-like access -------------------------------------------------

    def get(self, key: Hashable, touch: bool = True):
        with self._lock:
            if key not in self._entries:
                return None
            if touch:
                self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, key: Hashable, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._evict_over_capacity()

    def get_or_create(self, key: Hashable, factory: Callable[[], object]):
        """The entry under *key*, created (and recency-refreshed) atomically."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return self._entries[key]
            value = self._entries[key] = factory()
            self._evict_over_capacity()
            return value

    def get_or_create_cold(self, key: Hashable, factory: Callable[[], object]):
        """Like :meth:`get_or_create`, but without promoting recency.

        A live entry is returned untouched and a missing one is created
        at the *cold* end.  Snapshot loading uses this so persisted
        layouts can never evict hotter live ones (same contract as
        :meth:`merge_missing`); at capacity the cold insert may evict
        itself immediately, which only wastes the merge, never live heat.
        """
        with self._lock:
            if key in self._entries:
                return self._entries[key]
            value = self._entries[key] = factory()
            self._entries.move_to_end(key, last=False)
            self._evict_over_capacity()
            return value

    def _evict_over_capacity(self) -> None:
        # Caller holds the lock.  (CacheStats has its own lock and never
        # takes ours, so counting from here cannot deadlock.)
        if self.capacity is None:
            return
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            if self._stats is not None:
                self._stats.count("evictions")

    def set_capacity(self, capacity: Optional[int]) -> None:
        """Change the bound, evicting LRU entries already over it."""
        if capacity is not None and capacity < 1:
            raise ValueError(f"LRUStore capacity must be >= 1 or None, got {capacity}")
        with self._lock:
            self.capacity = capacity
            self._evict_over_capacity()

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> List[Tuple[Hashable, object]]:
        """A snapshot of (key, value) pairs, oldest first."""
        with self._lock:
            return list(self._entries.items())

    def merge_missing(self, entries: Iterable[Tuple[Hashable, object]]) -> int:
        """Insert entries that are not yet present; returns how many were.

        Used by snapshot loading: live entries always win over persisted
        ones (they are newer), and merged entries respect the capacity
        bound.  Persisted entries enter at the *cold* end of the LRU
        order — when live + persisted overflow the capacity, the
        snapshot overflow evicts itself, never a hotter live entry.
        *entries* is expected oldest-first (an :meth:`items` snapshot);
        front-inserting in reverse preserves that order among the
        persisted cohort, so the hottest persisted entries are the last
        of the cohort to be evicted.
        """
        inserted: List[Hashable] = []
        with self._lock:
            for key, value in reversed(list(entries)):
                if key not in self._entries:
                    self._entries[key] = value
                    self._entries.move_to_end(key, last=False)
                    inserted.append(key)
                    self._evict_over_capacity()
            # Cold inserts may evict themselves (or an earlier cold
            # insert) at capacity; only survivors count as added, so
            # callers are never told the cache is warmer than it is.
            return sum(1 for key in inserted if key in self._entries)

    def discard_where(self, predicate: Callable[[Hashable, object], bool]) -> int:
        """Drop every entry matching *predicate*; returns how many did.

        The delta-invalidation primitive: unlike capacity eviction this
        is *targeted* (entries whose provenance a database delta can
        touch), so it does not count into ``evictions``.
        """
        with self._lock:
            doomed = [key for key, value in self._entries.items() if predicate(key, value)]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class EvaluationCache:
    """Content-addressed memoization shared by all evaluators of one ``J``.

    Parameters
    ----------
    saturator:
        Maps a frozenset of ABox facts to the saturated (chased) fact
        set.  Called at most once per distinct ABox while enabled.
    rewriter:
        Maps an ontology query to its perfect rewriting.  Called at most
        once per canonical query signature (always memoized; the seed
        engine already cached rewritings, so disabling the cache does
        not disable this layer).
    limits:
        Optional :class:`CacheLimits` bounding the hot layers with LRU
        eviction; reconfigurable later via :meth:`configure_limits`.
    """

    def __init__(
        self,
        saturator: Saturator,
        rewriter: Callable,
        enabled: bool = True,
        limits: Optional[CacheLimits] = None,
    ):
        self._saturator = saturator
        self._rewriter = rewriter
        self.enabled = enabled
        self.stats = CacheStats()
        self.limits = limits or CacheLimits()
        self._saturated = LRUStore(self.limits.saturations, self.stats)
        self._saturation_locks: Dict[Hashable, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self._rewritings: Dict[Tuple, object] = {}
        self._border_aboxes = LRUStore(self.limits.border_aboxes, self.stats)
        self._matches = LRUStore(self.limits.matches, self.stats)
        self._verdict_rows = LRUStore(self.limits.verdict_layouts, self.stats)
        self._subqueries = LRUStore(self.limits.subqueries, self.stats)
        self._pushdowns = LRUStore(self.limits.pushdowns, self.stats)

    # -- pickling ---------------------------------------------------------

    def __getstate__(self):
        # Process-sharded scoring ships whole specifications to worker
        # processes.  Locks are recreated on arrival; every memo entry is
        # a content-addressed value, so warm entries that survive the
        # pickle round-trip stay valid in the worker.
        state = dict(self.__dict__)
        del state["_saturation_locks"]
        del state["_locks_guard"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._saturation_locks = {}
        self._locks_guard = threading.Lock()

    # -- lifecycle --------------------------------------------------------

    def configure_limits(self, limits: CacheLimits) -> None:
        """Apply new per-layer caps, evicting LRU entries already over them."""
        self.limits = limits
        self._saturated.set_capacity(limits.saturations)
        self._border_aboxes.set_capacity(limits.border_aboxes)
        self._matches.set_capacity(limits.matches)
        self._verdict_rows.set_capacity(limits.verdict_layouts)
        self._subqueries.set_capacity(limits.subqueries)
        self._pushdowns.set_capacity(limits.pushdowns)

    def size_report(self) -> Dict[str, int]:
        """Entry counts per layer (verdict rows also summed across layouts)."""
        return {
            "saturations": len(self._saturated),
            "rewritings": len(self._rewritings),
            "border_aboxes": len(self._border_aboxes),
            "matches": len(self._matches),
            "verdict_layouts": len(self._verdict_rows),
            "verdict_rows": sum(len(rows) for _, rows in self._verdict_rows.items()),
            "subquery_indexes": len(self._subqueries),
            "subquery_states": sum(len(table) for _, table in self._subqueries.items()),
            "pushdown_results": len(self._pushdowns),
        }

    # -- persistence ------------------------------------------------------

    def snapshot_state(self, fingerprint: Optional[str] = None) -> Dict[str, object]:
        """The persistable memo state (values only, never the callables)."""
        return {
            "magic": SNAPSHOT_MAGIC,
            "version": SNAPSHOT_VERSION,
            "fingerprint": fingerprint,
            "saturated": self._saturated.items(),
            "rewritings": dict(self._rewritings),
            "border_aboxes": self._border_aboxes.items(),
            "matches": self._matches.items(),
            "verdict_rows": [
                (layout, dict(rows)) for layout, rows in self._verdict_rows.items()
            ],
        }

    def save(self, path, fingerprint: Optional[str] = None) -> Dict[str, int]:
        """Persist the memo state to *path*; returns the size report saved.

        *fingerprint* (when given) stamps the snapshot with the identity
        of the specification the memos were computed under, so
        :meth:`load` can refuse a snapshot from a different one.

        The write is *atomic at the published path*: the state is dumped
        to a same-directory temporary file which is ``os.replace``\\ d
        into place only after the dump (and an fsync) completed.  A
        writer killed mid-``pickle.dump`` — the normal way a replica
        dies while shipping its snapshot — can therefore never leave a
        truncated artifact where a booting replica will look for one;
        the previous snapshot, if any, survives untouched.
        """
        path = os.fspath(path)
        directory = os.path.dirname(path) or "."
        handle, temp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(self.snapshot_state(fingerprint), stream)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(temp_path, path)
        except BaseException:
            # Never leave the partial dump behind: the temp file is
            # garbage by construction (it was not replaced into place).
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return self.size_report()

    def load(self, path, fingerprint: Optional[str] = None) -> Dict[str, int]:
        """Merge a saved snapshot back in; returns entries *surviving* per layer.

        Live entries win over persisted ones, merged entries respect the
        configured limits (entering at the cold end of each layer, so
        snapshot overflow evicts itself, never live heat), and
        verdict-row stores merge row-by-row so a layout that is warm
        both on disk and in memory keeps the union of its rows.  Keys
        are content-addressed *within one specification*: when both
        sides supply a *fingerprint* it must match, because a snapshot
        computed under a different ontology or mapping maps equal keys
        to different values (``CertainAnswerEngine.load_cache`` always
        passes one).
        """
        try:
            with open(path, "rb") as handle:
                state = pickle.load(handle)
        except (
            EOFError,  # truncated mid-stream (pre-atomic-save artifacts)
            pickle.UnpicklingError,  # garbage bytes / corrupted frames
            AttributeError,  # foreign-class pickle: class no longer resolvable
            ImportError,  # foreign-class pickle: module no longer importable
            IndexError,
            KeyError,
            UnicodeDecodeError,
        ) as error:
            # Same refusal path as a fingerprint mismatch: a warm-boot
            # replica catches ValueError and degrades to a cold start
            # instead of crashing on a corrupt or foreign artifact.
            raise ValueError(
                f"{path} is not a readable evaluation-cache snapshot "
                f"({type(error).__name__}: {error}); refusing it"
            ) from error
        if not isinstance(state, dict) or state.get("magic") != SNAPSHOT_MAGIC:
            raise ValueError(f"{path} is not an evaluation-cache snapshot")
        if state.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {state.get('version')!r} is not supported "
                f"(expected {SNAPSHOT_VERSION})"
            )
        stamped = state.get("fingerprint")
        if fingerprint is not None and stamped is not None and stamped != fingerprint:
            raise ValueError(
                f"{path} was saved against a different specification "
                "(fingerprint mismatch); loading it would serve stale memo values"
            )
        rewritings_added = 0
        for key, value in state["rewritings"].items():
            if key not in self._rewritings:
                self._rewritings[key] = value
                rewritings_added += 1
        if not self.enabled:
            # The hot layers short-circuit on ``enabled`` and would never
            # serve merged entries — reporting them as added would make a
            # cold cache look warm.  Only the rewriting memo (which stays
            # active when the cache is disabled) is worth merging.
            return {
                "saturations": 0,
                "border_aboxes": 0,
                "matches": 0,
                "rewritings": rewritings_added,
                "verdict_rows": 0,
            }
        added = {
            "saturations": self._saturated.merge_missing(state["saturated"]),
            "border_aboxes": self._border_aboxes.merge_missing(state["border_aboxes"]),
            "matches": self._matches.merge_missing(state["matches"]),
        }
        added["rewritings"] = rewritings_added
        merged_layouts = []
        # Reversed for the same cohort-order reason as merge_missing.
        for layout, rows in reversed(state["verdict_rows"]):
            live = self._verdict_rows.get_or_create_cold(layout, dict)
            merged = 0
            for key, row in rows.items():
                if key not in live:
                    live[key] = row
                    merged += 1
            merged_layouts.append((layout, live, merged))
        # Like the scalar layers: only rows whose layout survived the
        # cold-end insert (and is still the same store) count as added.
        added["verdict_rows"] = sum(
            merged
            for layout, live, merged in merged_layouts
            if self._verdict_rows.get(layout, touch=False) is live
        )
        return added

    # -- saturation -------------------------------------------------------

    def saturated_index(self, facts: FrozenSet[Atom], key: Optional[Tuple] = None) -> FactIndex:
        """Index over the chase of *facts*, computed at most once per key.

        *key* defaults to the fact set itself; callers whose saturator
        reads extra live configuration (e.g. the chase depth bound) must
        fold that configuration into the key so reconfiguring never
        serves a stale saturation.
        """
        memo_key = facts if key is None else key
        if not self.enabled:
            self.stats.count("saturation_misses")
            return FactIndex(self._saturator(facts))
        index = self._saturated.get(memo_key)
        if index is not None:
            self.stats.count("saturation_hits")
            return index
        with self._locks_guard:
            lock = self._saturation_locks.setdefault(memo_key, threading.Lock())
        with lock:
            index = self._saturated.get(memo_key)
            if index is None:
                self.stats.count("saturation_misses")
                index = FactIndex(self._saturator(facts))
                self._saturated.put(memo_key, index)
            else:
                self.stats.count("saturation_hits")
        # The per-key lock has done its duty (the entry is memoized); keep
        # the lock table from growing with every distinct key a resident
        # service ever saturates.  A thread still holding this lock object
        # re-checks the memo inside it, and a later recreation can at
        # worst duplicate one idempotent chase.
        with self._locks_guard:
            self._saturation_locks.pop(memo_key, None)
        return index

    # -- rewritings -------------------------------------------------------

    def rewriting(self, query):
        """Perfect rewriting of *query*, memoized by canonical signature."""
        key = query_key(query)
        rewriting = self._rewritings.get(key)
        if rewriting is None:
            self.stats.count("rewriting_misses")
            rewriting = self._rewriter(query)
            self._rewritings[key] = rewriting
        else:
            self.stats.count("rewriting_hits")
        return rewriting

    # -- border ABoxes ----------------------------------------------------

    def border_abox(self, atoms: FrozenSet[Atom], compute: Callable[[], object]):
        """Retrieved ABox of a border sub-database, keyed by its atoms."""
        if not self.enabled:
            self.stats.count("border_abox_misses")
            return compute()
        abox = self._border_aboxes.get(atoms)
        if abox is None:
            self.stats.count("border_abox_misses")
            abox = compute()
            self._border_aboxes.put(atoms, abox)
        else:
            self.stats.count("border_abox_hits")
        return abox

    # -- J-match verdicts -------------------------------------------------

    def match(self, key: Tuple, compute: Callable[[], bool]) -> bool:
        """Memoized J-match verdict for a (query signature, border) key."""
        if not self.enabled:
            self.stats.count("match_misses")
            return compute()
        verdict = self._matches.get(key)
        if verdict is None:
            self.stats.count("match_misses")
            verdict = compute()
            self._matches.put(key, verdict)
        else:
            self.stats.count("match_hits")
        return verdict

    # -- verdict rows -----------------------------------------------------

    def verdict_rows(self, columns_key: Hashable) -> Dict[Tuple, int]:
        """The shared row store of one column layout (query key → bitset).

        A :class:`~repro.engine.verdicts.VerdictMatrix` over the same
        border columns (same labeling, radius and database content, by
        construction of the key) shares one dict of rows, so candidate
        verdicts computed by one scorer are reused by every later scorer
        — across criteria sets, scoring expressions and labelings that
        happen to induce the same borders.  With the cache disabled each
        matrix gets a private dict (rows are still computed only once
        per matrix, mirroring how the per-pair path recomputes verdicts
        per profile call).

        Under a ``verdict_layouts`` limit the *layout* is the eviction
        unit: evicting one drops all its rows at once, and any live
        matrix holding the evicted dict stops feeding the shared store
        (see :meth:`has_verdict_layout`).
        """
        if not self.enabled:
            return {}
        return self._verdict_rows.get_or_create(columns_key, dict)

    def touch_verdict_layout(self, columns_key: Hashable) -> bool:
        """Refresh an existing layout's LRU recency; ``False`` if evicted.

        Never *creates* an entry: re-registering an evicted layout with a
        fresh empty dict would make a disconnected matrix look live
        forever while an orphan occupied a ``verdict_layouts`` slot.
        """
        if not self.enabled:
            return False
        return self._verdict_rows.get(columns_key, touch=True) is not None

    def has_verdict_layout(self, columns_key: Hashable) -> bool:
        """Whether a layout's row store is still resident (no recency touch).

        The liveness probe behind
        :meth:`~repro.engine.verdicts.VerdictMatrix.is_live`: consumers
        that cached a matrix across requests call this before reusing it,
        and rebuild when eviction has disconnected their row store.
        """
        return self.enabled and self._verdict_rows.get(columns_key, touch=False) is not None

    # -- kernel subquery tables -------------------------------------------

    def subquery_tables(self, index_key: Hashable) -> Dict[Tuple, object]:
        """The tabled partial-match states of one unified border index.

        The pool-level match kernel (:mod:`repro.engine.kernel`) memoizes
        the partial-match bitsets of canonical atom prefixes here, keyed
        by the content-addressed identity of its merged border index, so
        candidates across the bottom-up lattice that share a prefix pay
        for it once — across kernels, scorers and requests over the same
        borders.  Hit/miss traffic is counted by the kernel in
        ``stats.subquery_hits`` / ``stats.subquery_misses``.  Like
        verdict rows, the tables are derived, cheap-to-recompute state:
        they are *not* persisted by :meth:`save` (snapshots keep their
        existing layout and version), and with the cache disabled each
        kernel gets a private dict (tabling still dedups within one
        kernel build).

        Under a ``subqueries`` limit the *index* is the eviction unit:
        evicting one drops all its tabled prefixes at once.
        """
        if not self.enabled:
            return {}
        return self._subqueries.get_or_create(index_key, dict)

    # -- pushed-down certain answers --------------------------------------

    def pushdown_result(self, key: Hashable, compute: Callable[[], object]) -> object:
        """Memoize one pushed-down certain-answer result.

        *key* is content-addressed by the rewriting's
        :func:`~repro.queries.ucq.query_key`, the ABox fact set the SQL
        was restricted to, and (for membership checks) the normalized
        answer tuple — so a drifted database or a different border ABox
        can never be served a stale result; its old entries simply become
        unreachable and age out of the LRU.  Like verdict rows and
        subquery tables this is a *derived* layer: never persisted by
        :meth:`save`, private no-op when the cache is disabled.  Traffic
        is counted in ``stats.pushdown_hits`` / ``stats.pushdown_misses``
        (a miss is an actual ``sqlite3`` execution); *compute* failures
        (e.g. :class:`~repro.obdm.backend.PushdownUnsupported`) propagate
        uncached and uncounted so the caller's fallback accounting stays
        truthful.
        """
        if not self.enabled:
            value = compute()
            self.stats.count("pushdown_misses")
            return value
        hit = self._pushdowns.get(key)
        if hit is not None:
            self.stats.count("pushdown_hits")
            return hit[0]
        value = compute()
        self.stats.count("pushdown_misses")
        self._pushdowns.put(key, (value,))
        return value

    # -- maintenance ------------------------------------------------------

    def invalidate_borders(self, touched, constants=frozenset()) -> Dict[str, int]:
        """Evict entries whose provenance intersects the *touched* borders.

        The delta-invalidation core of the database-drift path.  All
        keys in this cache are content-addressed *values*, so entries
        surviving a database mutation can never be stale — what this
        drops is garbage that no future key will ever address again
        (the old borders no longer exist), plus the memory it pins:

        * **border ABoxes** keyed by a touched border's atom set;
        * **saturations** of those ABoxes (their fact sets are collected
          *before* the ABoxes are dropped) and of any cached ABox that
          mentions a constant of the delta (covers the full-database
          retrieval, whose next key differs anyway);
        * **J-match verdicts** keyed by (query signature, touched border);
        * **verdict-row layouts** whose column borders intersect the
          touched set;
        * **tabled subquery states** of any unified border index built
          over a touched border.

        *touched* is the border set returned by
        :meth:`~repro.core.border.BorderComputer.apply_delta`;
        *constants* the delta's constants.  Returns dropped entries per
        layer; the total is counted into ``stats.delta_invalidations``.
        """
        touched = frozenset(touched)
        constants = frozenset(constants)
        touched_atom_sets = {border.atoms for border in touched}

        def mentions_delta(facts) -> bool:
            return any(
                not constants.isdisjoint(atom.constants()) for atom in facts
            )

        stale_fact_sets = set()
        for atoms in touched_atom_sets:
            abox = self._border_aboxes.get(atoms, touch=False)
            facts = getattr(abox, "facts", None)
            if facts is not None:
                stale_fact_sets.add(frozenset(facts))

        def saturation_stale(key, _value) -> bool:
            facts = key[0] if isinstance(key, tuple) else key
            if not isinstance(facts, frozenset):
                return False
            return facts in stale_fact_sets or (constants and mentions_delta(facts))

        def layout_touched(layout_key) -> bool:
            # ("verdict_columns", positive_count, radius, borders)
            if not (isinstance(layout_key, tuple) and len(layout_key) >= 4):
                return False
            borders = layout_key[3]
            return isinstance(borders, tuple) and not touched.isdisjoint(borders)

        dropped = {
            "border_aboxes": self._border_aboxes.discard_where(
                lambda key, _v: key in touched_atom_sets
            ),
            "saturations": self._saturated.discard_where(saturation_stale),
            "matches": self._matches.discard_where(
                lambda key, _v: isinstance(key, tuple)
                and len(key) == 2
                and key[1] in touched
            ),
            "verdict_layouts": self._verdict_rows.discard_where(
                lambda key, _v: layout_touched(key)
            ),
            "subqueries": self._subqueries.discard_where(
                # ("kernel_tables", columns_key, bits, strategy, depth)
                lambda key, _v: isinstance(key, tuple)
                and len(key) >= 2
                and layout_touched(key[1])
            ),
            "pushdowns": self._pushdowns.discard_where(
                # ("pushdown", query_key, abox_facts, binding?) — the fact
                # set is the content address; drop entries whose ABox was a
                # touched border's or mentions a delta constant (the rest
                # stay addressable and correct).
                lambda key, _v: isinstance(key, tuple)
                and len(key) >= 3
                and isinstance(key[2], frozenset)
                and (
                    key[2] in stale_fact_sets
                    or (constants and mentions_delta(key[2]))
                )
            ),
        }
        total = sum(dropped.values())
        if total:
            self.stats.merge({"delta_invalidations": total})
        return dropped

    def clear(self) -> None:
        """Drop every memoized entry (counters are kept)."""
        with self._locks_guard:
            self._saturated.clear()
            self._saturation_locks.clear()
            self._rewritings.clear()
            self._border_aboxes.clear()
            self._matches.clear()
            self._verdict_rows.clear()
            self._subqueries.clear()
            self._pushdowns.clear()

    def __str__(self):
        return (
            f"EvaluationCache(enabled={self.enabled}, "
            f"saturated={len(self._saturated)}, rewritings={len(self._rewritings)}, "
            f"border_aboxes={len(self._border_aboxes)}, matches={len(self._matches)}, "
            f"verdict_layouts={len(self._verdict_rows)})"
        )
