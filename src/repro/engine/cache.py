"""The shared evaluation cache behind certain-answer computation.

The best-description search asks the same expensive questions over and
over: *saturate this border's ABox*, *rewrite this query*, *does this
query J-match this border?*.  The seed engine recomputed the first on
every chase-strategy call and the last on every profile evaluation.
:class:`EvaluationCache` memoizes all three layers behind one object
that is shared by every evaluator working against the same OBDM
specification:

* **saturated chase indexes** — keyed by the ABox's fact set, so each
  distinct (border or full) ABox is chased exactly once;
* **perfect rewritings** — keyed by the query's canonical signature
  (:func:`repro.queries.ucq.query_key`);
* **retrieved border ABoxes** — keyed by the border's source atoms;
* **J-match verdicts** — keyed by query signature × border (the border
  value embeds its tuple, radius and atom layers, so keys are
  content-addressed and stay valid even if the source database mutates);
* **verdict-matrix rows** — bitsets of per-border verdicts, keyed by
  column layout × query signature (see :mod:`repro.engine.verdicts`).

All keys are content-addressed (frozen values, not object identities),
which is what makes the cache safely shareable between evaluators,
labelings and worker threads: a hit can never observe stale state, only
skip recomputation.  Mutating dict entries under CPython is atomic, and
the expensive saturation path additionally takes a per-key lock so
concurrent scorers do not chase the same ABox twice.

The computation itself is *injected* (the cache never imports the chase
or the rewriter), keeping this module at the bottom of the dependency
stack: ``repro.obdm.certain_answers`` plugs in its own saturator and
rewriter when it builds its cache.

Setting :attr:`EvaluationCache.enabled` to ``False`` restores the
seed's per-call behaviour for the hot layers (saturation, border-ABox
retrieval, J-matching) while keeping the rewriting memo, which the seed
already had; the benchmark ``benchmarks/bench_batch_explain.py`` uses
that switch to measure the speedup honestly.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

from ..queries.atoms import Atom
from ..queries.evaluation import FactIndex
from ..queries.ucq import query_key

Saturator = Callable[[FrozenSet[Atom]], Iterable[Atom]]


class VerdictPolicy:
    """``cache.enabled``-style switch for the bitset verdict-matrix path.

    When ``enabled`` (the default), :class:`~repro.core.best_describe.QueryScorer`
    computes match profiles through a
    :class:`~repro.engine.verdicts.VerdictMatrix` — one bitset row per
    candidate, criteria as popcount arithmetic.  Disabling it restores
    the legacy per-pair path (``MatchEvaluator.profile``), which the
    differential test suite and ``benchmarks/bench_bitset_criteria.py``
    use as the reference implementation.  Every
    :class:`~repro.obdm.certain_answers.CertainAnswerEngine` owns one
    (``specification.engine.verdicts``), next to its evaluation cache.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled

    def __str__(self):
        return f"VerdictPolicy(enabled={self.enabled})"


class CacheStats:
    """Hit/miss counters per memo layer (observability for benchmarks).

    Increments go through a lock: ``+=`` on an attribute is a
    read-modify-write that can drop counts when batch-scoring worker
    threads share the cache.
    """

    _COUNTERS = (
        "saturation_hits",
        "saturation_misses",
        "rewriting_hits",
        "rewriting_misses",
        "border_abox_hits",
        "border_abox_misses",
        "match_hits",
        "match_misses",
        "verdict_row_hits",
        "verdict_row_misses",
    )

    def __init__(self):
        self._lock = threading.Lock()
        for counter in self._COUNTERS:
            setattr(self, counter, 0)

    def __getstate__(self):
        # Locks cannot cross process boundaries; counters can.  Process-
        # sharded scoring (repro.engine.batch) pickles specifications, so
        # the stats object must survive a round-trip.
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def count(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def as_dict(self) -> Dict[str, int]:
        return {counter: getattr(self, counter) for counter in self._COUNTERS}

    def __str__(self):
        rendered = ", ".join(f"{key}={value}" for key, value in self.as_dict().items())
        return f"CacheStats({rendered})"


class EvaluationCache:
    """Content-addressed memoization shared by all evaluators of one ``J``.

    Parameters
    ----------
    saturator:
        Maps a frozenset of ABox facts to the saturated (chased) fact
        set.  Called at most once per distinct ABox while enabled.
    rewriter:
        Maps an ontology query to its perfect rewriting.  Called at most
        once per canonical query signature (always memoized; the seed
        engine already cached rewritings, so disabling the cache does
        not disable this layer).
    """

    def __init__(self, saturator: Saturator, rewriter: Callable, enabled: bool = True):
        self._saturator = saturator
        self._rewriter = rewriter
        self.enabled = enabled
        self.stats = CacheStats()
        self._saturated: Dict[Hashable, FactIndex] = {}
        self._saturation_locks: Dict[Hashable, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self._rewritings: Dict[Tuple, object] = {}
        self._border_aboxes: Dict[FrozenSet[Atom], object] = {}
        self._matches: Dict[Tuple, bool] = {}
        self._verdict_rows: Dict[Hashable, Dict[Tuple, int]] = {}

    # -- pickling ---------------------------------------------------------

    def __getstate__(self):
        # Process-sharded scoring ships whole specifications to worker
        # processes.  Locks are recreated on arrival; every memo entry is
        # a content-addressed value, so warm entries that survive the
        # pickle round-trip stay valid in the worker.
        state = dict(self.__dict__)
        del state["_saturation_locks"]
        del state["_locks_guard"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._saturation_locks = {}
        self._locks_guard = threading.Lock()

    # -- saturation -------------------------------------------------------

    def saturated_index(self, facts: FrozenSet[Atom], key: Optional[Tuple] = None) -> FactIndex:
        """Index over the chase of *facts*, computed at most once per key.

        *key* defaults to the fact set itself; callers whose saturator
        reads extra live configuration (e.g. the chase depth bound) must
        fold that configuration into the key so reconfiguring never
        serves a stale saturation.
        """
        memo_key = facts if key is None else key
        if not self.enabled:
            self.stats.count("saturation_misses")
            return FactIndex(self._saturator(facts))
        index = self._saturated.get(memo_key)
        if index is not None:
            self.stats.count("saturation_hits")
            return index
        with self._locks_guard:
            lock = self._saturation_locks.setdefault(memo_key, threading.Lock())
        with lock:
            index = self._saturated.get(memo_key)
            if index is None:
                self.stats.count("saturation_misses")
                index = FactIndex(self._saturator(facts))
                self._saturated[memo_key] = index
            else:
                self.stats.count("saturation_hits")
        return index

    # -- rewritings -------------------------------------------------------

    def rewriting(self, query):
        """Perfect rewriting of *query*, memoized by canonical signature."""
        key = query_key(query)
        rewriting = self._rewritings.get(key)
        if rewriting is None:
            self.stats.count("rewriting_misses")
            rewriting = self._rewriter(query)
            self._rewritings[key] = rewriting
        else:
            self.stats.count("rewriting_hits")
        return rewriting

    # -- border ABoxes ----------------------------------------------------

    def border_abox(self, atoms: FrozenSet[Atom], compute: Callable[[], object]):
        """Retrieved ABox of a border sub-database, keyed by its atoms."""
        if not self.enabled:
            self.stats.count("border_abox_misses")
            return compute()
        abox = self._border_aboxes.get(atoms)
        if abox is None:
            self.stats.count("border_abox_misses")
            abox = compute()
            self._border_aboxes[atoms] = abox
        else:
            self.stats.count("border_abox_hits")
        return abox

    # -- J-match verdicts -------------------------------------------------

    def match(self, key: Tuple, compute: Callable[[], bool]) -> bool:
        """Memoized J-match verdict for a (query signature, border) key."""
        if not self.enabled:
            self.stats.count("match_misses")
            return compute()
        verdict = self._matches.get(key)
        if verdict is None:
            self.stats.count("match_misses")
            verdict = compute()
            self._matches[key] = verdict
        else:
            self.stats.count("match_hits")
        return verdict

    # -- verdict rows -----------------------------------------------------

    def verdict_rows(self, columns_key: Hashable) -> Dict[Tuple, int]:
        """The shared row store of one column layout (query key → bitset).

        A :class:`~repro.engine.verdicts.VerdictMatrix` over the same
        border columns (same labeling, radius and database content, by
        construction of the key) shares one dict of rows, so candidate
        verdicts computed by one scorer are reused by every later scorer
        — across criteria sets, scoring expressions and labelings that
        happen to induce the same borders.  With the cache disabled each
        matrix gets a private dict (rows are still computed only once
        per matrix, mirroring how the per-pair path recomputes verdicts
        per profile call).
        """
        if not self.enabled:
            return {}
        # setdefault is atomic under CPython: concurrent scorers of the
        # same layout always end up sharing one dict.
        return self._verdict_rows.setdefault(columns_key, {})

    # -- maintenance ------------------------------------------------------

    def clear(self) -> None:
        """Drop every memoized entry (counters are kept)."""
        with self._locks_guard:
            self._saturated.clear()
            self._saturation_locks.clear()
            self._rewritings.clear()
            self._border_aboxes.clear()
            self._matches.clear()
            self._verdict_rows.clear()

    def __str__(self):
        return (
            f"EvaluationCache(enabled={self.enabled}, "
            f"saturated={len(self._saturated)}, rewritings={len(self._rewritings)}, "
            f"border_aboxes={len(self._border_aboxes)}, matches={len(self._matches)}, "
            f"verdict_layouts={len(self._verdict_rows)})"
        )
