"""Bitset verdict matrices for the criteria layer.

The best-description search needs, for every candidate query, the set of
border individuals the query J-matches (Definition 3.4).  The legacy
path asks one (candidate, individual) question at a time and stores the
answers as frozensets; every criterion evaluation then re-walks those
sets.  This module packs the same information into *bit matrices*:

* **columns** — the border individuals of one labeling, positives first
  then negatives, in a deterministic order (:class:`BorderColumns`);
* **rows** — one Python int per candidate query, bit ``i`` set iff the
  query J-matches the border of column ``i`` (:class:`VerdictMatrix`);
* **profiles** — :class:`BitsetVerdictProfile` exposes the familiar
  :class:`~repro.core.matching.MatchProfile` interface on top of a row,
  computing the confusion-matrix counts with ``int.bit_count`` so the
  criteria δ1–δ4 become popcount arithmetic (δ5/δ6 were arithmetic
  already).

Rows are built in **one pass over the border ABoxes per labeling**:
the matrix iterates borders in the outer loop and candidates in the
inner loop, so each border's retrieved ABox (and, under the chase
strategy, its saturation) is hot in the shared
:class:`~repro.engine.cache.EvaluationCache` while every candidate's
verdict against it is recorded.  Individual verdicts still flow through
``MatchEvaluator.matches_border``, so the J-match memo layer is reused
unchanged and the bitset path is *verdict-for-verdict identical* to the
legacy path — the differential suite in
``tests/engine/test_verdict_matrix.py`` pins that across all four
domain ontologies.

UCQ rows are the bitwise OR of their disjuncts' rows.  That is sound
for both answering strategies: the chase path evaluates a UCQ
disjunct-by-disjunct (``UnionOfConjunctiveQueries.contains_tuple``) and
the rewriting path rewrites a UCQ into the deduplicated union of its
disjuncts' rewritings, so a UCQ J-matches a border iff some disjunct
does.  This makes the greedy union construction of
:meth:`~repro.core.best_describe.BestDescriptionSearch.best_ucq`
popcount-cheap once the CQ rows exist.

Completed rows are memoized in the specification's shared cache under
the column layout's content-addressed key
(:meth:`EvaluationCache.verdict_rows`), so scoring the same pool under
a different (Δ, Z) configuration — or from a different scorer — never
re-runs a J-match.  The whole path is toggled by
``specification.engine.verdicts.enabled``
(:class:`~repro.engine.cache.VerdictPolicy`), mirroring the
``engine.cache.enabled`` switch.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core.border import Border
from ..core.labeling import ConstantTuple, Labeling, normalize_tuple
from ..core.matching import MatchEvaluator, MatchProfile, MatchStatistics
from ..obdm.certain_answers import OntologyQuery
from ..queries.cq import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries, query_key


def _sorted_tuples(raws) -> Tuple[ConstantTuple, ...]:
    return tuple(sorted({normalize_tuple(raw) for raw in raws}, key=repr))


class BorderColumns:
    """The deterministic column layout of one (labeling, radius) pair.

    Columns ``0 .. P-1`` are the positives of ``λ`` and columns
    ``P .. P+N-1`` the negatives, each sorted by ``repr`` of the
    normalized tuple, so two scorers over the same labeling always agree
    on the bit positions.  ``borders`` may be empty for synthetic
    layouts (property tests build profiles without a database); matrices
    require it to be populated.
    """

    __slots__ = (
        "positive_tuples",
        "negative_tuples",
        "borders",
        "radius",
        "_key",
    )

    def __init__(
        self,
        positive_tuples: Sequence[ConstantTuple],
        negative_tuples: Sequence[ConstantTuple],
        borders: Sequence[Border] = (),
        radius: int = 0,
    ):
        self.positive_tuples = tuple(positive_tuples)
        self.negative_tuples = tuple(negative_tuples)
        self.borders = tuple(borders)
        self.radius = radius
        self._key = None

    @staticmethod
    def from_labeling(
        evaluator: MatchEvaluator, labeling: Labeling, radius: Optional[int] = None
    ) -> "BorderColumns":
        """Columns (and their borders) for one labeling, computed once."""
        radius = evaluator.radius if radius is None else radius
        positives = _sorted_tuples(labeling.positives)
        negatives = _sorted_tuples(labeling.negatives)
        borders = [evaluator.border_of(raw, radius) for raw in positives + negatives]
        return BorderColumns(positives, negatives, borders, radius)

    @staticmethod
    def from_tuples(
        positives: Iterable, negatives: Iterable
    ) -> "BorderColumns":
        """A border-less layout (enough for building synthetic profiles)."""
        return BorderColumns(_sorted_tuples(positives), _sorted_tuples(negatives))

    # -- geometry ---------------------------------------------------------

    @property
    def tuples(self) -> Tuple[ConstantTuple, ...]:
        return self.positive_tuples + self.negative_tuples

    @property
    def positive_count(self) -> int:
        return len(self.positive_tuples)

    @property
    def negative_count(self) -> int:
        return len(self.negative_tuples)

    @property
    def width(self) -> int:
        return self.positive_count + self.negative_count

    @property
    def positives_mask(self) -> int:
        """Bits of the positive columns: ``0 .. P-1``."""
        return (1 << self.positive_count) - 1

    @property
    def negatives_mask(self) -> int:
        """Bits of the negative columns: ``P .. P+N-1``."""
        return ((1 << self.negative_count) - 1) << self.positive_count

    def key(self) -> Tuple:
        """Content-addressed cache key of this layout.

        Borders embed their tuple, radius and atom layers, so the key
        changes whenever the underlying database content (and hence any
        verdict) could change — the same addressing discipline as the
        J-match memo.
        """
        if self._key is None:
            self._key = (
                "verdict_columns",
                self.positive_count,
                self.radius,
                self.borders,
            )
        return self._key

    def __len__(self) -> int:
        return self.width

    def __str__(self):
        return (
            f"BorderColumns(+{self.positive_count}/-{self.negative_count}, "
            f"radius={self.radius})"
        )


class BitsetVerdictProfile(MatchStatistics):
    """A match profile backed by one matrix row instead of frozensets.

    All confusion-matrix counts are popcounts (``int.bit_count``) over
    the row masked by the column layout; the frozenset views of
    :class:`~repro.core.matching.MatchProfile` are materialized lazily
    and only when actually accessed (reports only render counts).
    Equality, hashing and pickling all go through the materialized
    profile, so bitset-backed and set-backed profiles of the same
    verdicts compare equal and pickle to plain ``MatchProfile`` objects
    (which is what process-sharded workers send back).
    """

    __slots__ = (
        "row",
        "columns",
        "true_positives",
        "false_negatives",
        "false_positives",
        "true_negatives",
        "_materialized",
    )

    def __init__(self, row: int, columns: BorderColumns):
        self.row = row
        self.columns = columns
        # The popcounts: every criterion evaluation reads these several
        # times, so they are computed once up front (two bit_count calls)
        # rather than per property access.
        self.true_positives = (row & columns.positives_mask).bit_count()
        self.false_negatives = columns.positive_count - self.true_positives
        self.false_positives = (row & columns.negatives_mask).bit_count()
        self.true_negatives = columns.negative_count - self.false_positives
        self._materialized: Optional[MatchProfile] = None

    # -- set views (lazy) -------------------------------------------------

    def materialize(self) -> MatchProfile:
        """The equivalent set-backed :class:`MatchProfile` (cached)."""
        if self._materialized is None:
            matched_pos: List[ConstantTuple] = []
            unmatched_pos: List[ConstantTuple] = []
            matched_neg: List[ConstantTuple] = []
            unmatched_neg: List[ConstantTuple] = []
            split = self.columns.positive_count
            for bit, value in enumerate(self.columns.tuples):
                hit = self.row >> bit & 1
                if bit < split:
                    (matched_pos if hit else unmatched_pos).append(value)
                else:
                    (matched_neg if hit else unmatched_neg).append(value)
            self._materialized = MatchProfile(
                positives_matched=frozenset(matched_pos),
                positives_unmatched=frozenset(unmatched_pos),
                negatives_matched=frozenset(matched_neg),
                negatives_unmatched=frozenset(unmatched_neg),
            )
        return self._materialized

    @property
    def positives_matched(self) -> FrozenSet[ConstantTuple]:
        return self.materialize().positives_matched

    @property
    def positives_unmatched(self) -> FrozenSet[ConstantTuple]:
        return self.materialize().positives_unmatched

    @property
    def negatives_matched(self) -> FrozenSet[ConstantTuple]:
        return self.materialize().negatives_matched

    @property
    def negatives_unmatched(self) -> FrozenSet[ConstantTuple]:
        return self.materialize().negatives_unmatched

    # -- value semantics --------------------------------------------------

    def __eq__(self, other):
        if isinstance(other, BitsetVerdictProfile):
            return self.materialize() == other.materialize()
        if isinstance(other, MatchProfile):
            return self.materialize() == other
        return NotImplemented

    def __hash__(self):
        return hash(self.materialize())

    def __reduce__(self):
        # Pickle as the equivalent plain MatchProfile: the columns object
        # drags whole borders along and the receiver only needs the sets.
        profile = self.materialize()
        return (
            MatchProfile,
            (
                profile.positives_matched,
                profile.positives_unmatched,
                profile.negatives_matched,
                profile.negatives_unmatched,
            ),
        )


class VerdictMatrix:
    """All candidates' J-match verdicts against one labeling, as bitsets.

    Rows are dict entries keyed by
    :func:`~repro.queries.ucq.query_key`, shared through the
    specification's evaluation cache when it is enabled (see
    :meth:`EvaluationCache.verdict_rows`), private to the matrix
    otherwise.
    """

    def __init__(self, evaluator: MatchEvaluator, columns: BorderColumns):
        if len(columns.borders) != columns.width:
            raise ValueError(
                "VerdictMatrix needs fully populated border columns "
                f"({len(columns.borders)} borders for {columns.width} columns)"
            )
        self.evaluator = evaluator
        self.columns = columns
        self._cache = evaluator.system.specification.engine.cache
        # Computing the layout key hashes whole borders; skip it when the
        # cache would hand back a private dict anyway.
        self._rows: Dict[Tuple, int] = (
            self._cache.verdict_rows(columns.key()) if self._cache.enabled else {}
        )

    # -- row computation --------------------------------------------------

    def row(self, query: OntologyQuery) -> int:
        """The verdict bitset of one query (computed at most once)."""
        key = query_key(query)
        row = self._rows.get(key)
        if row is None:
            self._cache.stats.count("verdict_row_misses")
            row = self._compute_row(query)
            self._rows[key] = row
        else:
            self._cache.stats.count("verdict_row_hits")
        return row

    def _compute_row(self, query: OntologyQuery) -> int:
        if isinstance(query, UnionOfConjunctiveQueries):
            # A UCQ J-matches a border iff some disjunct does, under both
            # answering strategies (see the module docstring).
            union_row = 0
            for disjunct in query.disjuncts:
                union_row |= self.row(disjunct)
            return union_row
        row = 0
        for bit, border in enumerate(self.columns.borders):
            if self.evaluator.matches_border(query, border):
                row |= 1 << bit
        return row

    def build(self, candidates: Iterable[OntologyQuery]) -> None:
        """Fill rows for a whole pool in one pass over the border ABoxes.

        Borders run in the outer loop so each border's retrieved ABox
        (and chase saturation) is computed once and consulted for every
        pending candidate while hot; UCQs are reduced to their CQ
        disjuncts first and OR-combined afterwards.
        """
        pending_cqs: List[ConjunctiveQuery] = []
        pending_keys: List[Tuple] = []
        deferred_unions: List[UnionOfConjunctiveQueries] = []

        def enqueue_cq(cq: ConjunctiveQuery) -> None:
            key = query_key(cq)
            if key not in self._rows and key not in seen:
                seen.add(key)
                pending_cqs.append(cq)
                pending_keys.append(key)

        seen: set = set()
        for candidate in candidates:
            if isinstance(candidate, UnionOfConjunctiveQueries):
                if query_key(candidate) not in self._rows:
                    deferred_unions.append(candidate)
                    for disjunct in candidate.disjuncts:
                        enqueue_cq(disjunct)
            else:
                enqueue_cq(candidate)

        if pending_cqs:
            partial = [0] * len(pending_cqs)
            for bit, border in enumerate(self.columns.borders):
                for index, cq in enumerate(pending_cqs):
                    if self.evaluator.matches_border(cq, border):
                        partial[index] |= 1 << bit
            for key, row in zip(pending_keys, partial):
                self._cache.stats.count("verdict_row_misses")
                self._rows[key] = row

        for union in deferred_unions:
            self.row(union)

    # -- consumption ------------------------------------------------------

    def profile(self, query: OntologyQuery) -> BitsetVerdictProfile:
        """The (popcount-backed) match profile of one query."""
        return BitsetVerdictProfile(self.row(query), self.columns)

    def matched_positives(self, query: OntologyQuery) -> int:
        return (self.row(query) & self.columns.positives_mask).bit_count()

    def matched_negatives(self, query: OntologyQuery) -> int:
        return (self.row(query) & self.columns.negatives_mask).bit_count()

    def known_rows(self) -> int:
        return len(self._rows)

    def __str__(self):
        return f"VerdictMatrix({self.columns}, rows={len(self._rows)})"
