"""Bitset verdict matrices for the criteria layer.

The best-description search needs, for every candidate query, the set of
border individuals the query J-matches (Definition 3.4).  The legacy
path asks one (candidate, individual) question at a time and stores the
answers as frozensets; every criterion evaluation then re-walks those
sets.  This module packs the same information into *bit matrices*:

* **columns** — the border individuals of one labeling, positives first
  then negatives, in a deterministic order (:class:`BorderColumns`);
* **rows** — one Python int per candidate query, bit ``i`` set iff the
  query J-matches the border of column ``i`` (:class:`VerdictMatrix`);
* **profiles** — :class:`BitsetVerdictProfile` exposes the familiar
  :class:`~repro.core.matching.MatchProfile` interface on top of a row,
  computing the confusion-matrix counts with ``int.bit_count`` so the
  criteria δ1–δ4 become popcount arithmetic (δ5/δ6 were arithmetic
  already).

Rows are built in **one pass over the border ABoxes per labeling**:
the matrix iterates borders in the outer loop and candidates in the
inner loop, so each border's retrieved ABox (and, under the chase
strategy, its saturation) is hot in the shared
:class:`~repro.engine.cache.EvaluationCache` while every candidate's
verdict against it is recorded.  Individual verdicts still flow through
``MatchEvaluator.matches_border``, so the J-match memo layer is reused
unchanged and the bitset path is *verdict-for-verdict identical* to the
legacy path — the differential suite in
``tests/engine/test_verdict_matrix.py`` pins that across all four
domain ontologies.

UCQ rows are the bitwise OR of their disjuncts' rows.  That is sound
for both answering strategies: the chase path evaluates a UCQ
disjunct-by-disjunct (``UnionOfConjunctiveQueries.contains_tuple``) and
the rewriting path rewrites a UCQ into the deduplicated union of its
disjuncts' rewritings, so a UCQ J-matches a border iff some disjunct
does.  This makes the greedy union construction of
:meth:`~repro.core.best_describe.BestDescriptionSearch.best_ucq`
popcount-cheap once the CQ rows exist.

Completed rows are memoized in the specification's shared cache under
the column layout's content-addressed key
(:meth:`EvaluationCache.verdict_rows`), so scoring the same pool under
a different (Δ, Z) configuration — or from a different scorer — never
re-runs a J-match.  The whole path is toggled by
``specification.engine.verdicts.enabled``
(:class:`~repro.engine.cache.VerdictPolicy`), mirroring the
``engine.cache.enabled`` switch.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core.border import Border
from ..core.labeling import (
    NEGATIVE,
    POSITIVE,
    ConstantTuple,
    Labeling,
    normalize_tuple,
)
from ..core.matching import MatchEvaluator, MatchProfile, MatchStatistics
from ..errors import ExplanationError
from ..obdm.certain_answers import OntologyQuery
from ..queries.cq import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries, query_key


def _sorted_tuples(raws) -> Tuple[ConstantTuple, ...]:
    return tuple(sorted({normalize_tuple(raw) for raw in raws}, key=repr))


class BorderColumns:
    """The deterministic column layout of one (labeling, radius) pair.

    Columns ``0 .. P-1`` are the positives of ``λ`` and columns
    ``P .. P+N-1`` the negatives, each sorted by ``repr`` of the
    normalized tuple, so two scorers over the same labeling always agree
    on the bit positions.  ``borders`` may be empty for synthetic
    layouts (property tests build profiles without a database); matrices
    require it to be populated.
    """

    __slots__ = (
        "positive_tuples",
        "negative_tuples",
        "borders",
        "radius",
        "_key",
    )

    def __init__(
        self,
        positive_tuples: Sequence[ConstantTuple],
        negative_tuples: Sequence[ConstantTuple],
        borders: Sequence[Border] = (),
        radius: int = 0,
    ):
        self.positive_tuples = tuple(positive_tuples)
        self.negative_tuples = tuple(negative_tuples)
        self.borders = tuple(borders)
        self.radius = radius
        self._key = None

    @staticmethod
    def from_labeling(
        evaluator: MatchEvaluator, labeling: Labeling, radius: Optional[int] = None
    ) -> "BorderColumns":
        """Columns (and their borders) for one labeling, computed once."""
        radius = evaluator.radius if radius is None else radius
        positives = _sorted_tuples(labeling.positives)
        negatives = _sorted_tuples(labeling.negatives)
        borders = [evaluator.border_of(raw, radius) for raw in positives + negatives]
        return BorderColumns(positives, negatives, borders, radius)

    @staticmethod
    def from_tuples(
        positives: Iterable, negatives: Iterable
    ) -> "BorderColumns":
        """A border-less layout (enough for building synthetic profiles)."""
        return BorderColumns(_sorted_tuples(positives), _sorted_tuples(negatives))

    # -- geometry ---------------------------------------------------------

    @property
    def tuples(self) -> Tuple[ConstantTuple, ...]:
        return self.positive_tuples + self.negative_tuples

    @property
    def positive_count(self) -> int:
        return len(self.positive_tuples)

    @property
    def negative_count(self) -> int:
        return len(self.negative_tuples)

    @property
    def width(self) -> int:
        return self.positive_count + self.negative_count

    @property
    def positives_mask(self) -> int:
        """Bits of the positive columns: ``0 .. P-1``."""
        return (1 << self.positive_count) - 1

    @property
    def negatives_mask(self) -> int:
        """Bits of the negative columns: ``P .. P+N-1``."""
        return ((1 << self.negative_count) - 1) << self.positive_count

    def key(self) -> Tuple:
        """Content-addressed cache key of this layout.

        Borders embed their tuple, radius and atom layers, so the key
        changes whenever the underlying database content (and hence any
        verdict) could change — the same addressing discipline as the
        J-match memo.
        """
        if self._key is None:
            self._key = (
                "verdict_columns",
                self.positive_count,
                self.radius,
                self.borders,
            )
        return self._key

    def __len__(self) -> int:
        return self.width

    def __str__(self):
        return (
            f"BorderColumns(+{self.positive_count}/-{self.negative_count}, "
            f"radius={self.radius})"
        )


class BitsetVerdictProfile(MatchStatistics):
    """A match profile backed by one matrix row instead of frozensets.

    All confusion-matrix counts are popcounts (``int.bit_count``) over
    the row masked by the column layout; the frozenset views of
    :class:`~repro.core.matching.MatchProfile` are materialized lazily
    and only when actually accessed (reports only render counts).
    Equality, hashing and pickling all go through the materialized
    profile, so bitset-backed and set-backed profiles of the same
    verdicts compare equal and pickle to plain ``MatchProfile`` objects
    (which is what process-sharded workers send back).
    """

    __slots__ = (
        "row",
        "columns",
        "true_positives",
        "false_negatives",
        "false_positives",
        "true_negatives",
        "_materialized",
    )

    def __init__(
        self,
        row: int,
        columns: BorderColumns,
        counts: Optional[Tuple[int, int]] = None,
    ):
        self.row = row
        self.columns = columns
        # The popcounts: every criterion evaluation reads these several
        # times, so they are computed once up front rather than per
        # property access.  The batch kernel hands them in precomputed
        # (one vectorized popcount pass covered the whole pool); only
        # without them does the profile fall back to two bit_count calls.
        if counts is None:
            self.true_positives = (row & columns.positives_mask).bit_count()
            self.false_positives = (row & columns.negatives_mask).bit_count()
        else:
            self.true_positives, self.false_positives = counts
        self.false_negatives = columns.positive_count - self.true_positives
        self.true_negatives = columns.negative_count - self.false_positives
        self._materialized: Optional[MatchProfile] = None

    # -- set views (lazy) -------------------------------------------------

    def materialize(self) -> MatchProfile:
        """The equivalent set-backed :class:`MatchProfile` (cached)."""
        if self._materialized is None:
            matched_pos: List[ConstantTuple] = []
            unmatched_pos: List[ConstantTuple] = []
            matched_neg: List[ConstantTuple] = []
            unmatched_neg: List[ConstantTuple] = []
            split = self.columns.positive_count
            for bit, value in enumerate(self.columns.tuples):
                hit = self.row >> bit & 1
                if bit < split:
                    (matched_pos if hit else unmatched_pos).append(value)
                else:
                    (matched_neg if hit else unmatched_neg).append(value)
            self._materialized = MatchProfile(
                positives_matched=frozenset(matched_pos),
                positives_unmatched=frozenset(unmatched_pos),
                negatives_matched=frozenset(matched_neg),
                negatives_unmatched=frozenset(unmatched_neg),
            )
        return self._materialized

    @property
    def positives_matched(self) -> FrozenSet[ConstantTuple]:
        return self.materialize().positives_matched

    @property
    def positives_unmatched(self) -> FrozenSet[ConstantTuple]:
        return self.materialize().positives_unmatched

    @property
    def negatives_matched(self) -> FrozenSet[ConstantTuple]:
        return self.materialize().negatives_matched

    @property
    def negatives_unmatched(self) -> FrozenSet[ConstantTuple]:
        return self.materialize().negatives_unmatched

    # -- value semantics --------------------------------------------------

    def __eq__(self, other):
        if isinstance(other, BitsetVerdictProfile):
            return self.materialize() == other.materialize()
        if isinstance(other, MatchProfile):
            return self.materialize() == other
        return NotImplemented

    def __hash__(self):
        return hash(self.materialize())

    def __reduce__(self):
        # Pickle as the equivalent plain MatchProfile: the columns object
        # drags whole borders along and the receiver only needs the sets.
        profile = self.materialize()
        return (
            MatchProfile,
            (
                profile.positives_matched,
                profile.positives_unmatched,
                profile.negatives_matched,
                profile.negatives_unmatched,
            ),
        )


class VerdictMatrix:
    """All candidates' J-match verdicts against one labeling, as bitsets.

    Rows are dict entries keyed by
    :func:`~repro.queries.ucq.query_key`, shared through the
    specification's evaluation cache when it is enabled (see
    :meth:`EvaluationCache.verdict_rows`), private to the matrix
    otherwise.
    """

    def __init__(self, evaluator: MatchEvaluator, columns: BorderColumns):
        if len(columns.borders) != columns.width:
            raise ValueError(
                "VerdictMatrix needs fully populated border columns "
                f"({len(columns.borders)} borders for {columns.width} columns)"
            )
        self.evaluator = evaluator
        self.columns = columns
        self._cache = evaluator.system.specification.engine.cache
        self._kernel = None
        self._batch = None
        # Confusion counts precomputed by the batch kernel's vectorized
        # popcount pass, keyed like the rows.  Private to this matrix
        # (rows are content-addressed and shareable; the counts are just
        # a local popcount shortcut and cheap to recompute).
        self._counts: Dict[Tuple, Tuple[int, int]] = {}
        # Computing the layout key hashes whole borders; skip it when the
        # cache would hand back a private dict anyway.
        self._rows: Dict[Tuple, int] = (
            self._cache.verdict_rows(columns.key()) if self._cache.enabled else {}
        )
        # Queries whose rows *this* matrix computed or migrated, keyed like
        # the rows.  apply_drift needs the query objects back (row keys are
        # not invertible) to evaluate fresh columns; rows contributed to the
        # shared store by other matrices are simply not migrated.
        self._known_queries: Dict[Tuple, OntologyQuery] = {}

    # -- lifecycle --------------------------------------------------------

    def is_live(self) -> bool:
        """Whether this matrix still feeds the shared row store.

        ``False`` once the cache has evicted the matrix's column layout:
        the rows dict this matrix holds is then disconnected from the
        shared store, so long-lived consumers (the explanation service's
        warm sessions) must rebuild instead of reusing the matrix.  A
        matrix built with the cache disabled owns its rows privately and
        is always live.
        """
        if not self._cache.enabled:
            return True
        return self._cache.has_verdict_layout(self.columns.key())

    def touch(self) -> None:
        """Refresh this layout's recency in the cache's eviction order.

        Warm consumers read rows through their own reference to the
        shared dict, which the LRU layer cannot observe; a long-lived
        owner (the explanation service) calls this on every warm reuse
        so the hottest layouts are the last to be evicted, not the
        first.  A no-op once the layout has been evicted (recreating it
        empty would fake liveness and waste a layout slot).
        """
        self._cache.touch_verdict_layout(self.columns.key())

    # -- row computation --------------------------------------------------

    @property
    def kernel_enabled(self) -> bool:
        return self.evaluator.system.specification.engine.kernel.enabled

    @property
    def batch_enabled(self) -> bool:
        """Whether rows route through the bit-sliced batch kernel.

        Requires the PR-5 kernel (the batch path is built on top of it),
        the ``engine.kernel.batch`` policy switch, and numpy — without
        any of the three the matrix transparently falls back to the
        per-labeling kernel (or the legacy border loop).
        """
        if not self.kernel_enabled:
            return False
        if not self.evaluator.system.specification.engine.kernel.batch.enabled:
            return False
        from .batch_kernel import HAS_NUMPY

        return HAS_NUMPY

    def _kernel_for(self):
        """The pool-level match kernel of this layout (built lazily)."""
        if self._kernel is None:
            from .kernel import PoolMatchKernel

            self._kernel = PoolMatchKernel(self.evaluator, self.columns)
        return self._kernel

    def _batch_for(self):
        """A single-layout batch kernel over this matrix's columns.

        Persistent across ``build`` calls so its unified index and
        subquery tables stay warm; lazy single rows (UCQ extensions,
        bound probes) reuse the same kernel via bit slicing.
        """
        if self._batch is None:
            from .batch_kernel import MultiLabelingBatchKernel

            self._batch = MultiLabelingBatchKernel(self.evaluator, [self.columns])
        return self._batch

    def pruner(self):
        """A generator-level :class:`~repro.engine.kernel.ProvenancePruner`.

        Wired to whichever kernel this matrix routes rows through, with
        the selection vector needed to express global provenance bounds
        in this layout's local bit space.  ``None`` off the kernel path.
        """
        if not self.kernel_enabled:
            return None
        from .kernel import ProvenancePruner

        if self.batch_enabled:
            batch = self._batch_for()
            return ProvenancePruner(
                batch.kernel, self.columns, selection=batch.selection_for(0)
            )
        return ProvenancePruner(self._kernel_for(), self.columns)

    def row(self, query: OntologyQuery) -> int:
        """The verdict bitset of one query (computed at most once)."""
        key = query_key(query)
        self._known_queries.setdefault(key, query)
        row = self._rows.get(key)
        if row is None:
            row = self._compute_row(query)
            self._rows[key] = row
        else:
            self._cache.stats.count("verdict_row_hits")
        return row

    def _compute_row(self, query: OntologyQuery) -> int:
        if isinstance(query, UnionOfConjunctiveQueries):
            # A UCQ J-matches a border iff some disjunct does, under both
            # answering strategies (see the module docstring).  The union
            # row is pure OR arithmetic over its disjuncts' rows, so it
            # does not count as a verdict-row miss itself — misses count
            # genuinely computed rows only (each disjunct's ``row`` call
            # accounts for its own hit or miss).
            union_row = 0
            for disjunct in query.disjuncts:
                union_row |= self.row(disjunct)
            return union_row
        self._cache.stats.count("verdict_row_misses")
        if self.batch_enabled:
            return self._batch_for().row_for(0, query)
        if self.kernel_enabled:
            return self._kernel_for().row(query)
        row = 0
        for bit, border in enumerate(self.columns.borders):
            if self.evaluator.matches_border(query, border):
                row |= 1 << bit
        return row

    def upper_bound_row(self, query: OntologyQuery) -> int:
        """A superset of ``row(query)`` bits, cheap enough for pruning.

        An already-known row is its own (tightest) bound; otherwise the
        kernel's per-atom provenance bound is used.  Only meaningful on
        the kernel path — callers gate on :attr:`kernel_enabled`.
        """
        row = self._rows.get(query_key(query))
        if row is not None:
            return row
        if self.batch_enabled:
            return self._batch_for().upper_bound_for(0, query)
        return self._kernel_for().upper_bound_row(query)

    def _pending_for(
        self, candidates: Iterable[OntologyQuery]
    ) -> Tuple[List[ConjunctiveQuery], List[Tuple], List[UnionOfConjunctiveQueries]]:
        """The deduplicated rowless CQs (and deferred UCQs) of a pool."""
        pending_cqs: List[ConjunctiveQuery] = []
        pending_keys: List[Tuple] = []
        deferred_unions: List[UnionOfConjunctiveQueries] = []

        def enqueue_cq(cq: ConjunctiveQuery) -> None:
            key = query_key(cq)
            self._known_queries.setdefault(key, cq)
            if key not in self._rows and key not in seen:
                seen.add(key)
                pending_cqs.append(cq)
                pending_keys.append(key)

        seen: set = set()
        for candidate in candidates:
            if isinstance(candidate, UnionOfConjunctiveQueries):
                self._known_queries.setdefault(query_key(candidate), candidate)
                if query_key(candidate) not in self._rows:
                    deferred_unions.append(candidate)
                    for disjunct in candidate.disjuncts:
                        enqueue_cq(disjunct)
            else:
                enqueue_cq(candidate)
        return pending_cqs, pending_keys, deferred_unions

    def _store(self, key: Tuple, row: int, counts=None) -> None:
        self._cache.stats.count("verdict_row_misses")
        self._rows[key] = row
        if counts is not None:
            self._counts[key] = counts

    def build(self, candidates: Iterable[OntologyQuery]) -> None:
        """Fill rows for a whole pool in one pass over the border ABoxes.

        Borders run in the outer loop so each border's retrieved ABox
        (and chase saturation) is computed once and consulted for every
        pending candidate while hot; UCQs are reduced to their CQ
        disjuncts first and OR-combined afterwards.  On the batch path
        the pool goes through the bit-sliced kernel as one slab, which
        also hands back vectorized δ-counts for every row.
        """
        pending_cqs, pending_keys, deferred_unions = self._pending_for(candidates)

        if pending_cqs:
            if self.batch_enabled:
                [layout_rows] = self._batch_for().rows_for([pending_cqs])
                for key, row, counts in zip(
                    pending_keys, layout_rows.rows, layout_rows.counts
                ):
                    self._store(key, row, counts)
            else:
                if self.kernel_enabled:
                    partial = self._kernel_for().rows(pending_cqs)
                else:
                    partial = [0] * len(pending_cqs)
                    for bit, border in enumerate(self.columns.borders):
                        for index, cq in enumerate(pending_cqs):
                            if self.evaluator.matches_border(cq, border):
                                partial[index] |= 1 << bit
                for key, row in zip(pending_keys, partial):
                    self._store(key, row)

        for union in deferred_unions:
            self.row(union)

    @staticmethod
    def build_batch(matrices: Sequence["VerdictMatrix"], pools: Sequence) -> bool:
        """Fill many matrices' rows with **one** batch-kernel dispatch.

        ``matrices[i]`` gets rows for ``pools[i]``.  All matrices must
        share one OBDM system (one database, one set of border ABoxes);
        their column layouts are merged into a single
        :class:`~repro.engine.batch_kernel.MultiLabelingBatchKernel`, so
        borders shared between labelings are enumerated once for the
        whole batch.  Returns ``True`` when the batch path ran, ``False``
        after falling back to per-matrix :meth:`build` calls (batch
        policy off, numpy missing, or heterogeneous systems) — callers
        get filled matrices either way.
        """
        matrices = list(matrices)
        pools = [list(pool) for pool in pools]
        if len(matrices) != len(pools):
            raise ExplanationError(
                f"build_batch got {len(pools)} pools for {len(matrices)} matrices"
            )
        if not matrices:
            return False
        first = matrices[0]
        batchable = first.batch_enabled and all(
            matrix.evaluator.system is first.evaluator.system for matrix in matrices
        )
        if not batchable or len(matrices) == 1:
            for matrix, pool in zip(matrices, pools):
                matrix.build(pool)
            return batchable and bool(matrices)
        from .batch_kernel import MultiLabelingBatchKernel

        pending = [matrix._pending_for(pool) for matrix, pool in zip(matrices, pools)]
        batch = MultiLabelingBatchKernel(
            first.evaluator, [matrix.columns for matrix in matrices]
        )
        per_layout = batch.rows_for([cqs for cqs, _, _ in pending])
        for matrix, (_, keys, unions), layout_rows in zip(matrices, pending, per_layout):
            for key, row, counts in zip(keys, layout_rows.rows, layout_rows.counts):
                matrix._store(key, row, counts)
            for union in unions:
                matrix.row(union)
        return True

    # -- incremental maintenance ------------------------------------------

    def apply_drift(
        self,
        added: Iterable[Tuple] = (),
        removed: Iterable = (),
        flipped: Iterable = (),
    ) -> "VerdictMatrix":
        """A new matrix absorbing labeling drift, touching only changed columns.

        *added* pairs raw tuples with their label (``+1``/``-1``),
        *removed* lists tuples leaving the labeling and *flipped* tuples
        whose label changed sign (:class:`~repro.core.labeling.LabelingDrift`
        has exactly this shape).  Every known row is migrated by bit
        permutation: a surviving tuple keeps its verdict bit (the border
        of a tuple depends only on the tuple, the radius and the
        database, none of which drift here), a flipped tuple keeps its
        bit value at its new column position, and only genuinely *new*
        tuples cost a J-match evaluation per known query.  The result is
        byte-identical to building a cold matrix over the drifted
        labeling — the differential suite pins this — because surviving
        bits are the memoized verdicts of exactly the (query, border)
        keys a cold rebuild would look up.
        """
        old = self.columns
        positives = set(old.positive_tuples)
        negatives = set(old.negative_tuples)

        def take_out(raw) -> Tuple[ConstantTuple, int]:
            key = normalize_tuple(raw)
            if key in positives:
                positives.discard(key)
                return key, POSITIVE
            if key in negatives:
                negatives.discard(key)
                return key, NEGATIVE
            raise ExplanationError(f"drift refers to unlabelled tuple {key}")

        for raw in removed:
            take_out(raw)
        for raw in flipped:
            key, label = take_out(raw)
            (negatives if label == POSITIVE else positives).add(key)
        for raw, label in added:
            key = normalize_tuple(raw)
            if key in positives or key in negatives:
                raise ExplanationError(f"drift adds already-labelled tuple {key}")
            if label == POSITIVE:
                positives.add(key)
            elif label == NEGATIVE:
                negatives.add(key)
            else:
                raise ExplanationError(f"drift labels must be +1 or -1, got {label!r}")

        new_positives = _sorted_tuples(positives)
        new_negatives = _sorted_tuples(negatives)
        new_columns = BorderColumns(
            new_positives,
            new_negatives,
            borders=[
                self.evaluator.border_of(value, old.radius)
                for value in new_positives + new_negatives
            ],
            radius=old.radius,
        )
        drifted = VerdictMatrix(self.evaluator, new_columns)
        old_position = {value: bit for bit, value in enumerate(old.tuples)}
        fresh_columns = [
            (bit, border)
            for bit, (value, border) in enumerate(zip(new_columns.tuples, new_columns.borders))
            if value not in old_position
        ]
        fresh_kernel = None
        if fresh_columns and drifted.kernel_enabled:
            # Evaluate the genuinely new columns through a kernel
            # restricted to their bit positions — the same one-pass path
            # a cold rebuild of the drifted layout would take.
            from .kernel import PoolMatchKernel

            fresh_kernel = PoolMatchKernel(
                self.evaluator, new_columns, bits=[bit for bit, _ in fresh_columns]
            )

        def matches_fresh(query: OntologyQuery, border: Border) -> bool:
            # Evaluate UCQs disjunct-by-disjunct, the exact path (and
            # memo entries) a cold build takes: its UCQ rows are ORs of
            # CQ rows and never ask a (UCQ, border) question directly.
            if isinstance(query, UnionOfConjunctiveQueries):
                return any(
                    self.evaluator.matches_border(disjunct, border)
                    for disjunct in query.disjuncts
                )
            return self.evaluator.matches_border(query, border)

        # Snapshot the dict: a concurrent scorer of this matrix may still
        # be registering queries (row()/build() setdefault), and iterating
        # the live dict would raise mid-drift.  A query missing from the
        # snapshot just migrates nothing and is computed lazily later.
        for key, query in list(self._known_queries.items()):
            old_row = self._rows.get(key)
            if old_row is None:
                continue
            drifted._known_queries[key] = query
            if key in drifted._rows:
                continue  # another scorer already filled the drifted layout
            row = 0
            for bit, value in enumerate(new_columns.tuples):
                position = old_position.get(value)
                if position is not None:
                    row |= ((old_row >> position) & 1) << bit
            if fresh_kernel is not None:
                row |= fresh_kernel.row(query)
            else:
                for bit, border in fresh_columns:
                    if matches_fresh(query, border):
                        row |= 1 << bit
            drifted._rows[key] = row
        return drifted

    def apply_database_delta(self) -> "VerdictMatrix":
        """A matrix over the *current* database content, reusing every
        column whose border survived the drift.

        The database-side dual of :meth:`apply_drift`: the labeling (and
        hence the tuple order) is unchanged, but the underlying facts
        moved, so each column's border is recomputed — untouched tuples
        hit the border cache and come back content-identical, and only
        the columns whose recomputed border actually *differs* are
        re-evaluated.  Call it after the delta has been applied to the
        database and routed through
        :meth:`~repro.core.border.BorderComputer.apply_delta` (the
        explanation service does both).

        Surviving columns migrate by bit masking (the permutation is the
        identity here — same tuples, same order); changed columns are
        evaluated for every known query through a kernel restricted to
        their bit positions — as one 2-D batch-matrix dispatch over the
        changed columns when the batch path is on — or through the
        legacy per-border loop, exactly as a cold rebuild would.  When
        this matrix had built a unified index, the successor adopts it
        via :meth:`~repro.engine.kernel.PoolMatchKernel.patched` instead
        of re-merging the unchanged borders.  If no border changed the
        matrix itself is returned (every row is still exact).  With
        ``engine.delta.enabled`` off the result is a cold matrix over
        the recomputed layout: no rows migrate, reproducing the legacy
        rebuild-from-scratch behaviour.
        """
        old = self.columns
        engine = self.evaluator.system.specification.engine
        new_borders = [
            self.evaluator.border_of(value, old.radius) for value in old.tuples
        ]
        if not engine.delta.enabled:
            return VerdictMatrix(
                self.evaluator,
                BorderColumns(
                    old.positive_tuples, old.negative_tuples, new_borders, old.radius
                ),
            )
        changed_bits = [
            bit
            for bit, (previous, current) in enumerate(zip(old.borders, new_borders))
            if previous != current
        ]
        if not changed_bits:
            return self
        new_columns = BorderColumns(
            old.positive_tuples, old.negative_tuples, new_borders, old.radius
        )
        drifted = VerdictMatrix(self.evaluator, new_columns)
        if self._kernel is not None and drifted.kernel_enabled:
            # Reuse the already-merged unified index: only the changed
            # bits' fact columns are swapped in place.
            drifted._kernel = self._kernel.patched(new_columns, changed_bits)
        keep_mask = ~sum(1 << bit for bit in changed_bits)
        # Snapshot for the same concurrency reason as apply_drift.
        pending: List[Tuple[Tuple, OntologyQuery, int]] = []
        for key, query in list(self._known_queries.items()):
            old_row = self._rows.get(key)
            if old_row is None:
                continue
            drifted._known_queries[key] = query
            if key in drifted._rows:
                continue  # another scorer already filled the new layout
            pending.append((key, query, old_row & keep_mask))
        if pending:
            fresh_rows = drifted._changed_column_rows(
                [query for _, query, _ in pending], changed_bits
            )
            for (key, _query, migrated), fresh in zip(pending, fresh_rows):
                drifted._rows[key] = migrated | fresh
        return drifted

    def _changed_column_rows(
        self, queries: Sequence[OntologyQuery], changed_bits: Sequence[int]
    ) -> List[int]:
        """Verdict bits of *queries* at the changed columns only.

        Routes through the same machinery as a cold build, restricted to
        the changed bit positions: the 2-D batch matrix path (one
        dispatch whose global index holds just the changed borders), the
        bit-restricted pool kernel, or the legacy per-border loop.
        Returned rows carry bits at the original column positions.
        """
        if not queries:
            return []
        if self.batch_enabled:
            from .batch_kernel import MultiLabelingBatchKernel

            patch_columns = BorderColumns(
                [self.columns.tuples[bit] for bit in changed_bits],
                (),
                borders=[self.columns.borders[bit] for bit in changed_bits],
                radius=self.columns.radius,
            )
            batch = MultiLabelingBatchKernel(self.evaluator, [patch_columns])
            [layout_rows] = batch.rows_for([list(queries)])
            scattered = []
            for local_row in layout_rows.rows:
                row = 0
                for local, bit in enumerate(changed_bits):
                    row |= ((local_row >> local) & 1) << bit
                scattered.append(row)
            return scattered
        if self.kernel_enabled:
            from .kernel import PoolMatchKernel

            restricted = PoolMatchKernel(
                self.evaluator, self.columns, bits=changed_bits
            )
            try:
                return [restricted.row(query) for query in queries]
            finally:
                # Throwaway kernel: in spill mode its restricted index
                # holds mmap temp files; release them now, not at GC.
                restricted.close()
        rows = [0] * len(queries)
        for bit in changed_bits:
            border = self.columns.borders[bit]
            for position, query in enumerate(queries):
                if isinstance(query, UnionOfConjunctiveQueries):
                    hit = any(
                        self.evaluator.matches_border(disjunct, border)
                        for disjunct in query.disjuncts
                    )
                else:
                    hit = self.evaluator.matches_border(query, border)
                if hit:
                    rows[position] |= 1 << bit
        return rows

    # -- consumption ------------------------------------------------------

    def profile(self, query: OntologyQuery) -> BitsetVerdictProfile:
        """The (popcount-backed) match profile of one query."""
        row = self.row(query)
        return BitsetVerdictProfile(
            row, self.columns, counts=self._counts.get(query_key(query))
        )

    def matched_positives(self, query: OntologyQuery) -> int:
        return (self.row(query) & self.columns.positives_mask).bit_count()

    def matched_negatives(self, query: OntologyQuery) -> int:
        return (self.row(query) & self.columns.negatives_mask).bit_count()

    def known_rows(self) -> int:
        return len(self._rows)

    def __str__(self):
        return f"VerdictMatrix({self.columns}, rows={len(self._rows)})"
