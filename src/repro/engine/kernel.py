"""Pool-level match kernel: whole verdict rows in one indexed pass.

The bitset verdict engine (:mod:`repro.engine.verdicts`) made criteria
evaluation popcount arithmetic, but still *constructed* each row cell by
cell: one full certain-answer check per (candidate, border) pair —
O(|pool| × |borders|) independent rewriting and homomorphism searches.
This module collapses row construction into a few indexed passes, in
the spirit of CrocoPat's bit-level relational predicates and tabled
logic programming:

:class:`UnifiedBorderIndex`
    Merges all border ABoxes of one labeling into a single **columnar
    fact store**: per predicate, parallel argument-row and provenance
    arrays, where each fact's provenance is a bitset of the border
    columns it belongs to (plus a ``(predicate, position, constant)``
    index for bound-argument narrowing).  Under the chase strategy each
    border's ABox is saturated *individually* (same memo keys as the
    per-pair path) before merging, so cross-border joins are impossible
    by construction: a homomorphism only counts for column ``i`` when
    the AND of its facts' provenances contains bit ``i``.

:class:`PoolMatchKernel`
    Computes one candidate's **entire verdict row** from a single
    homomorphism enumeration of the (rewritten) CQ over the unified
    index.  Instead of backtracking per border, it runs a
    set-at-a-time hash join: the state after ``k`` atoms maps each
    distinct variable binding to the OR of the provenance ANDs of the
    homomorphisms reaching it.  When the body is exhausted, each
    binding's head projection is looked up in the column-tuple table
    and its provenance mask contributes the row bits directly.  A bit
    ``i`` survives iff some homomorphism lies entirely inside border
    ``i``'s facts *and* maps the head to column ``i``'s tuple — exactly
    the per-pair ``matches_border`` verdict, which the differential
    suite (``tests/engine/test_match_kernel.py``) pins byte-identical
    across all four domains × {CQ, UCQ} × {cache on, off} × {thread,
    process}.

    **Subquery tabling** — candidate pools are sub-conjunction
    lattices with massive atom overlap, so the kernel tables the
    partial-match state of every canonical atom prefix (atoms in
    canonical sorted order, variables renamed by first appearance) in
    the shared :class:`~repro.engine.cache.EvaluationCache`
    (:meth:`~repro.engine.cache.EvaluationCache.subquery_tables`).
    Candidates sharing a two-atom prefix pay for it once; reuse is
    visible in ``CacheStats.subquery_hits`` / ``subquery_misses``.

    **Optimistic bounds** — :meth:`PoolMatchKernel.upper_bound_row`
    ANDs, per atom, the OR of the provenances of the facts the atom
    could match.  The result is a cheap superset of the true row, which
    :meth:`repro.core.best_describe.BestDescriptionSearch.top_k` turns
    into an optimistic Z-score for bound pruning.

The kernel is toggled by ``specification.engine.kernel.enabled``
(:class:`~repro.engine.cache.KernelPolicy`), in the same style as
``engine.verdicts.enabled``; ``benchmarks/bench_match_kernel.py`` gates
a ≥3× matrix-build speedup over the per-pair path.
"""

from __future__ import annotations

import mmap
import tempfile
from array import array
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..obdm.backend import decode_constants, encode_constants
from ..queries.atoms import Atom
from ..queries.cq import ConjunctiveQuery
from ..queries.terms import Constant, Variable, is_constant, is_variable
from ..queries.ucq import UnionOfConjunctiveQueries


class _SpillFile:
    """A growable byte region over a memory-mapped anonymous temp file.

    The file is created with :func:`tempfile.TemporaryFile`, so the OS
    reclaims it the moment the store (or the process) goes away; the
    mapping doubles in capacity as appends outgrow it, the same
    amortisation as a Python list.  Pages hold only what the OS chooses
    to keep resident — the Python heap sees fixed-size handles, never
    the payload.
    """

    __slots__ = ("_file", "_map", "_capacity", "size")

    _INITIAL_CAPACITY = 1 << 16

    def __init__(self):
        self._file = tempfile.TemporaryFile(prefix="repro-spill-")
        self._map: Optional[mmap.mmap] = None
        self._capacity = 0
        self.size = 0

    def _ensure_capacity(self, capacity: int) -> None:
        if capacity <= self._capacity:
            return
        grown = max(self._INITIAL_CAPACITY, self._capacity)
        while grown < capacity:
            grown *= 2
        self._file.truncate(grown)
        if self._map is None:
            self._map = mmap.mmap(self._file.fileno(), grown)
        else:
            self._map.resize(grown)
        self._capacity = grown

    def append(self, data: bytes) -> int:
        """Append *data*, returning the offset it was written at."""
        offset = self.size
        self._ensure_capacity(offset + len(data))
        self._map[offset : offset + len(data)] = data
        self.size = offset + len(data)
        return offset

    def write_at(self, offset: int, data: bytes) -> None:
        self._map[offset : offset + len(data)] = data

    def read(self, offset: int, length: int) -> bytes:
        return bytes(self._map[offset : offset + length])

    def close(self) -> None:
        if self._map is not None:
            self._map.close()
            self._map = None
        self._file.close()


class SpillMaskRows:
    """Provenance masks as fixed-width little-endian records on disk.

    List-shaped drop-in for the in-memory ``mask_rows`` column of
    :class:`UnifiedBorderIndex`: ``len`` / indexing / ``append`` /
    item assignment / iteration, over arbitrary-precision non-negative
    masks.  Records are ``width`` bytes each so row ``i`` lives at byte
    ``i * width``; a mask that outgrows the width triggers a
    widen-by-rebuild at the doubled width (rare — the width only grows
    with the number of border columns, in powers of two from 8 bytes).
    """

    __slots__ = ("_file", "_width", "_length")

    def __init__(self, width: int = 8):
        self._file = _SpillFile()
        self._width = width
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> int:
        if not 0 <= index < self._length:
            raise IndexError(f"mask row {index} out of range ({self._length} rows)")
        return int.from_bytes(self._file.read(index * self._width, self._width), "little")

    def _fit(self, mask: int) -> None:
        needed = max(1, (mask.bit_length() + 7) // 8)
        if needed <= self._width:
            return
        widened = self._width
        while widened < needed:
            widened *= 2
        values = [self[i] for i in range(self._length)]
        old = self._file
        self._file = _SpillFile()
        self._width = widened
        for value in values:
            self._file.append(value.to_bytes(widened, "little"))
        old.close()

    def append(self, mask: int) -> None:
        self._fit(mask)
        self._file.append(mask.to_bytes(self._width, "little"))
        self._length += 1

    def __setitem__(self, index: int, mask: int) -> None:
        if not 0 <= index < self._length:
            raise IndexError(f"mask row {index} out of range ({self._length} rows)")
        self._fit(mask)
        self._file.write_at(index * self._width, mask.to_bytes(self._width, "little"))

    def __iter__(self) -> Iterator[int]:
        for index in range(self._length):
            yield self[index]

    def __reduce__(self):
        # mmap handles cannot cross a pickle boundary; materialise.  The
        # receiving side gets a plain list, which supports the identical
        # column protocol (kernels never pickle a *spilled* index in
        # practice — snapshots exclude indexes — this keeps accidental
        # pickles correct rather than crashing).
        return (list, (list(self),))

    def close(self) -> None:
        self._file.close()


class SpillArgsRows:
    """Argument rows as length-prefixed encoded blobs on disk.

    List-shaped drop-in for the append-only ``args_rows`` column: each
    row (a tuple of :class:`~repro.queries.terms.Constant`) is stored
    via :func:`~repro.obdm.backend.encode_constants` in one spill file,
    with per-row offsets/lengths in compact ``array('Q')`` vectors — 16
    bytes of heap per row regardless of the row's payload.  Decoding on
    access reproduces the original tuple up to Constant equality (the
    codec's documented contract), which is the only property joins,
    narrowing checks and ``_row_ids`` keys rely on.
    """

    __slots__ = ("_file", "_offsets", "_lengths")

    def __init__(self):
        self._file = _SpillFile()
        self._offsets = array("Q")
        self._lengths = array("Q")

    def __len__(self) -> int:
        return len(self._offsets)

    def append(self, args: Tuple[Constant, ...]) -> None:
        blob = encode_constants(args)
        self._offsets.append(self._file.append(blob))
        self._lengths.append(len(blob))

    def __getitem__(self, index: int) -> Tuple[Constant, ...]:
        if not 0 <= index < len(self._offsets):
            raise IndexError(f"args row {index} out of range ({len(self._offsets)} rows)")
        return decode_constants(self._file.read(self._offsets[index], self._lengths[index]))

    def __iter__(self) -> Iterator[Tuple[Constant, ...]]:
        for index in range(len(self._offsets)):
            yield self[index]

    def __reduce__(self):
        # Same materialise-on-pickle contract as SpillMaskRows.
        return (list, (list(self),))

    def close(self) -> None:
        self._file.close()


class UnifiedBorderIndex:
    """Columnar fact store merging many border ABoxes with provenance.

    *entries* pairs each border-column bit with that border's (strategy-
    appropriate) fact set.  Facts are deduplicated across borders; each
    keeps a provenance bitset of the columns it occurs in.

    With ``spill=True`` the per-predicate argument and provenance
    columns live in memory-mapped temporary files
    (:class:`SpillArgsRows` / :class:`SpillMaskRows`) instead of Python
    lists — identical layout and row ids, so every consumer is oblivious
    to the mode; row-id keys switch to the canonical encoded bytes
    (tuples are decoded fresh per access, so identity keying would
    break).  Toggled by ``engine.kernel.spill.enabled``.
    """

    __slots__ = (
        "full_mask",
        "spilled",
        "_by_predicate",
        "_by_position",
        "_row_ids",
        "_support_memo",
        "_stats",
    )

    def __init__(
        self,
        entries: Sequence[Tuple[int, FrozenSet[Atom]]],
        stats=None,
        spill: bool = False,
    ):
        provenance: Dict[Atom, int] = {}
        full_mask = 0
        for bit, facts in entries:
            flag = 1 << bit
            full_mask |= flag
            for fact in facts:
                provenance[fact] = provenance.get(fact, 0) | flag
        self.full_mask = full_mask
        self.spilled = spill
        # Columnar layout: per predicate, parallel argument-row and
        # provenance arrays; plus (predicate, position, constant) → row
        # ids for narrowing atoms with bound arguments, and (predicate →
        # row key → row id) so :meth:`apply_patch` can find the
        # existing row of a re-added fact without scanning.
        by_predicate: Dict[str, Tuple] = {}
        by_position: Dict[Tuple, List[int]] = {}
        row_ids: Dict[str, Dict] = {}
        # Row order is irrelevant to results: rows are OR-accumulated per
        # binding, so any enumeration order yields the same bitsets.
        for fact, mask in provenance.items():
            bucket = by_predicate.get(fact.predicate)
            if bucket is None:
                bucket = by_predicate[fact.predicate] = self._new_columns()
            args_rows, mask_rows = bucket
            row_id = len(args_rows)
            args_rows.append(fact.args)
            mask_rows.append(mask)
            row_ids.setdefault(fact.predicate, {})[self._row_key(fact.args)] = row_id
            for position, argument in enumerate(fact.args):
                by_position.setdefault(
                    (fact.predicate, position, argument), []
                ).append(row_id)
        self._by_predicate = by_predicate
        self._by_position = by_position
        self._row_ids = row_ids
        # Support masks are memoized on the index itself: the index is
        # immutable, each atom's support is asked once per atom per query
        # (row bounds, generator pruning, upper bounds), and recomputing
        # it rescans every matching fact.  The memo key abstracts variable
        # names away — only the predicate and the constant pattern matter.
        self._support_memo: Dict[Tuple, int] = {}
        self._stats = stats

    def _new_columns(self) -> Tuple:
        """A fresh (args_rows, mask_rows) column pair for one predicate."""
        if self.spilled:
            return (SpillArgsRows(), SpillMaskRows())
        return ([], [])

    def _row_key(self, args: Tuple):
        """The ``_row_ids`` key of an argument row (mode-dependent)."""
        if self.spilled:
            return encode_constants(args)
        return args

    def close(self) -> None:
        """Release spill files eagerly (a no-op for in-memory columns)."""
        for args_rows, mask_rows in self._by_predicate.values():
            for column in (args_rows, mask_rows):
                closer = getattr(column, "close", None)
                if closer is not None:
                    closer()

    def candidates(self, atom: Atom) -> List[Tuple[Tuple, int]]:
        """(argument row, provenance mask) pairs that could match *atom*.

        Narrowed by the atom's most selective constant position; other
        constant positions are *not* re-checked here (callers verify
        them while matching), mirroring ``FactIndex.candidates``.
        """
        bucket = self._by_predicate.get(atom.predicate)
        if bucket is None:
            return []
        args_rows, mask_rows = bucket
        selected: Optional[List[int]] = None
        for position, argument in enumerate(atom.args):
            if is_constant(argument):
                narrowed = self._by_position.get((atom.predicate, position, argument))
                if narrowed is None:
                    return []
                if selected is None or len(narrowed) < len(selected):
                    selected = narrowed
        ids = range(len(args_rows)) if selected is None else selected
        return [(args_rows[i], mask_rows[i]) for i in ids]

    def support(self, atom: Atom) -> int:
        """OR of the provenances of every fact that could match *atom*.

        Any border the atom maps into under *some* homomorphism is
        contained in this mask, which is what makes the per-atom AND of
        supports a sound upper bound on a query's verdict row.  Memoized
        per (predicate, arity, constant pattern) — hit/miss traffic is
        visible in ``CacheStats.support_hits`` / ``support_misses`` when
        the index carries a stats object.
        """
        const_positions = tuple(
            (position, argument)
            for position, argument in enumerate(atom.args)
            if is_constant(argument)
        )
        key = (atom.predicate, len(atom.args)) + const_positions
        union = self._support_memo.get(key)
        if union is not None:
            if self._stats is not None:
                self._stats.count("support_hits")
            return union
        if self._stats is not None:
            self._stats.count("support_misses")
        union = 0
        for args, mask in self.candidates(atom):
            if union | mask == union:
                continue
            if all(args[position] == argument for position, argument in const_positions):
                union |= mask
        self._support_memo[key] = union
        return union

    def apply_patch(
        self, entries: Sequence[Tuple[int, FrozenSet[Atom]]]
    ) -> FrozenSet[str]:
        """Replace the fact columns of the given bits **in place**.

        Database drift changes a few borders; rebuilding the whole
        merged index would repay the merge for every unchanged border.
        Instead each entry ``(bit, facts)`` swaps in the bit's new fact
        set: the bit is first cleared from every row's provenance
        (a row whose mask drops to zero becomes a **tombstone** — it
        stays in the columnar arrays but can never contribute to a join
        or a support mask, since survivors are computed by AND and
        supports by OR), then set on the rows of the new facts —
        **appending** fresh rows, with their ``(predicate, position,
        constant)`` narrowing entries, for facts the index has never
        held.  Memoized :meth:`support` entries whose predicate was
        touched by the patch are dropped; every other memo stays warm.
        Returns the touched predicates.
        """
        if not entries:
            return frozenset()
        clear_mask = 0
        for bit, _facts in entries:
            clear_mask |= 1 << bit
        keep = ~clear_mask
        touched_predicates = set()
        for predicate, (_args_rows, mask_rows) in self._by_predicate.items():
            for i, mask in enumerate(mask_rows):
                if mask & clear_mask:
                    mask_rows[i] = mask & keep
                    touched_predicates.add(predicate)
        for bit, facts in entries:
            flag = 1 << bit
            self.full_mask |= flag
            for fact in facts:
                touched_predicates.add(fact.predicate)
                bucket = self._by_predicate.get(fact.predicate)
                if bucket is None:
                    bucket = self._by_predicate[fact.predicate] = self._new_columns()
                args_rows, mask_rows = bucket
                rows = self._row_ids.setdefault(fact.predicate, {})
                key = self._row_key(fact.args)
                row_id = rows.get(key)
                if row_id is None:
                    row_id = len(args_rows)
                    args_rows.append(fact.args)
                    mask_rows.append(0)
                    rows[key] = row_id
                    for position, argument in enumerate(fact.args):
                        self._by_position.setdefault(
                            (fact.predicate, position, argument), []
                        ).append(row_id)
                mask_rows[row_id] |= flag
        for key in [k for k in self._support_memo if k[0] in touched_predicates]:
            del self._support_memo[key]
        return frozenset(touched_predicates)


class PoolMatchKernel:
    """One-pass verdict rows for a pool of candidates over merged borders.

    Built for one (evaluator, column layout) pair — the same pair a
    :class:`~repro.engine.verdicts.VerdictMatrix` is built for, which is
    where the kernel is normally created.  *bits* restricts the kernel
    to a subset of column positions (``apply_drift`` evaluates only the
    genuinely new columns through such a restricted kernel); the
    emitted rows then carry bits only at those positions.
    """

    def __init__(self, evaluator, columns, bits: Optional[Iterable[int]] = None):
        self.evaluator = evaluator
        self.columns = columns
        self._engine = evaluator.system.specification.engine
        self._cache = self._engine.cache
        self._strategy = self._engine.strategy
        self._bits: Tuple[int, ...] = tuple(
            range(columns.width) if bits is None else bits
        )
        self._index: Optional[UnifiedBorderIndex] = None
        # arity → {column tuple: its single column bit}; answers of the
        # wrong arity never match a column (the per-pair path's arity
        # short-circuit), so both maps are arity-partitioned.
        self._target_bits: Dict[int, Dict[Tuple, int]] = {}
        self._arity_masks: Dict[int, int] = {}
        self._tables: Dict[Tuple, Dict[Tuple, int]] = {}
        self._rewritten_support_memo: Dict[Tuple, int] = {}

    # -- index construction ------------------------------------------------

    def _border_facts(self, border) -> FrozenSet[Atom]:
        """The strategy-appropriate fact set of one border's ABox."""
        abox = self.evaluator._border_abox(border)
        if self._strategy == "chase":
            # Saturate per border (same memo key as the per-pair
            # path); merging *saturations* keeps provenance exact —
            # facts derived from two different borders never join
            # into a spurious single-border homomorphism because
            # their provenance AND is empty.
            return self._engine.saturate(abox).facts
        return abox.facts

    def _register_columns(self) -> None:
        for bit in self._bits:
            value = self.columns.tuples[bit]
            arity = len(value)
            targets = self._target_bits.setdefault(arity, {})
            targets[value] = targets.get(value, 0) | (1 << bit)
            self._arity_masks[arity] = self._arity_masks.get(arity, 0) | (1 << bit)

    def _bind_tables(self) -> None:
        if self._cache.enabled:
            # Content-addressed identity of this index: the column layout
            # key embeds every border's tuple, radius and atom layers, so
            # the tabled states stay sound across database content
            # changes; the strategy (and chase depth) select which fact
            # sets were merged.  Computing the key hashes whole borders —
            # skip it when the cache would hand back a private dict
            # anyway (same discipline as VerdictMatrix's row store).
            index_key = (
                "kernel_tables",
                self.columns.key(),
                self._bits if len(self._bits) != self.columns.width else "all",
                self._strategy,
                self._engine.chase_depth if self._strategy == "chase" else None,
            )
            self._tables = self._cache.subquery_tables(index_key)

    def _ensure_index(self) -> UnifiedBorderIndex:
        if self._index is not None:
            return self._index
        entries: List[Tuple[int, FrozenSet[Atom]]] = [
            (bit, self._border_facts(self.columns.borders[bit])) for bit in self._bits
        ]
        self._register_columns()
        spill = getattr(self._engine.kernel, "spill", None)
        self._index = UnifiedBorderIndex(
            entries,
            stats=self._cache.stats,
            spill=bool(spill is not None and spill.enabled),
        )
        self._bind_tables()
        return self._index

    def patched(self, new_columns, changed_bits: Sequence[int]) -> "PoolMatchKernel":
        """A kernel over *new_columns* reusing this kernel's index.

        The database-drift successor path: *new_columns* must lay out
        the same tuples at the same bit positions (only borders may
        differ, at exactly *changed_bits*).  When this kernel has a
        built full-width index, the changed bits' fact columns are
        swapped in place via :meth:`UnifiedBorderIndex.apply_patch` and
        the index is **adopted** by the successor — the merge work for
        every unchanged border is never repaid.  This kernel detaches
        from the index (its old borders no longer exist; serving them
        would be stale) and the successor binds fresh tabled subquery
        state under its own content-addressed key.  Without a built
        index there is nothing to reuse and the successor builds lazily.
        """
        successor = PoolMatchKernel(self.evaluator, new_columns)
        index = self._index
        if index is None:
            return successor
        if len(self._bits) != self.columns.width:
            # A restricted kernel's index covers only a bit subset, so the
            # successor cannot adopt it — but this kernel is superseded
            # either way.  Close the stale index *now*: in spill mode its
            # columns pin memory-mapped temp files, and leaving the
            # release to garbage collection keeps disk pinned for as long
            # as any stray reference survives.
            self.close()
            return successor
        self._index = None
        self._tables = {}
        index.apply_patch(
            [
                (bit, successor._border_facts(new_columns.borders[bit]))
                for bit in changed_bits
            ]
        )
        successor._register_columns()
        successor._index = index
        successor._bind_tables()
        return successor

    def close(self) -> None:
        """Detach and close the built index (spill temp files released).

        Idempotent and safe on an unbuilt kernel.  Callers that create
        throwaway kernels (drift re-evaluation over a restricted bit
        set) close them explicitly so spilled columns never wait for the
        garbage collector to give the disk back.
        """
        index, self._index = self._index, None
        self._tables = {}
        if index is not None:
            index.close()

    # -- rows --------------------------------------------------------------

    def row(self, query) -> int:
        """The full verdict bitset of one query over the covered columns."""
        if isinstance(query, UnionOfConjunctiveQueries):
            # Same reduction as the verdict matrix: a UCQ J-matches a
            # border iff some disjunct does, under both strategies.
            union_row = 0
            for disjunct in query.disjuncts:
                union_row |= self.row(disjunct)
            return union_row
        index = self._ensure_index()
        targets = self._target_bits.get(query.arity)
        if not targets:
            return 0
        if self._strategy == "rewriting":
            # The per-pair path evaluates the perfect rewriting over each
            # border's retrieved ABox; here each rewritten disjunct makes
            # one unified pass instead.
            row = 0
            full = self._arity_masks[query.arity]
            for disjunct in self._cache.rewriting(query).disjuncts:
                row |= self._cq_row(disjunct, targets, index)
                if row == full:
                    break
            return row
        return self._cq_row(query, targets, index)

    def rows(self, queries: Sequence) -> List[int]:
        """Verdict rows for a whole pool (tabled prefixes shared across it)."""
        return [self.row(query) for query in queries]

    def _cq_row(self, cq: ConjunctiveQuery, targets: Dict[Tuple, int], index) -> int:
        state, var_index = self._match_state(tuple(sorted(cq.body)), index)
        if not state:
            return 0
        head_positions = [var_index[variable] for variable in cq.head]
        row = 0
        for values, mask in state.items():
            flag = targets.get(tuple(values[position] for position in head_positions))
            if flag:
                row |= mask & flag
        return row

    # -- the tabled set-at-a-time join ------------------------------------

    def _match_state(
        self, atoms: Tuple[Atom, ...], index: UnifiedBorderIndex
    ) -> Tuple[Dict[Tuple, int], Dict[Variable, int]]:
        """Partial-match state of a full body: binding tuple → provenance OR.

        Bindings are tuples aligned with the body's variables in order
        of first appearance over the canonically sorted atoms; the mask
        of a binding is the OR over all homomorphisms reaching it of the
        AND of their facts' provenances.  Merging homomorphisms that
        agree on the binding is sound because any extension depends only
        on the bound values, never on which facts produced them.
        """
        # Canonical renaming (first appearance over the sorted body) so
        # α-equivalent prefixes of different candidates share one table
        # entry; renaming a prefix is the truncation of renaming the
        # whole body, which is what makes prefix keys compositional.
        var_index: Dict[Variable, int] = {}
        renamed: List[Atom] = []
        prefix_vars: List[int] = []  # distinct vars within the first k atoms
        for atom in atoms:
            new_args = []
            for argument in atom.args:
                if is_variable(argument):
                    position = var_index.setdefault(argument, len(var_index))
                    new_args.append(Variable(f"k{position}"))
                else:
                    new_args.append(argument)
            renamed.append(Atom(atom.predicate, tuple(new_args)))
            prefix_vars.append(len(var_index))

        stats = self._cache.stats
        start = 0
        state: Dict[Tuple, int] = {(): index.full_mask}
        for length in range(len(atoms), 0, -1):
            cached = self._tables.get(tuple(renamed[:length]))
            if cached is not None:
                stats.count("subquery_hits")
                state = cached
                start = length
                break
            stats.count("subquery_misses")
        for position in range(start, len(atoms)):
            known = prefix_vars[position - 1] if position else 0
            state = self._extend(state, atoms[position], var_index, known, index)
            # First writer wins (identical values either way); the tabled
            # dicts are treated as immutable by every consumer.
            state = self._tables.setdefault(tuple(renamed[: position + 1]), state)
        return state, var_index

    def _extend(
        self,
        state: Dict[Tuple, int],
        atom: Atom,
        var_index: Dict[Variable, int],
        known: int,
        index: UnifiedBorderIndex,
    ) -> Dict[Tuple, int]:
        """Hash-join one atom into the partial-match state."""
        if not state:
            # A dead prefix (e.g. an earlier zero-provenance atom) stays
            # dead; don't pay for the probe table just to join nothing.
            return {}
        const_checks: List[Tuple[int, object]] = []
        bound_checks: List[Tuple[int, int]] = []  # (atom position, binding slot)
        new_positions: List[List[int]] = []  # per new variable, its positions
        slot_of_new: Dict[Variable, int] = {}
        for position, argument in enumerate(atom.args):
            if is_constant(argument):
                const_checks.append((position, argument))
            elif var_index[argument] < known:
                bound_checks.append((position, var_index[argument]))
            else:
                slot = slot_of_new.get(argument)
                if slot is None:
                    slot_of_new[argument] = len(new_positions)
                    new_positions.append([position])
                else:
                    new_positions[slot].append(position)

        # Probe table: values at the bound positions → matching fact rows.
        probe: Dict[Tuple, List[Tuple[Tuple, int]]] = {}
        for args, mask in index.candidates(atom):
            if any(args[position] != argument for position, argument in const_checks):
                continue
            extracted = []
            consistent = True
            for positions in new_positions:
                value = args[positions[0]]
                for position in positions[1:]:
                    if args[position] != value:
                        consistent = False
                        break
                if not consistent:
                    break
                extracted.append(value)
            if not consistent:
                continue
            key = tuple(args[position] for position, _ in bound_checks)
            probe.setdefault(key, []).append((tuple(extracted), mask))

        joined: Dict[Tuple, int] = {}
        if not probe:
            return joined
        for values, mask in state.items():
            hits = probe.get(tuple(values[slot] for _, slot in bound_checks))
            if not hits:
                continue
            for extracted, fact_mask in hits:
                survivors = mask & fact_mask
                if not survivors:
                    continue
                key = values + extracted
                previous = joined.get(key)
                joined[key] = survivors if previous is None else previous | survivors
        return joined

    # -- optimistic bounds -------------------------------------------------

    def upper_bound_row(self, query) -> int:
        """A cheap superset of ``row(query)``: per-atom provenance OR, ANDed.

        If the query J-matches border ``i``, every body atom maps into a
        fact of border ``i`` matching the atom's predicate and
        constants, so ``i`` survives each atom's support mask; the AND
        over atoms (restricted to arity-compatible columns) is therefore
        an upper bound — the raw material of top-k bound pruning.
        """
        if isinstance(query, UnionOfConjunctiveQueries):
            union_bound = 0
            for disjunct in query.disjuncts:
                union_bound |= self.upper_bound_row(disjunct)
            return union_bound
        index = self._ensure_index()
        arity_mask = self._arity_masks.get(query.arity, 0)
        if not arity_mask:
            return 0
        if self._strategy == "rewriting":
            bound = 0
            for disjunct in self._cache.rewriting(query).disjuncts:
                bound |= self._cq_bound(disjunct, arity_mask, index)
                if bound == arity_mask:
                    break
            return bound
        return self._cq_bound(query, arity_mask, index)

    def _cq_bound(self, cq: ConjunctiveQuery, arity_mask: int, index) -> int:
        bound = arity_mask
        for atom in cq.body:
            bound &= index.support(atom)
            if not bound:
                break
        return bound

    # -- generator-facing provenance supports ------------------------------

    def index(self) -> UnifiedBorderIndex:
        """The unified border index (built on first access)."""
        return self._ensure_index()

    def atom_provenance_support(self, atom: Atom) -> int:
        """Borders a *query* atom could possibly map into, strategy-aware.

        Under the chase strategy the index already stores saturated
        facts, so the raw index support is the answer.  Under the
        rewriting strategy a query atom can be satisfied through a
        rewritten disjunct whose atoms differ from the original (e.g.
        ``likes(x, y)`` satisfied by a ``studies`` fact), so the raw
        support would be *unsound* as a pruning bound; instead the
        single-atom query over the atom's variables is perfectly
        rewritten (memoized in the shared cache) and the support is the
        OR over its disjuncts of each disjunct's support AND.  Either
        way the result is a superset of the borders any homomorphism of
        a body containing *atom* can lie in — the raw material of
        generator-level pruning (:class:`ProvenancePruner`).
        """
        index = self._ensure_index()
        if self._strategy != "rewriting":
            return index.support(atom)
        key = (atom.predicate, len(atom.args)) + tuple(
            (position, argument)
            for position, argument in enumerate(atom.args)
            if is_constant(argument)
        )
        support = self._rewritten_support_memo.get(key)
        if support is None:
            variables = tuple(
                dict.fromkeys(
                    argument for argument in atom.args if is_variable(argument)
                )
            )
            single = ConjunctiveQuery(variables, (atom,))
            support = 0
            full = index.full_mask
            for disjunct in self._cache.rewriting(single).disjuncts:
                disjunct_bound = full
                for rewritten in disjunct.body:
                    disjunct_bound &= index.support(rewritten)
                    if not disjunct_bound:
                        break
                support |= disjunct_bound
                if support == full:
                    break
            self._rewritten_support_memo[key] = support
        return support

    def __str__(self):
        return (
            f"PoolMatchKernel({self.columns}, bits={len(self._bits)}, "
            f"strategy={self._strategy!r})"
        )


class ProvenancePruner:
    """Generator-level pruning oracle over per-atom provenance supports.

    Wraps one labeling's :class:`PoolMatchKernel` and answers, for a
    candidate *body* that has not been materialised into a query yet,
    whether it could possibly produce a non-zero verdict row: the AND of
    the body atoms' provenance supports
    (:meth:`PoolMatchKernel.atom_provenance_support`) is a superset of
    the true row, so a zero bound proves the row is zero *before* the
    query is built, deduplicated, or handed to the verdict matrix.  The
    bottom-up generator (:meth:`repro.core.candidates.CandidateGenerator.generate`)
    and the top-down refinement search
    (:class:`repro.core.refinement.RefinementSearch`) both accept one.

    Soundness of *dropping* a zero-bound candidate is the caller's
    responsibility: all zero-row candidates score identically, so
    :meth:`repro.core.best_describe.BestDescriptionSearch.search` only
    keeps a pruned pool when the exact k-th score is strictly above the
    zero-row floor score (and regenerates exhaustively otherwise).
    ``checked`` / ``pruned`` counters make the reduction reportable.
    """

    __slots__ = ("kernel", "columns", "selection", "checked", "pruned")

    def __init__(self, kernel: PoolMatchKernel, columns, selection=None):
        # ``selection`` maps local column bits to the kernel's bit space
        # (needed when the kernel is a batch kernel's *global* kernel,
        # whose columns are a merged superset of this layout's).  With a
        # per-layout kernel the spaces coincide and it stays None.
        self.kernel = kernel
        self.columns = columns
        self.selection = selection
        self.checked = 0
        self.pruned = 0

    def body_bound(self, atoms: Iterable[Atom]) -> int:
        """AND of the body atoms' supports — a superset of the true row.

        Expressed in this layout's *local* bit space (sliced through
        ``selection`` when the kernel's space is wider).
        """
        bound = self.kernel.index().full_mask
        for atom in atoms:
            bound &= self.kernel.atom_provenance_support(atom)
            if not bound:
                break
        if self.selection is not None and bound:
            local = 0
            for bit, position in enumerate(self.selection):
                local |= ((bound >> position) & 1) << bit
            bound = local
        return bound

    def admits(self, atoms: Iterable[Atom]) -> bool:
        """Whether the body could match *any* border column (counts traffic)."""
        self.checked += 1
        if self.body_bound(atoms):
            return True
        self.pruned += 1
        return False

    def admits_positive(self, atoms: Iterable[Atom]) -> bool:
        """Whether the body could match any *positive* border column.

        A ``False`` proves true-positive count zero — exactly the
        condition the refinement search's ``prune_zero_coverage`` tests
        by evaluating a full profile, so the beam search can discard the
        refinement without ever J-matching it.
        """
        self.checked += 1
        if self.body_bound(atoms) & self.columns.positives_mask:
            return True
        self.pruned += 1
        return False

    def __str__(self):
        return (
            f"ProvenancePruner(checked={self.checked}, pruned={self.pruned}, "
            f"columns={self.columns})"
        )
