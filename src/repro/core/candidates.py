"""Bottom-up generation of candidate explanation queries.

The paper's framework (Definition 3.7) quantifies over *all* queries of
a language ``L_O``, which is infinite.  A practical search needs a
finite, relevant candidate space.  This module builds candidates
bottom-up from the data, mirroring how the example queries of
Example 3.6 relate to the borders of the positive tuples:

1. for every positive tuple ``t``, compute its border ``B_{t,r}(D)`` and
   retrieve+saturate the corresponding ontology facts (so that axiom-
   derived atoms such as ``likes(A10, 'Math')`` are available);
2. abstract the facts into query atoms: the components of ``t`` become
   answer variables, the remaining constants become either variables or
   constants (both variants are generated, governed by the policy);
3. enumerate connected sub-conjunctions up to ``max_atoms`` atoms that
   mention every answer variable;
4. deduplicate by canonical signature (and optionally semantically).

The resulting pool contains, for the paper's university example, the
queries ``q1``, ``q2`` and ``q3`` of Example 3.6 among others.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..dl.reasoner import Reasoner
from ..errors import ExplanationError, QueryArityError, UnsafeQueryError
from ..obdm.chase import ChaseEngine, is_labelled_null
from ..obdm.system import OBDMSystem
from ..queries.atoms import Atom
from ..queries.containment import deduplicate_queries
from ..queries.cq import ConjunctiveQuery
from ..queries.terms import Constant, Term, Variable, VariableFactory, is_constant
from .border import Border, BorderComputer
from .labeling import ConstantTuple, Labeling, normalize_tuple


@dataclass(frozen=True)
class CandidateConfig:
    """Tuning knobs of the candidate generator."""

    max_atoms: int = 3
    """Largest number of atoms in a generated conjunction."""

    max_kept_constants: int = 2
    """Largest number of non-answer constants kept (not variabilised) per query."""

    max_candidates: int = 2000
    """Hard cap on the size of the returned pool."""

    saturate: bool = True
    """Chase the border ABox with the ontology before abstraction."""

    include_most_specific: bool = False
    """Also emit, per positive tuple, the full (possibly large) border query."""

    semantic_deduplication: bool = False
    """Additionally remove semantically equivalent queries (slower)."""

    max_positive_seeds: Optional[int] = None
    """Use only the first N positive tuples as seeds (None = all)."""


class CandidatePool(List[ConjunctiveQuery]):
    """A generated candidate pool plus its generation accounting.

    A plain list of queries (drop-in for every existing consumer) that
    also reports how the pool was shaped: ``generated`` distinct
    candidates were materialised, ``truncated`` of them were dropped by
    the deterministic ``max_candidates`` cutoff, ``unexplored_seeds``
    positive tuples were never abstracted because the pool was already
    full, and — when a :class:`~repro.engine.kernel.ProvenancePruner`
    was supplied — ``pruned`` of ``checked`` candidate bodies were
    discarded *before* materialisation because their AND-of-supports
    bound was zero.

    ``generated``/``truncated`` only cover the seeds that were explored;
    :attr:`exhausted` is the flag that says the numbers describe the
    *whole* candidate space (no cutoff fired anywhere).
    """

    def __init__(
        self,
        queries: Iterable[ConjunctiveQuery] = (),
        generated: int = 0,
        truncated: int = 0,
        pruned: int = 0,
        checked: int = 0,
        unexplored_seeds: int = 0,
    ):
        super().__init__(queries)
        self.generated = generated
        self.truncated = truncated
        self.pruned = pruned
        self.checked = checked
        self.unexplored_seeds = unexplored_seeds

    @property
    def exhausted(self) -> bool:
        """True when enumeration ran to completion (nothing was cut off)."""
        return self.truncated == 0 and self.unexplored_seeds == 0

    def __str__(self):
        return (
            f"CandidatePool(size={len(self)}, generated={self.generated}, "
            f"truncated={self.truncated}, unexplored_seeds={self.unexplored_seeds}, "
            f"pruned={self.pruned})"
        )


class CandidateGenerator:
    """Generates candidate CQs from the borders of the positive examples."""

    def __init__(
        self,
        system: OBDMSystem,
        radius: int = 1,
        config: Optional[CandidateConfig] = None,
        border_computer: Optional[BorderComputer] = None,
    ):
        self.system = system
        self.radius = radius
        self.config = config or CandidateConfig()
        self.borders = border_computer or BorderComputer(system.database)
        self._chaser = ChaseEngine(system.ontology)
        self._skipped_variants = 0

    # -- public API --------------------------------------------------------

    def generate(self, labeling: Labeling, pruner=None) -> CandidatePool:
        """Candidate pool for a labeling (seeded by its positive tuples).

        With a :class:`~repro.engine.kernel.ProvenancePruner`, candidate
        bodies whose provenance bound is zero are skipped before the
        query object is even built (the pool reports how many).

        The ``max_candidates`` cutoff is deterministic: candidates carry
        a stable canonical ordering — seeds sorted by ``repr``, bodies
        per seed in ascending atom count over lexicographically sorted
        fact subsets — and truncation keeps exactly the first
        ``max_candidates`` of it.  Seeds beyond the one that fills the
        pool are never abstracted (borders can hold hundreds of facts,
        so running every seed to completion just to count the tail would
        dwarf the search itself); instead the cutoff is *surfaced*:
        ``truncated`` counts the overflowing seed's dropped remainder,
        ``unexplored_seeds`` the seeds never visited, and
        ``pool.exhausted`` is True exactly when neither fired — i.e.
        when ``generated`` describes the complete candidate space.
        """
        seeds = sorted(labeling.positives, key=repr)
        if self.config.max_positive_seeds is not None:
            seeds = seeds[: self.config.max_positive_seeds]
        checked_before = pruner.checked if pruner is not None else 0
        self._skipped_variants = 0
        pool: List[ConjunctiveQuery] = []
        seen: Set[Tuple] = set()
        truncated = 0
        unexplored_seeds = 0
        for index, seed in enumerate(seeds):
            if len(pool) >= self.config.max_candidates:
                unexplored_seeds = len(seeds) - index
                break
            for candidate in self.candidates_for(seed, pruner=pruner):
                signature = candidate.signature()
                if signature in seen:
                    continue
                seen.add(signature)
                if len(pool) < self.config.max_candidates:
                    pool.append(candidate)
                else:
                    truncated += 1
        generated = len(pool) + truncated
        if self.config.semantic_deduplication:
            pool = deduplicate_queries(pool)
        return CandidatePool(
            pool,
            generated=generated,
            truncated=truncated,
            pruned=self._skipped_variants,
            checked=(pruner.checked - checked_before) if pruner is not None else 0,
            unexplored_seeds=unexplored_seeds,
        )

    def candidates_for(self, raw, pruner=None) -> List[ConjunctiveQuery]:
        """Candidate queries abstracted from one positive tuple's border."""
        key = normalize_tuple(raw)
        border = self.borders.border(key, self.radius)
        facts = self._ontology_facts(border)
        if not facts:
            return []
        answer_variables = tuple(Variable(f"x{i}") for i in range(len(key)))
        abstraction = _BorderAbstraction(key, answer_variables, facts)
        candidates = abstraction.enumerate(
            max_atoms=self.config.max_atoms,
            max_kept_constants=self.config.max_kept_constants,
            pruner=pruner,
        )
        self._skipped_variants += abstraction.skipped
        if self.config.include_most_specific:
            most_specific = abstraction.most_specific_query()
            if most_specific is not None:
                if pruner is None or pruner.admits(most_specific.body):
                    candidates.append(most_specific)
                else:
                    self._skipped_variants += 1
        return candidates

    # -- helpers -------------------------------------------------------------

    def _ontology_facts(self, border: Border) -> FrozenSet[Atom]:
        """Retrieved (and optionally saturated) ontology facts of a border."""
        sub_database = self.system.database.restrict_to(border.atoms)
        abox = self.system.specification.retrieve_abox(sub_database)
        facts = set(abox.facts)
        if self.config.saturate:
            facts = set(self._chaser.chase(facts))
        # Atoms whose every argument is a labelled null cannot contribute a
        # useful query atom (they would become a disconnected conjunct).
        return frozenset(
            fact
            for fact in facts
            if not all(is_labelled_null(argument) for argument in fact.args)
        )


class _BorderAbstraction:
    """Turns the ontology facts of one border into candidate query bodies."""

    def __init__(
        self,
        key: ConstantTuple,
        answer_variables: Tuple[Variable, ...],
        facts: FrozenSet[Atom],
    ):
        self.key = key
        self.answer_variables = answer_variables
        self.facts = sorted(facts)
        # Upper bound on how many abstracted bodies the last enumerate()
        # call skipped via its pruner (variant-weighted, see enumerate).
        self.skipped = 0
        self._constant_to_term: Dict[Constant, Term] = {}
        factory = VariableFactory(prefix="y")
        for constant, variable in zip(key, answer_variables):
            self._constant_to_term[constant] = variable
        self._other_variable: Dict[Constant, Variable] = {}
        for fact in self.facts:
            for argument in fact.args:
                if argument not in self._constant_to_term and argument not in self._other_variable:
                    self._other_variable[argument] = factory.fresh()

    # -- abstraction ------------------------------------------------------------

    def _abstract_atom(self, fact: Atom, kept: FrozenSet[Constant]) -> Atom:
        arguments: List[Term] = []
        for argument in fact.args:
            if argument in self._constant_to_term:
                arguments.append(self._constant_to_term[argument])
            elif argument in kept and not is_labelled_null(argument):
                arguments.append(argument)
            else:
                arguments.append(self._other_variable[argument])
        return Atom(fact.predicate, tuple(arguments))

    def _answer_constants(self) -> Set[Constant]:
        return set(self.key)

    def _mentions_answer(self, fact: Atom) -> bool:
        answers = self._answer_constants()
        return any(argument in answers for argument in fact.args)

    # -- enumeration -----------------------------------------------------------------

    def enumerate(
        self, max_atoms: int, max_kept_constants: int, pruner=None
    ) -> List[ConjunctiveQuery]:
        """All connected sub-conjunctions up to ``max_atoms`` atoms.

        With a pruner, each admissible subset is first checked through
        its *widest* abstraction (no constants kept: variabilising an
        argument only ever widens an atom's provenance support, so a
        zero bound there proves a zero bound for every kept-constant
        variant and the whole subset is skipped); surviving non-empty
        ``kept`` variants are then checked individually, all before any
        :class:`ConjunctiveQuery` is materialised.
        """
        queries: List[ConjunctiveQuery] = []
        seen: Set[Tuple] = set()
        self.skipped = 0
        for size in range(1, max_atoms + 1):
            for subset in itertools.combinations(self.facts, size):
                if not self._is_admissible(subset):
                    continue
                if pruner is not None and not pruner.admits(
                    tuple(self._abstract_atom(fact, frozenset()) for fact in subset)
                ):
                    # The whole subset dies; count every kept-constant
                    # variant it would have produced, so callers can
                    # bound how many queries pruning hid (the cutoff
                    # certificate in BestDescriptionSearch.search needs
                    # an upper bound, not the number of oracle calls).
                    self.skipped += sum(
                        1 for _ in self._constant_subsets(subset, max_kept_constants)
                    )
                    continue
                for kept in self._constant_subsets(subset, max_kept_constants):
                    body = tuple(self._abstract_atom(fact, kept) for fact in subset)
                    if pruner is not None and kept and not pruner.admits(body):
                        self.skipped += 1
                        continue
                    query = self._safe_query(body)
                    if query is None:
                        continue
                    signature = query.signature()
                    if signature not in seen:
                        seen.add(signature)
                        queries.append(query)
        return queries

    def most_specific_query(self) -> Optional[ConjunctiveQuery]:
        """The full border query with every non-answer constant kept."""
        usable = [fact for fact in self.facts]
        if not usable:
            return None
        kept = frozenset(
            constant for constant in self._other_variable if not is_labelled_null(constant)
        )
        body = tuple(self._abstract_atom(fact, kept) for fact in usable)
        return self._safe_query(body)

    # -- admissibility ------------------------------------------------------------------

    def _is_admissible(self, subset: Sequence[Atom]) -> bool:
        """Subsets must cover every answer constant and be connected to them."""
        answers = self._answer_constants()
        covered = set()
        for fact in subset:
            covered |= {argument for argument in fact.args if argument in answers}
        if covered != answers:
            return False
        # Every atom must be reachable from an answer constant through
        # shared constants within the subset (otherwise the abstracted
        # query has a conjunct disconnected from the answer variables).
        remaining = list(subset)
        frontier_constants: Set[Constant] = set(answers)
        changed = True
        connected: Set[Atom] = set()
        while changed:
            changed = False
            for fact in list(remaining):
                if any(argument in frontier_constants for argument in fact.args):
                    connected.add(fact)
                    remaining.remove(fact)
                    frontier_constants |= set(fact.args)
                    changed = True
        return not remaining

    def _constant_subsets(
        self, subset: Sequence[Atom], max_kept_constants: int
    ) -> Iterable[FrozenSet[Constant]]:
        """Which non-answer constants to keep: none, all (capped), singletons."""
        answers = self._answer_constants()
        others: List[Constant] = []
        for fact in subset:
            for argument in fact.args:
                if (
                    argument not in answers
                    and not is_labelled_null(argument)
                    and argument not in others
                ):
                    others.append(argument)
        yielded: Set[FrozenSet[Constant]] = set()

        def emit(kept: FrozenSet[Constant]):
            if kept not in yielded:
                yielded.add(kept)
                return True
            return False

        if emit(frozenset()):
            yield frozenset()
        for constant in others:
            kept = frozenset({constant})
            if emit(kept):
                yield kept
        if len(others) <= max_kept_constants:
            kept = frozenset(others)
            if emit(kept):
                yield kept

    def _safe_query(self, body: Tuple[Atom, ...]) -> Optional[ConjunctiveQuery]:
        """Build a CQ, returning ``None`` when the head would be unsafe."""
        try:
            return ConjunctiveQuery(self.answer_variables, body)
        except (QueryArityError, UnsafeQueryError):
            return None
