"""Scoring expressions ``Z`` and Z-scores (Section 3, Example 3.8).

Once every criterion of ``Δ`` has been evaluated, the framework combines
the values with a mathematical expression ``Z`` having one variable
``z_δ`` per criterion; the resulting number is the *Z-score* of the
query, and the best-describing query maximises it (Definition 3.7).

The expression used in Example 3.8 is the weighted average

    Z = (α·z_δ1 + β·z_δ4 + γ·z_δ5) / (α + β + γ)

implemented by :class:`WeightedAverage`.  Other natural combinators are
provided (weighted product/geometric mean, minimum, harmonic mean) plus
an escape hatch for arbitrary callables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ScoringError


class ScoringExpression:
    """Base class: combines criterion values into a single Z-score."""

    def variables(self) -> Tuple[str, ...]:
        """The criterion keys the expression refers to."""
        raise NotImplementedError

    def score(self, values: Mapping[str, float]) -> float:
        """Evaluate the expression on a full assignment of its variables."""
        raise NotImplementedError

    def _require(self, values: Mapping[str, float]) -> None:
        missing = [key for key in self.variables() if key not in values]
        if missing:
            raise ScoringError(
                f"missing criterion values for {missing}; provided: {sorted(values)}"
            )


def _validate_weight_vector(name: str, weights: Tuple[Tuple[str, float], ...]) -> None:
    """Shared weight checks for the weighted combinators.

    Rejects non-finite weights (they silently poison every score with
    ``nan``/``inf``) and all-zero weight vectors (the weighted average
    would divide by zero, the weighted product would constantly be 1) at
    construction time, where the mistake is visible.
    """
    if not weights:
        raise ScoringError(f"{name} needs at least one weight")
    for key, weight in weights:
        if not math.isfinite(weight):
            raise ScoringError(f"{name} weight for {key!r} must be finite, got {weight}")
    if all(weight == 0 for _, weight in weights):
        raise ScoringError(
            f"{name} received an all-zero weight vector "
            f"({', '.join(key for key, _ in weights)}); at least one criterion "
            "must carry non-zero weight"
        )


@dataclass(frozen=True)
class WeightedAverage(ScoringExpression):
    """``Z = Σ w_δ · z_δ / Σ w_δ`` — the expression of Example 3.8."""

    weights: Tuple[Tuple[str, float], ...]

    def __post_init__(self):
        _validate_weight_vector("WeightedAverage", self.weights)
        total = sum(weight for _, weight in self.weights)
        if total <= 0:
            raise ScoringError("WeightedAverage weights must sum to a positive number")

    @staticmethod
    def of(weights: Mapping[str, float]) -> "WeightedAverage":
        return WeightedAverage(tuple(sorted(weights.items())))

    def variables(self) -> Tuple[str, ...]:
        return tuple(key for key, _ in self.weights)

    def score(self, values: Mapping[str, float]) -> float:
        self._require(values)
        total_weight = sum(weight for _, weight in self.weights)
        weighted = sum(weight * values[key] for key, weight in self.weights)
        return weighted / total_weight


@dataclass(frozen=True)
class WeightedProduct(ScoringExpression):
    """``Z = Π z_δ^{w_δ}`` (weighted geometric combination, zero-sensitive)."""

    weights: Tuple[Tuple[str, float], ...]

    def __post_init__(self):
        _validate_weight_vector("WeightedProduct", self.weights)

    @staticmethod
    def of(weights: Mapping[str, float]) -> "WeightedProduct":
        return WeightedProduct(tuple(sorted(weights.items())))

    def variables(self) -> Tuple[str, ...]:
        return tuple(key for key, _ in self.weights)

    def score(self, values: Mapping[str, float]) -> float:
        self._require(values)
        product = 1.0
        for key, weight in self.weights:
            value = values[key]
            if value == 0.0 and weight < 0:
                raise ScoringError(
                    f"WeightedProduct cannot raise criterion {key!r} = 0 to the "
                    f"negative weight {weight}"
                )
            product *= value ** weight
        return product


@dataclass(frozen=True)
class MinScore(ScoringExpression):
    """``Z = min z_δ`` — a worst-case (egalitarian) combination."""

    keys: Tuple[str, ...]

    def __post_init__(self):
        if not self.keys:
            raise ScoringError("MinScore needs at least one criterion key")

    def variables(self) -> Tuple[str, ...]:
        return self.keys

    def score(self, values: Mapping[str, float]) -> float:
        self._require(values)
        return min(values[key] for key in self.keys)


@dataclass(frozen=True)
class HarmonicMean(ScoringExpression):
    """Harmonic mean of the selected criteria (F-measure-like)."""

    keys: Tuple[str, ...]

    def __post_init__(self):
        if not self.keys:
            raise ScoringError("HarmonicMean needs at least one criterion key")

    def variables(self) -> Tuple[str, ...]:
        return self.keys

    def score(self, values: Mapping[str, float]) -> float:
        self._require(values)
        selected = [values[key] for key in self.keys]
        if any(value == 0 for value in selected):
            return 0.0
        return len(selected) / sum(1.0 / value for value in selected)


@dataclass(frozen=True)
class CallableExpression(ScoringExpression):
    """Wrap an arbitrary ``f(values_dict) -> float`` as a scoring expression."""

    keys: Tuple[str, ...]
    function: Callable[[Mapping[str, float]], float]
    label: str = "custom"

    def variables(self) -> Tuple[str, ...]:
        return self.keys

    def score(self, values: Mapping[str, float]) -> float:
        self._require(values)
        return float(self.function(values))


#: Expression types that are componentwise monotone in every criterion
#: value, so their maximum over per-criterion intervals is attained at a
#: corner assignment — the property top-k bound pruning
#: (:meth:`repro.core.best_describe.BestDescriptionSearch.top_k`) relies
#: on.  Matched by exact type: a subclass (or :class:`CallableExpression`)
#: may override ``score`` arbitrarily, so it falls back to exhaustive
#: ranking instead of pruning.
MONOTONE_EXPRESSION_TYPES = (WeightedAverage, WeightedProduct, MinScore, HarmonicMean)


def describe_expression(expression: ScoringExpression) -> str:
    """Short human-readable description used in explanation reports."""
    name = type(expression).__name__
    try:
        variables = ", ".join(expression.variables())
    except NotImplementedError:
        variables = "?"
    return f"{name}({variables})"


# ---------------------------------------------------------------------------
# Ready-made expressions
# ---------------------------------------------------------------------------

def example_3_8_expression(alpha: float = 1.0, beta: float = 1.0, gamma: float = 1.0) -> WeightedAverage:
    """The expression ``Z`` of Example 3.8 over ``Δ = {δ1, δ4, δ5}``.

    ``alpha`` weights δ1 (positive coverage), ``beta`` weights δ4
    (negative exclusion), ``gamma`` weights δ5 (query compactness).
    """
    return WeightedAverage.of({"delta1": alpha, "delta4": beta, "delta5": gamma})


def balanced_expression() -> WeightedAverage:
    """Equal-weight average of δ1 and δ4 (fidelity only, no size penalty)."""
    return WeightedAverage.of({"delta1": 1.0, "delta4": 1.0})


def fidelity_first_expression(size_weight: float = 0.2) -> WeightedAverage:
    """Mostly fidelity, with a small preference for compact queries."""
    return WeightedAverage.of({"delta1": 1.0, "delta4": 1.0, "delta5": size_weight})
