"""Top-down refinement search for explanation queries.

The bottom-up generator of :mod:`repro.core.candidates` abstracts
queries from the data.  This module implements the complementary,
concept-learning-style strategy (in the spirit of the DL-Learner /
DL-FOIL systems the paper cites): start from the most general queries
over the ontology vocabulary and *refine* them step by step, keeping a
beam of the highest-scoring queries.

Refinement operators on a CQ ``q(x) :- body``:

* **add-atom** — conjoin a new atom that shares a variable with the
  current body (a concept atom ``A(v)`` or a role atom ``R(v, fresh)`` /
  ``R(fresh, v)``);
* **bind-constant** — replace an existential variable with a constant
  observed in the positive borders;
* **specialise-predicate** — replace an atom's predicate with one of its
  direct subsumees in the ontology (e.g. ``likes`` → ``studies``).

Each operator makes the query more specific (its certain answers can
only shrink), so the search explores the generalisation lattice from the
top, pruning branches whose positive coverage (δ1) already dropped to 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..dl.reasoner import Reasoner
from ..dl.syntax import AtomicConcept, AtomicRole, ExistentialRestriction, InverseRole
from ..errors import ExplanationError
from ..obdm.system import OBDMSystem
from ..queries.atoms import Atom
from ..queries.cq import ConjunctiveQuery
from ..queries.terms import Constant, Variable, VariableFactory, is_variable
from .border import BorderComputer
from .labeling import Labeling
from .matching import MatchEvaluator


@dataclass(frozen=True)
class RefinementConfig:
    """Tuning knobs of the beam search."""

    beam_width: int = 10
    max_atoms: int = 3
    max_iterations: int = 4
    max_constants: int = 12
    """How many border constants are considered for the bind-constant operator."""

    prune_zero_coverage: bool = True
    """Discard refinements that no longer match any positive tuple."""


class RefinementSearch:
    """Beam search over the CQ refinement lattice."""

    def __init__(
        self,
        system: OBDMSystem,
        labeling: Labeling,
        evaluator: MatchEvaluator,
        score_function: Callable[[ConjunctiveQuery], float],
        config: Optional[RefinementConfig] = None,
        pruner=None,
    ):
        if labeling.arity != 1:
            raise ExplanationError(
                "refinement search currently supports unary labelings; "
                "use the bottom-up candidate generator for higher arities"
            )
        self.system = system
        self.labeling = labeling
        self.evaluator = evaluator
        self.score_function = score_function
        self.config = config or RefinementConfig()
        # Generator-level pruning oracle (see
        # repro.engine.kernel.ProvenancePruner): lets prune_zero_coverage
        # discard a refinement from its provenance bound alone, without
        # evaluating a full match profile.
        self.pruner = pruner
        self.reasoner = Reasoner(system.ontology)
        self._answer_variable = Variable("x")
        self._abox_predicates = self._relevant_predicates()
        self._border_constants = self._collect_border_constants()

    # -- initial beam -----------------------------------------------------------

    def _relevant_predicates(self) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """Ontology concepts/roles that actually occur in the virtual ABox."""
        abox_predicates = self.system.virtual_abox().predicates()
        ontology = self.system.ontology
        concepts = frozenset(p for p in abox_predicates if p in ontology.concept_names)
        roles = frozenset(p for p in abox_predicates if p in ontology.role_names)
        # Predicates derivable through the ontology are also relevant: a
        # super-role such as ``likes`` never occurs in the ABox directly
        # but is entailed for every ``studies`` fact.
        derived_concepts, derived_roles = set(concepts), set(roles)
        for role_name in roles:
            role = AtomicRole(role_name)
            for subsumer in self.reasoner.role_subsumers(role):
                derived_roles.add(subsumer.predicate)
            for concept in self.reasoner.subsumers(ExistentialRestriction(role)):
                if isinstance(concept, AtomicConcept):
                    derived_concepts.add(concept.name)
            for concept in self.reasoner.subsumers(ExistentialRestriction(role.inverse())):
                if isinstance(concept, AtomicConcept):
                    derived_concepts.add(concept.name)
        for concept_name in concepts:
            for concept in self.reasoner.subsumers(AtomicConcept(concept_name)):
                if isinstance(concept, AtomicConcept):
                    derived_concepts.add(concept.name)
        return frozenset(derived_concepts), frozenset(derived_roles)

    def _collect_border_constants(self) -> List[Constant]:
        """Constants from positive borders, used by the bind-constant operator."""
        counts: Dict[Constant, int] = {}
        positive_keys = {t[0] for t in self.labeling.positives}
        for raw in sorted(self.labeling.positives, key=repr):
            border = self.evaluator.border_of(raw)
            sub_database = self.system.database.restrict_to(border.atoms)
            abox = self.system.specification.retrieve_abox(sub_database)
            for fact in abox.facts:
                for argument in fact.args:
                    if argument in positive_keys:
                        continue
                    counts[argument] = counts.get(argument, 0) + 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], repr(item[0])))
        return [constant for constant, _ in ranked[: self.config.max_constants]]

    def initial_queries(self) -> List[ConjunctiveQuery]:
        """The most general one-atom queries over the relevant vocabulary."""
        concepts, roles = self._abox_predicates
        x = self._answer_variable
        queries: List[ConjunctiveQuery] = []
        for concept in sorted(concepts):
            queries.append(ConjunctiveQuery((x,), (Atom(concept, (x,)),)))
        for role in sorted(roles):
            fresh = Variable("y0")
            queries.append(ConjunctiveQuery((x,), (Atom(role, (x, fresh)),)))
            queries.append(ConjunctiveQuery((x,), (Atom(role, (fresh, x)),)))
        return queries

    # -- refinement operators ------------------------------------------------------

    def refinements(self, query: ConjunctiveQuery) -> Iterable[ConjunctiveQuery]:
        yield from self._add_atom(query)
        yield from self._bind_constant(query)
        yield from self._specialise_predicate(query)

    def _add_atom(self, query: ConjunctiveQuery) -> Iterable[ConjunctiveQuery]:
        if query.atom_count() >= self.config.max_atoms:
            return
        concepts, roles = self._abox_predicates
        factory = VariableFactory(query.variables(), prefix="y")
        existing = set(query.body)
        for variable in sorted(query.variables()):
            for concept in sorted(concepts):
                atom = Atom(concept, (variable,))
                if atom not in existing:
                    yield query.add_atoms((atom,))
            for role in sorted(roles):
                fresh = factory.fresh()
                forward = Atom(role, (variable, fresh))
                backward = Atom(role, (fresh, variable))
                if forward not in existing:
                    yield query.add_atoms((forward,))
                if backward not in existing:
                    yield query.add_atoms((backward,))

    def _bind_constant(self, query: ConjunctiveQuery) -> Iterable[ConjunctiveQuery]:
        for variable in sorted(query.existential_variables()):
            for constant in self._border_constants:
                yield query.apply({variable: constant})

    def _specialise_predicate(self, query: ConjunctiveQuery) -> Iterable[ConjunctiveQuery]:
        ontology = self.system.ontology
        for position, atom in enumerate(query.body):
            if atom.predicate in ontology.role_names and atom.arity == 2:
                role = AtomicRole(atom.predicate)
                for subsumee in self.reasoner.role_subsumees(role):
                    if subsumee == role:
                        continue
                    if isinstance(subsumee, InverseRole):
                        replacement = Atom(subsumee.role.name, (atom.args[1], atom.args[0]))
                    else:
                        replacement = Atom(subsumee.name, atom.args)
                    body = list(query.body)
                    body[position] = replacement
                    yield query.with_body(tuple(body))
            elif atom.predicate in ontology.concept_names and atom.arity == 1:
                concept = AtomicConcept(atom.predicate)
                for subsumee in self.reasoner.subsumees(concept):
                    if subsumee == concept or not isinstance(subsumee, AtomicConcept):
                        continue
                    body = list(query.body)
                    body[position] = Atom(subsumee.name, atom.args)
                    yield query.with_body(tuple(body))

    # -- beam search -----------------------------------------------------------------

    def search(self) -> List[Tuple[ConjunctiveQuery, float]]:
        """Run the beam search; returns (query, score) pairs, best first."""
        scored: Dict[Tuple, Tuple[ConjunctiveQuery, float]] = {}

        def consider(query: ConjunctiveQuery) -> Optional[Tuple[ConjunctiveQuery, float]]:
            signature = query.signature()
            if signature in scored:
                return scored[signature]
            if self.config.prune_zero_coverage:
                # A failed provenance bound proves true_positives == 0
                # (the bound is a superset of the verdict row), so the
                # refinement is discarded on exactly the condition the
                # profile evaluation below would test — just without
                # J-matching anything.
                if self.pruner is not None and not self.pruner.admits_positive(
                    query.body
                ):
                    scored[signature] = (query, float("-inf"))
                    return scored[signature]
                profile = self.evaluator.profile(query, self.labeling)
                if profile.true_positives == 0:
                    scored[signature] = (query, float("-inf"))
                    return scored[signature]
            score = self.score_function(query)
            scored[signature] = (query, score)
            return scored[signature]

        beam = []
        for query in self.initial_queries():
            entry = consider(query)
            if entry is not None and entry[1] != float("-inf"):
                beam.append(entry)
        beam.sort(key=lambda item: (-item[1], item[0].atom_count(), str(item[0])))
        beam = beam[: self.config.beam_width]

        for _ in range(self.config.max_iterations):
            frontier: List[Tuple[ConjunctiveQuery, float]] = []
            for query, _score in beam:
                for refined in self.refinements(query):
                    entry = consider(refined)
                    if entry is not None and entry[1] != float("-inf"):
                        frontier.append(entry)
            if not frontier:
                break
            merged = {q.signature(): (q, s) for q, s in beam}
            for query, score in frontier:
                merged[query.signature()] = (query, score)
            beam = sorted(
                merged.values(), key=lambda item: (-item[1], item[0].atom_count(), str(item[0]))
            )[: self.config.beam_width]

        results = [
            (query, score)
            for query, score in scored.values()
            if score != float("-inf")
        ]
        results.sort(key=lambda item: (-item[1], item[0].atom_count(), str(item[0])))
        return results
