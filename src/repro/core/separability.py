"""Perfect separation: conditions (1) and (2) of Section 3.

A query *perfectly separates* ``λ+`` from ``λ-`` when it J-matches the
border of every positive tuple and of no negative tuple.  Example 3.6
shows that such a query need not exist even in simple cases, which is
what motivates the paper's criteria-based relaxation.

This module offers two levels of analysis:

* :meth:`SeparabilityChecker.check_query` / :meth:`find_separator` —
  test concrete candidate queries (sound but obviously not a proof of
  non-existence when every candidate fails);
* :meth:`SeparabilityChecker.decide_cq_separability` — an exact decision
  for the CQ language under the border semantics, based on the classical
  product-homomorphism argument used in query-by-example / concept-
  separability work (e.g. the paper's references [3, 13]): a separating
  CQ exists iff the direct product of the (saturated) positive border
  structures does **not** homomorphically map into any negative border
  structure.  The witness query, when it exists, is the canonical query
  of that product.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ExplanationError
from ..obdm.certain_answers import OntologyQuery
from ..obdm.chase import ChaseEngine, is_labelled_null
from ..obdm.system import OBDMSystem
from ..queries.atoms import Atom
from ..queries.containment import core_of
from ..queries.cq import ConjunctiveQuery
from ..queries.evaluation import FactIndex, contains_tuple
from ..queries.terms import Constant, Term, Variable
from .labeling import ConstantTuple, Labeling, normalize_tuple
from .matching import MatchEvaluator


@dataclass(frozen=True)
class SeparabilityResult:
    """Outcome of a separability analysis."""

    separable: Optional[bool]
    """``True``/``False`` when decided, ``None`` when the analysis gave up."""

    witness: Optional[ConjunctiveQuery]
    """A perfectly separating query, when one was found."""

    method: str
    """Which analysis produced the verdict (``candidates`` or ``product``)."""

    detail: str = ""

    def __str__(self):
        verdict = {True: "separable", False: "not separable", None: "undecided"}[self.separable]
        witness = f"; witness: {self.witness}" if self.witness is not None else ""
        return f"SeparabilityResult({verdict} via {self.method}{witness})"


class SeparabilityChecker:
    """Checks whether a perfectly separating query exists."""

    def __init__(
        self,
        system: OBDMSystem,
        labeling: Labeling,
        radius: int = 1,
        evaluator: Optional[MatchEvaluator] = None,
        max_product_size: int = 20_000,
    ):
        self.system = system
        self.labeling = labeling
        self.radius = radius
        self.evaluator = evaluator or MatchEvaluator(system, radius)
        self.max_product_size = max_product_size
        self._chaser = ChaseEngine(system.ontology)

    # -- candidate-based analysis ------------------------------------------------

    def check_query(self, query: OntologyQuery) -> bool:
        """Conditions (1) and (2) for a concrete query."""
        profile = self.evaluator.profile(query, self.labeling)
        return profile.is_perfect_separation()

    def find_separator(self, candidates: Iterable[OntologyQuery]) -> Optional[OntologyQuery]:
        """First candidate that perfectly separates, or ``None``."""
        for candidate in candidates:
            if self.check_query(candidate):
                return candidate
        return None

    def check_candidates(self, candidates: Iterable[OntologyQuery]) -> SeparabilityResult:
        witness = self.find_separator(candidates)
        if witness is not None:
            witness_cq = witness if isinstance(witness, ConjunctiveQuery) else None
            return SeparabilityResult(True, witness_cq, "candidates")
        return SeparabilityResult(
            None,
            None,
            "candidates",
            detail="no candidate separated; not a proof of non-existence",
        )

    # -- exact decision for CQs -----------------------------------------------------

    def _saturated_border_structure(self, raw) -> FrozenSet[Atom]:
        """Retrieved + chased ontology facts of one tuple's border."""
        border = self.evaluator.border_of(raw)
        sub_database = self.system.database.restrict_to(border.atoms)
        abox = self.system.specification.retrieve_abox(sub_database)
        return frozenset(self._chaser.chase(abox.facts))

    def decide_cq_separability(self) -> SeparabilityResult:
        """Exact decision of CQ-separability under the border semantics.

        Builds the direct product of the saturated border structures of
        the positive tuples (with the classified constants as the
        distinguished element) and checks for a homomorphism into each
        negative border structure that maps the distinguished element to
        the negative tuple.  No homomorphism into any negative structure
        means a separating CQ exists (the product's canonical query);
        a homomorphism into some negative structure means **no** CQ can
        separate, because any CQ matching all positives also maps into
        the product, hence into that negative structure.
        """
        if self.labeling.arity != 1:
            return SeparabilityResult(
                None, None, "product", detail="product decision implemented for unary λ only"
            )
        positives = sorted(self.labeling.positives, key=repr)
        negatives = sorted(self.labeling.negatives, key=repr)
        if not positives:
            return SeparabilityResult(None, None, "product", detail="λ+ is empty")

        structures = [self._saturated_border_structure(t) for t in positives]
        product_atoms, distinguished = self._product(structures, [t[0] for t in positives])
        if product_atoms is None:
            return SeparabilityResult(
                None, None, "product", detail="product structure exceeded the size budget"
            )
        if not product_atoms:
            return SeparabilityResult(
                False,
                None,
                "product",
                detail="the positive borders share no ontology facts, so every CQ "
                "matching all positives is unsafe or matches everything",
            )

        witness_query = self._canonical_query(product_atoms, distinguished)
        if witness_query is None:
            return SeparabilityResult(
                False,
                None,
                "product",
                detail="the product structure has no atom involving the distinguished element",
            )

        for negative in negatives:
            structure = self._saturated_border_structure(negative)
            if self._maps_into(product_atoms, distinguished, structure, negative[0]):
                return SeparabilityResult(
                    False,
                    None,
                    "product",
                    detail=f"product of positive borders maps into the border of {negative[0]}",
                )
        return SeparabilityResult(True, witness_query, "product")

    # -- product construction ----------------------------------------------------------

    def _product(
        self, structures: Sequence[FrozenSet[Atom]], distinguished_constants: Sequence[Constant]
    ) -> Tuple[Optional[FrozenSet[Atom]], Constant]:
        """Direct product of relational structures (ontology fact sets).

        Elements of the product are tuples of elements; they are encoded
        as constants with a tuple value rendered as a string.  An element
        whose components are all the same constant ``c`` is identified
        with ``c`` itself, so query constants keep their meaning.
        """
        distinguished = tuple(distinguished_constants)
        atoms: Set[Atom] = set()
        predicates: Dict[str, List[List[Atom]]] = {}
        for structure in structures:
            by_predicate: Dict[str, List[Atom]] = {}
            for atom in structure:
                by_predicate.setdefault(atom.predicate, []).append(atom)
            for predicate, atom_list in by_predicate.items():
                predicates.setdefault(predicate, []).append(atom_list)

        def encode(components: Tuple[Constant, ...]) -> Constant:
            if all(component == components[0] for component in components):
                return components[0]
            rendered = "|".join(str(component.value) for component in components)
            return Constant(f"_prod({rendered})")

        for predicate, per_structure in predicates.items():
            if len(per_structure) != len(structures):
                # The predicate is missing from some positive structure, so
                # the product has no atoms for it.
                continue
            combinations = 1
            for atom_list in per_structure:
                combinations *= len(atom_list)
            if combinations > self.max_product_size:
                return None, encode(distinguished)
            arity = per_structure[0][0].arity
            for combo in itertools.product(*per_structure):
                if any(atom.arity != arity for atom in combo):
                    continue
                arguments = []
                for position in range(arity):
                    components = tuple(atom.args[position] for atom in combo)
                    arguments.append(encode(components))
                atoms.add(Atom(predicate, tuple(arguments)))
        return frozenset(atoms), encode(distinguished)

    def _canonical_query(
        self, product_atoms: FrozenSet[Atom], distinguished: Constant
    ) -> Optional[ConjunctiveQuery]:
        """Canonical CQ of the product, with the distinguished element as answer."""
        relevant = [atom for atom in product_atoms if distinguished in atom.args]
        if not relevant:
            return None
        mapping: Dict[Constant, Term] = {distinguished: Variable("x")}
        counter = itertools.count()

        def term_of(constant: Constant) -> Term:
            if constant in mapping:
                return mapping[constant]
            value = constant.value
            is_product_element = isinstance(value, str) and value.startswith("_prod(")
            if is_product_element or is_labelled_null(constant):
                mapping[constant] = Variable(f"y{next(counter)}")
            else:
                mapping[constant] = constant
            return mapping[constant]

        body = tuple(
            Atom(atom.predicate, tuple(term_of(argument) for argument in atom.args))
            for atom in sorted(product_atoms)
        )
        query = ConjunctiveQuery((Variable("x"),), body)
        # The canonical query of the product can be large; minimising it
        # keeps the witness readable (and δ5-friendly).
        if query.atom_count() <= 12:
            return core_of(query)
        return query

    def _maps_into(
        self,
        product_atoms: FrozenSet[Atom],
        distinguished: Constant,
        structure: FrozenSet[Atom],
        target: Constant,
    ) -> bool:
        """Homomorphism test from the product into a negative structure."""
        query = self._canonical_query(product_atoms, distinguished)
        if query is None:
            return True
        index = FactIndex(structure)
        return contains_tuple(query, (target,), (), index=index)
