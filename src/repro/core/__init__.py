"""The paper's primary contribution: ontology-based explanation of classifiers."""

from .best_describe import BestDescriptionSearch, QueryScorer, ScoredQuery
from .border import Border, BorderComputer
from .candidates import CandidateConfig, CandidateGenerator
from .criteria import (
    ACCURACY,
    DEFAULT_REGISTRY,
    DELTA_1,
    DELTA_2,
    DELTA_3,
    DELTA_4,
    DELTA_5,
    DELTA_6,
    F1,
    PAPER_CRITERIA,
    PRECISION,
    Criterion,
    CriteriaRegistry,
    EvaluationContext,
    evaluate_criteria,
)
from .explainer import OntologyExplainer
from .labeling import NEGATIVE, POSITIVE, Labeling, normalize_tuple
from .matching import MatchEvaluator, MatchProfile
from .refinement import RefinementConfig, RefinementSearch
from .report import Explanation, ExplanationReport, build_report
from .scoring import (
    CallableExpression,
    HarmonicMean,
    MinScore,
    ScoringExpression,
    WeightedAverage,
    WeightedProduct,
    balanced_expression,
    example_3_8_expression,
    fidelity_first_expression,
)
from .separability import SeparabilityChecker, SeparabilityResult

__all__ = [
    "ACCURACY",
    "BestDescriptionSearch",
    "Border",
    "BorderComputer",
    "CallableExpression",
    "CandidateConfig",
    "CandidateGenerator",
    "Criterion",
    "CriteriaRegistry",
    "DEFAULT_REGISTRY",
    "DELTA_1",
    "DELTA_2",
    "DELTA_3",
    "DELTA_4",
    "DELTA_5",
    "DELTA_6",
    "EvaluationContext",
    "Explanation",
    "ExplanationReport",
    "F1",
    "HarmonicMean",
    "Labeling",
    "MatchEvaluator",
    "MatchProfile",
    "MinScore",
    "NEGATIVE",
    "OntologyExplainer",
    "PAPER_CRITERIA",
    "POSITIVE",
    "PRECISION",
    "QueryScorer",
    "RefinementConfig",
    "RefinementSearch",
    "ScoredQuery",
    "ScoringExpression",
    "SeparabilityChecker",
    "SeparabilityResult",
    "WeightedAverage",
    "WeightedProduct",
    "balanced_expression",
    "build_report",
    "evaluate_criteria",
    "example_3_8_expression",
    "fidelity_first_expression",
    "normalize_tuple",
]
