"""The public façade of the explanation framework.

:class:`OntologyExplainer` ties the whole pipeline together: borders,
J-matching, criteria, scoring, candidate generation and ranking.  A
typical use looks like::

    explainer = OntologyExplainer(system)                # Σ = <J, D>
    report = explainer.explain(
        labeling,                                        # λ+ / λ-
        radius=1,
        criteria=("delta1", "delta4", "delta5"),
        expression=example_3_8_expression(alpha=3),
    )
    print(report.render())

which mirrors the ingredients of Definition 3.7: the OBDM system, the
radius ``r``, the criteria ``Δ`` with their functions ``F`` and the
expression ``Z``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from ..engine.batch import BatchExplainer
from ..errors import ExplanationError
from ..obdm.certain_answers import OntologyQuery
from ..obdm.system import OBDMSystem
from ..queries.cq import ConjunctiveQuery
from ..queries.parser import parse_cq, parse_query
from .best_describe import BestDescriptionSearch, ScoredQuery
from .border import BorderComputer
from .candidates import CandidateConfig
from .criteria import DEFAULT_REGISTRY, DELTA_1, DELTA_4, DELTA_5, Criterion, CriteriaRegistry
from .labeling import Labeling
from .matching import MatchEvaluator, MatchProfile
from .refinement import RefinementConfig
from .report import Explanation, ExplanationReport, build_report
from .scoring import ScoringExpression, describe_expression, example_3_8_expression
from .separability import SeparabilityChecker, SeparabilityResult


def execute_search(
    search: BestDescriptionSearch,
    expression: ScoringExpression,
    candidates: Optional[Iterable[Union[str, OntologyQuery]]] = None,
    strategy: str = "enumerate",
    candidate_config: Optional[CandidateConfig] = None,
    refinement_config: Optional[RefinementConfig] = None,
    top_k: Optional[int] = 10,
) -> ExplanationReport:
    """Rank one request's candidate pool and assemble its report.

    The shared tail of every explanation request —
    :meth:`OntologyExplainer.explain` and
    :meth:`repro.service.ExplanationService.explain` both delegate here,
    which is what keeps the service's "semantically identical to a fresh
    explainer" contract structural rather than copy-paste.
    """
    if candidates is not None:
        parsed = [
            parse_query(candidate) if isinstance(candidate, str) else candidate
            for candidate in candidates
        ]
        ranking = search.rank(parsed)
        candidate_count = len(parsed)
    else:
        ranking = search.search(
            strategy=strategy,
            candidate_config=candidate_config,
            refinement_config=refinement_config,
        )
        candidate_count = len(ranking)
    criteria_keys = [criterion.key for criterion in search.scorer.criteria]
    return build_report(
        search.labeling,
        search.radius,
        criteria_keys,
        describe_expression(expression),
        ranking,
        candidate_count,
        top_k=top_k,
    )


class OntologyExplainer:
    """Explains a binary classifier through queries over the ontology."""

    def __init__(self, system: OBDMSystem):
        self.system = system
        self._border_computer = BorderComputer(system.database)

    # -- low-level building blocks ------------------------------------------------

    def evaluator(self, radius: int = 1) -> MatchEvaluator:
        """A J-matching evaluator bound to this system and radius."""
        return MatchEvaluator(self.system, radius, self._border_computer)

    def profile(self, query: Union[str, OntologyQuery], labeling: Labeling, radius: int = 1) -> MatchProfile:
        """Match profile of one query (textual queries are parsed)."""
        parsed = self._parse(query)
        return self.evaluator(radius).profile(parsed, labeling)

    def score(
        self,
        query: Union[str, OntologyQuery],
        labeling: Labeling,
        radius: int = 1,
        criteria: Sequence[Union[str, Criterion]] = (DELTA_1, DELTA_4, DELTA_5),
        expression: Optional[ScoringExpression] = None,
        registry: CriteriaRegistry = DEFAULT_REGISTRY,
    ) -> ScoredQuery:
        """Z-score of one query under (Δ, F, Z)."""
        search = BestDescriptionSearch(
            self.system, labeling, radius, criteria, expression, registry, self._border_computer
        )
        return search.scorer.score(self._parse(query))

    # -- the main entry point -----------------------------------------------------------

    def explain(
        self,
        labeling: Labeling,
        radius: int = 1,
        criteria: Sequence[Union[str, Criterion]] = (DELTA_1, DELTA_4, DELTA_5),
        expression: Optional[ScoringExpression] = None,
        registry: CriteriaRegistry = DEFAULT_REGISTRY,
        strategy: str = "enumerate",
        candidates: Optional[Iterable[Union[str, OntologyQuery]]] = None,
        candidate_config: Optional[CandidateConfig] = None,
        refinement_config: Optional[RefinementConfig] = None,
        top_k: Optional[int] = 10,
    ) -> ExplanationReport:
        """Search for the queries that best describe ``λ`` (Definition 3.7).

        When *candidates* is given, only those queries are scored (the
        automatic generators are skipped); otherwise the pool is built by
        the chosen *strategy* (``enumerate``, ``refine`` or ``both``).
        """
        expression = expression or example_3_8_expression()
        search = BestDescriptionSearch(
            self.system, labeling, radius, criteria, expression, registry, self._border_computer
        )
        return execute_search(
            search,
            expression,
            candidates=candidates,
            strategy=strategy,
            candidate_config=candidate_config,
            refinement_config=refinement_config,
            top_k=top_k,
        )

    def explain_batch(
        self,
        labelings: Sequence[Labeling],
        radius: int = 1,
        criteria: Sequence[Union[str, Criterion]] = (DELTA_1, DELTA_4, DELTA_5),
        expression: Optional[ScoringExpression] = None,
        registry: CriteriaRegistry = DEFAULT_REGISTRY,
        strategy: str = "enumerate",
        candidates: Optional[Iterable[Union[str, OntologyQuery]]] = None,
        candidate_config: Optional[CandidateConfig] = None,
        refinement_config: Optional[RefinementConfig] = None,
        top_k: Optional[int] = 10,
        max_workers: Optional[int] = None,
        executor: str = "thread",
    ) -> List[ExplanationReport]:
        """Explain many labelings in one concurrent pass (one report each).

        Semantics are identical to calling :meth:`explain` once per
        labeling with the same arguments — the batch path scores
        (labeling, candidate) pairs concurrently but ranks with the same
        deterministic comparator, so reports match query-for-query.
        ``max_workers=1`` forces sequential scoring.
        ``executor="process"`` shards each candidate pool across worker
        processes instead of threads (see
        :class:`~repro.engine.batch.BatchExplainer`); rankings stay
        sequential-identical either way.
        """
        expression = expression or example_3_8_expression()
        batch = BatchExplainer(
            self.system,
            radius,
            criteria,
            expression,
            registry,
            border_computer=self._border_computer,
            max_workers=max_workers,
            executor=executor,
        )
        parsed = None if candidates is None else [self._parse(c) for c in candidates]
        return batch.explain_batch(
            list(labelings),
            candidates=parsed,
            strategy=strategy,
            candidate_config=candidate_config,
            refinement_config=refinement_config,
            top_k=top_k,
        )

    def service(self, **kwargs) -> "ExplanationService":
        """A long-lived :class:`~repro.service.ExplanationService` over Σ.

        The service shares this explainer's system (and therefore its
        specification's evaluation cache); keyword arguments are passed
        through (``radius``, ``criteria``, ``expression``,
        ``cache_limits``, ``max_sessions``).  Use it when the same
        system must answer many ``explain`` requests: repeated and
        drifting labelings are then served from warm verdict matrices
        instead of rebuilt per call.
        """
        from ..service import ExplanationService

        return ExplanationService(self.system, **kwargs)

    def best_query(
        self,
        labeling: Labeling,
        radius: int = 1,
        criteria: Sequence[Union[str, Criterion]] = (DELTA_1, DELTA_4, DELTA_5),
        expression: Optional[ScoringExpression] = None,
        **kwargs,
    ) -> Explanation:
        """Convenience wrapper returning only the top-ranked explanation."""
        report = self.explain(labeling, radius, criteria, expression, **kwargs)
        if report.best is None:
            raise ExplanationError("the search produced no candidate explanations")
        return report.best

    # -- separability ---------------------------------------------------------------------

    def separability(
        self,
        labeling: Labeling,
        radius: int = 1,
        candidates: Optional[Iterable[Union[str, OntologyQuery]]] = None,
        exact: bool = True,
    ) -> SeparabilityResult:
        """Is there a query satisfying conditions (1) and (2) of Section 3?

        With ``exact=True`` the product-homomorphism decision procedure is
        used (complete for CQs under the border semantics); candidate
        queries, when supplied, are tried first since a concrete witness
        is more informative than the canonical product query.  Each
        supplied candidate is parsed and profiled exactly once, whatever
        the flags.
        """
        checker = SeparabilityChecker(self.system, labeling, radius, self.evaluator(radius))
        candidate_result: Optional[SeparabilityResult] = None
        if candidates is not None:
            candidate_result = checker.check_candidates([self._parse(c) for c in candidates])
            if candidate_result.separable:
                return candidate_result
        if exact:
            return checker.decide_cq_separability()
        if candidate_result is not None:
            return candidate_result
        return checker.check_candidates([])

    # -- helpers ------------------------------------------------------------------------------

    @staticmethod
    def _parse(query: Union[str, OntologyQuery]) -> OntologyQuery:
        if isinstance(query, str):
            return parse_query(query)
        return query

    @staticmethod
    def _describe_expression(expression: ScoringExpression) -> str:
        return describe_expression(expression)
