"""Borders of radius ``r`` (Definitions 3.1–3.2, Example 3.3).

Given a source database ``D`` and a tuple ``t`` of constants, the
*border of radius r* collects the atoms of ``D`` that are "relevant" to
``t`` up to ``r`` hops of constant-sharing:

* ``W_{t,0}(D)`` — atoms containing a constant of ``t``;
* ``W_{t,j+1}(D)`` — atoms *reachable from* ``W_{t,j}`` (Definition 3.1:
  sharing a constant with some atom of the previous layer) that have not
  appeared in an earlier layer;
* ``B_{t,r}(D) = ⋃_{0 ≤ i ≤ r} W_{t,i}(D)``.

Layers are computed as breadth-first frontiers over the bipartite
incidence graph between atoms and constants, which reproduces the
layering of Example 3.3 exactly (each layer lists only the *new* atoms;
the union over layers is insensitive to this choice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ExplanationError
from ..obdm.database import SourceDatabase
from ..queries.atoms import Atom
from ..queries.terms import Constant
from .labeling import ConstantTuple, RawTuple, normalize_tuple


@dataclass(frozen=True)
class Border:
    """The border ``B_{t,r}(D)`` of a tuple, with its per-radius layers."""

    tuple: ConstantTuple
    radius: int
    layers: Tuple[FrozenSet[Atom], ...]

    def __hash__(self):
        # Borders key every J-match memo and verdict-row lookup, so their
        # hash is on the scoring hot path; the fields are deeply frozen,
        # which makes it safe to compute once and remember.
        try:
            return object.__getattribute__(self, "_cached_hash")
        except AttributeError:
            value = hash((self.tuple, self.radius, self.layers))
            object.__setattr__(self, "_cached_hash", value)
            return value

    def __getstate__(self):
        # The cached hash must never cross a process boundary: Python
        # string hashing is salted per process (PYTHONHASHSEED), so a
        # pickled hash is stale in any other interpreter and would make
        # persisted memo entries keyed by borders unreachable after a
        # snapshot load (and equal keys non-identical).  The cached atom
        # union is dropped too — it is derivable content that would only
        # fatten snapshots and shard payloads.  Both are recomputed
        # lazily in the receiving process.
        state = dict(self.__dict__)
        state.pop("_cached_hash", None)
        state.pop("_cached_atoms", None)
        return state

    @property
    def atoms(self) -> FrozenSet[Atom]:
        """All atoms of the border (union of the layers, computed once).

        Cached like the hash: the shared border-ABox layer is keyed by
        this frozenset, so it is rebuilt on every J-match miss otherwise.
        """
        try:
            return object.__getattribute__(self, "_cached_atoms")
        except AttributeError:
            collected: Set[Atom] = set()
            for layer in self.layers:
                collected |= layer
            value = frozenset(collected)
            object.__setattr__(self, "_cached_atoms", value)
            return value

    def layer(self, index: int) -> FrozenSet[Atom]:
        """``W_{t,index}(D)`` (empty beyond the last non-empty layer)."""
        if index < 0:
            raise ExplanationError("layer index must be >= 0")
        if index < len(self.layers):
            return self.layers[index]
        return frozenset()

    def constants(self) -> FrozenSet[Constant]:
        """Every constant mentioned in the border."""
        collected: Set[Constant] = set()
        for atom in self.atoms:
            collected |= atom.constants()
        return frozenset(collected)

    def size(self) -> int:
        return len(self.atoms)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self.atoms

    def __len__(self) -> int:
        return self.size()

    def __str__(self):
        rendered = ", ".join(str(a) for a in sorted(self.atoms))
        key = ",".join(str(c.value) for c in self.tuple)
        return "B_{" + key + "}," + str(self.radius) + " = {" + rendered + "}"


class BorderComputer:
    """Computes and caches borders over one source database.

    *capacity* bounds the border cache with LRU eviction (``None`` keeps
    the unbounded seed behaviour, right for one-shot searches).
    Long-lived owners — the explanation service keeps one computer for
    its whole lifetime — pass a capacity so memory does not grow with
    every distinct labeled tuple ever served; an evicted border is
    simply recomputed on the next request that needs it.
    """

    def __init__(self, database: SourceDatabase, capacity: Optional[int] = None, stats=None):
        from ..engine.cache import LRUStore

        self.database = database
        # *stats* (a CacheStats) makes border evictions visible in the
        # shared ``evictions`` counter, like every other bounded layer.
        self._cache = LRUStore(capacity=capacity, stats=stats)

    # -- layer computation ---------------------------------------------------

    def layers(self, raw: RawTuple, radius: int) -> List[FrozenSet[Atom]]:
        """The frontiers ``W_{t,0}, ..., W_{t,radius}`` as a list.

        Each BFS frontier expands through **one** batched by-constant
        lookup (:meth:`~repro.obdm.database.SourceDatabase.facts_with_any_constant`)
        instead of one lookup per constant: on the in-memory backend
        that is the same union of index buckets, on a disk backend it is
        a handful of ``IN`` queries instead of hundreds of round trips —
        borders are computed per-individual from indexed point lookups
        either way, never from whole-database scans.
        """
        if radius < 0:
            raise ExplanationError(f"radius must be a natural number, got {radius}")
        key = normalize_tuple(raw)
        initial: Set[Atom] = set(self.database.facts_with_any_constant(key))
        layers: List[FrozenSet[Atom]] = [frozenset(initial)]
        seen_atoms: Set[Atom] = set(initial)
        seen_constants: Set[Constant] = set(key)
        for atom in initial:
            seen_constants |= atom.constants()

        frontier = initial
        for _ in range(radius):
            frontier_constants: Set[Constant] = set()
            for atom in frontier:
                frontier_constants |= atom.constants()
            next_frontier: Set[Atom] = {
                candidate
                for candidate in self.database.facts_with_any_constant(frontier_constants)
                if candidate not in seen_atoms
            }
            layers.append(frozenset(next_frontier))
            seen_atoms |= next_frontier
            frontier = next_frontier
            if not frontier:
                # All further layers are empty; still record them lazily.
                break
        while len(layers) < radius + 1:
            layers.append(frozenset())
        return layers

    def border(self, raw: RawTuple, radius: int) -> Border:
        """The border ``B_{t,radius}(D)`` (cached)."""
        key = normalize_tuple(raw)
        cache_key = (key, radius)
        cached = self._cache.get(cache_key)
        if cached is None:
            cached = Border(key, radius, tuple(self.layers(key, radius)))
            self._cache.put(cache_key, cached)
        return cached

    def borders(self, raws: Iterable[RawTuple], radius: int) -> Dict[ConstantTuple, Border]:
        """Borders of many tuples, keyed by the normalised tuple.

        Deduplicates by normalized tuple key up front, so a raw tuple
        appearing several times in *raws* (e.g. under both labels of a
        drifting labeling, or in differently-typed raw forms) triggers
        exactly one border lookup — and never re-expands its layers.
        """
        result: Dict[ConstantTuple, Border] = {}
        for raw in raws:
            key = normalize_tuple(raw)
            if key in result:
                continue
            result[key] = self.border(key, radius)
        return result

    # -- database drift ------------------------------------------------------

    def apply_delta(self, delta) -> FrozenSet[Border]:
        """Drop cached borders a database delta can touch; returns them.

        A border ``B_{t,r}(D)`` is a BFS closure over constant-sharing,
        so a delta can only change it when some added/removed fact
        shares a constant with the border's *reach* — the tuple's
        constants plus every constant already in the border.  (A removed
        fact inside the border mentions border constants by definition;
        an added fact attaches to the BFS only through a constant the
        closure already visits, at worst a tuple constant of an
        otherwise-empty border.)  The test is a sound over-approximation
        of the exact per-layer criterion: a false positive merely
        recomputes a border that turns out content-identical, which the
        verdict layer then detects as an unchanged column.

        Untouched borders stay cached and warm; touched ones are
        evicted and returned so
        :meth:`~repro.engine.cache.EvaluationCache.invalidate_borders`
        can drop every downstream entry built over them.  The caller is
        expected to have applied (or be about to apply) the delta to
        ``self.database`` — this method only manages the cache.
        """
        constants = delta.constants()
        if not constants:
            return frozenset()
        touched = []
        for _key, border in self._cache.items():
            reach = set(border.tuple)
            reach.update(border.constants())
            if not constants.isdisjoint(reach):
                touched.append(border)
        if touched:
            doomed = frozenset(touched)
            self._cache.discard_where(lambda _key, border: border in doomed)
        return frozenset(touched)

    # -- analysis helpers ----------------------------------------------------------

    def saturation_radius(self, raw: RawTuple, limit: int = 64) -> int:
        """Smallest radius after which the border stops growing.

        Useful to choose ``r``: beyond this radius Proposition 3.5 tells
        us nothing changes for the given tuple.
        """
        previous_size = -1
        for radius in range(limit + 1):
            border = self.border(raw, radius)
            if border.size() == previous_size:
                return radius - 1
            previous_size = border.size()
        return limit

    def statistics(self, raws: Iterable[RawTuple], radius: int) -> Dict[str, float]:
        """Aggregate border-size statistics for a set of tuples."""
        sizes = [self.border(raw, radius).size() for raw in raws]
        if not sizes:
            return {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": len(sizes),
            "min": float(min(sizes)),
            "max": float(max(sizes)),
            "mean": sum(sizes) / len(sizes),
        }
