"""Classifier labelings ``λ`` and the sets ``λ+`` / ``λ-``.

The paper models the object to be explained as a partial function
``λ : dom(D)^n → {+1, -1}``: either the predictions of a (binary)
classifier over tuples of database constants, or the tagging of a
training set.  :class:`Labeling` stores the two finite sets ``λ+`` and
``λ-`` and offers constructors from raw values, from dictionaries and
from fitted classifiers of :mod:`repro.ml`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..errors import ExplanationError
from ..obdm.database import SourceDatabase
from ..queries.terms import Constant

RawTuple = Union[Sequence, str, int, float, bool]
ConstantTuple = Tuple[Constant, ...]

POSITIVE = 1
NEGATIVE = -1


@dataclass(frozen=True)
class LabelingDrift:
    """The edit script turning one labeling into another.

    ``added`` pairs each new tuple with its label, ``removed`` lists
    tuples that left the labeling entirely and ``flipped`` the tuples
    whose label changed sign.  This is the unit of incremental verdict
    maintenance: :meth:`repro.engine.verdicts.VerdictMatrix.apply_drift`
    consumes exactly this shape, and
    :class:`repro.service.ExplanationService` computes it via
    :meth:`Labeling.diff` when a warm labeling drifts between requests.
    """

    added: Tuple[Tuple[ConstantTuple, int], ...] = ()
    removed: Tuple[ConstantTuple, ...] = ()
    flipped: Tuple[ConstantTuple, ...] = ()

    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.flipped)

    def magnitude(self) -> int:
        """How many labelled tuples the drift touches."""
        return len(self.added) + len(self.removed) + len(self.flipped)

    def __str__(self):
        return (
            f"LabelingDrift(+{len(self.added)}, -{len(self.removed)}, "
            f"±{len(self.flipped)})"
        )


def normalize_tuple(raw: RawTuple) -> ConstantTuple:
    """Coerce a raw value or sequence of values into a tuple of constants.

    Scalars become 1-tuples, matching the paper's examples where the
    classified objects are single constants (students ``A10``, ``B80``...).
    """
    if isinstance(raw, Constant):
        return (raw,)
    if isinstance(raw, (str, int, float, bool)):
        return (Constant(raw),)
    values = tuple(raw)
    if not values:
        raise ExplanationError("classified tuples must have arity >= 1")
    return tuple(v if isinstance(v, Constant) else Constant(v) for v in values)


class Labeling:
    """The partial function ``λ`` represented by its positive/negative sets."""

    def __init__(
        self,
        positives: Iterable[RawTuple] = (),
        negatives: Iterable[RawTuple] = (),
        name: str = "lambda",
    ):
        self.name = name
        self._positives: Set[ConstantTuple] = {normalize_tuple(t) for t in positives}
        self._negatives: Set[ConstantTuple] = {normalize_tuple(t) for t in negatives}
        overlap = self._positives & self._negatives
        if overlap:
            examples = ", ".join(str(t) for t in sorted(overlap, key=repr)[:3])
            raise ExplanationError(
                f"labeling {name!r} assigns both +1 and -1 to the same tuples: {examples}"
            )
        arities = {len(t) for t in self._positives | self._negatives}
        if len(arities) > 1:
            raise ExplanationError(
                f"labeling {name!r} mixes tuple arities: {sorted(arities)}"
            )
        self._arity = arities.pop() if arities else 1

    # -- constructors -----------------------------------------------------

    @staticmethod
    def from_dict(assignments: Dict[RawTuple, int], name: str = "lambda") -> "Labeling":
        """Build a labeling from ``{tuple: +1/-1}`` assignments."""
        positives, negatives = [], []
        for raw, label in assignments.items():
            if label == POSITIVE:
                positives.append(raw)
            elif label == NEGATIVE:
                negatives.append(raw)
            else:
                raise ExplanationError(f"labels must be +1 or -1, got {label!r}")
        return Labeling(positives, negatives, name)

    @staticmethod
    def from_predictions(
        keys: Sequence[RawTuple],
        predictions: Sequence[int],
        positive_label: int = 1,
        name: str = "lambda",
    ) -> "Labeling":
        """Build a labeling from parallel sequences of keys and predictions."""
        if len(keys) != len(predictions):
            raise ExplanationError(
                f"{len(keys)} keys but {len(predictions)} predictions"
            )
        positives, negatives = [], []
        for key, prediction in zip(keys, predictions):
            if prediction == positive_label:
                positives.append(key)
            else:
                negatives.append(key)
        return Labeling(positives, negatives, name)

    @staticmethod
    def from_classifier(
        classifier,
        features,
        keys: Sequence[RawTuple],
        positive_label: int = 1,
        name: str = "lambda",
    ) -> "Labeling":
        """Build a labeling from a fitted :mod:`repro.ml` classifier.

        ``features`` is the matrix passed to ``classifier.predict``; ``keys``
        gives, for each row, the database tuple the prediction refers to
        (typically the row's identifier).
        """
        predictions = classifier.predict(features)
        return Labeling.from_predictions(keys, list(predictions), positive_label, name)

    # -- access ----------------------------------------------------------------

    @property
    def positives(self) -> FrozenSet[ConstantTuple]:
        """``λ+``: tuples classified positively."""
        return frozenset(self._positives)

    @property
    def negatives(self) -> FrozenSet[ConstantTuple]:
        """``λ-``: tuples classified negatively."""
        return frozenset(self._negatives)

    @property
    def arity(self) -> int:
        """The ``n`` of ``λ : dom(D)^n → {+1, -1}``."""
        return self._arity

    def tuples(self) -> FrozenSet[ConstantTuple]:
        """The domain of the partial function (``λ+ ∪ λ-``)."""
        return frozenset(self._positives | self._negatives)

    def signature(self) -> Tuple[FrozenSet[ConstantTuple], FrozenSet[ConstantTuple]]:
        """Content-addressed identity of the labeling (name ignored).

        Two labelings with the same signature induce the same borders,
        columns and verdicts, so services key warm sessions by it.
        """
        return (frozenset(self._positives), frozenset(self._negatives))

    def diff(self, other: "Labeling") -> LabelingDrift:
        """The :class:`LabelingDrift` turning ``self`` into *other*.

        Deterministic: each component is sorted by ``repr`` of the
        normalized tuple, the same order the verdict-matrix columns use.
        """
        added = [
            (t, POSITIVE) for t in other._positives - self._positives - self._negatives
        ] + [
            (t, NEGATIVE) for t in other._negatives - self._positives - self._negatives
        ]
        removed = (self._positives | self._negatives) - other._positives - other._negatives
        flipped = (self._positives & other._negatives) | (self._negatives & other._positives)
        return LabelingDrift(
            added=tuple(sorted(added, key=lambda entry: repr(entry[0]))),
            removed=tuple(sorted(removed, key=repr)),
            flipped=tuple(sorted(flipped, key=repr)),
        )

    def label_of(self, raw: RawTuple) -> Optional[int]:
        """``+1``, ``-1`` or ``None`` (the function is partial)."""
        key = normalize_tuple(raw)
        if key in self._positives:
            return POSITIVE
        if key in self._negatives:
            return NEGATIVE
        return None

    def __call__(self, raw: RawTuple) -> Optional[int]:
        return self.label_of(raw)

    def __len__(self) -> int:
        return len(self._positives) + len(self._negatives)

    def __iter__(self) -> Iterator[Tuple[ConstantTuple, int]]:
        for positive in sorted(self._positives, key=repr):
            yield positive, POSITIVE
        for negative in sorted(self._negatives, key=repr):
            yield negative, NEGATIVE

    # -- manipulation -------------------------------------------------------------

    def add_positive(self, raw: RawTuple) -> None:
        key = normalize_tuple(raw)
        if key in self._negatives:
            raise ExplanationError(f"{key} is already labelled negative")
        self._positives.add(key)
        self._arity = len(key)

    def add_negative(self, raw: RawTuple) -> None:
        key = normalize_tuple(raw)
        if key in self._positives:
            raise ExplanationError(f"{key} is already labelled positive")
        self._negatives.add(key)
        self._arity = len(key)

    def inverted(self, name: Optional[str] = None) -> "Labeling":
        """Swap positives and negatives (explaining the complement class)."""
        return Labeling(self._negatives, self._positives, name or f"not_{self.name}")

    def restricted_to_domain(self, database: SourceDatabase) -> "Labeling":
        """Keep only tuples all of whose constants occur in ``dom(D)``."""
        domain = database.domain()
        positives = [t for t in self._positives if all(c in domain for c in t)]
        negatives = [t for t in self._negatives if all(c in domain for c in t)]
        return Labeling(positives, negatives, self.name)

    def validate_against(self, database: SourceDatabase) -> List[ConstantTuple]:
        """Return the labelled tuples with constants outside ``dom(D)``."""
        domain = database.domain()
        return sorted(
            (
                t
                for t in self._positives | self._negatives
                if any(c not in domain for c in t)
            ),
            key=repr,
        )

    def __str__(self):
        return (
            f"Labeling({self.name!r}: |λ+|={len(self._positives)}, "
            f"|λ-|={len(self._negatives)}, arity={self._arity})"
        )
