"""Searching for the ``L_O``-best describing query (Definition 3.7).

A query *best describes* ``λ`` w.r.t. an OBDM system, a radius, a set of
criteria ``Δ``, functions ``F`` and an expression ``Z`` when no other
query of the language has a strictly higher Z-score.  Since the language
is infinite, the implementation searches a finite candidate space built
by the bottom-up generator (:mod:`repro.core.candidates`), the top-down
refinement search (:mod:`repro.core.refinement`), or an explicit list
supplied by the caller, and returns the maximiser over that space
together with the full ranking.

For ``L_O = UCQ`` the search additionally builds unions greedily: it
starts from the best CQ and keeps adding the disjunct that most improves
the Z-score (criterion δ6 naturally counterbalances unions that grow too
large).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..errors import CriterionError, ExplanationError, ScoringError, SearchBudgetExceeded
from ..obdm.certain_answers import OntologyQuery
from ..obdm.system import OBDMSystem
from ..queries.atoms import Atom
from ..queries.cq import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries, query_key
from .border import BorderComputer
from .candidates import CandidateConfig, CandidateGenerator, CandidatePool
from .criteria import (
    DEFAULT_REGISTRY,
    DELTA_1,
    DELTA_4,
    DELTA_5,
    MONOTONE_CRITERIA,
    Criterion,
    CriteriaRegistry,
    EvaluationContext,
    evaluate_criteria,
)
from .labeling import Labeling, normalize_tuple
from .matching import CountProfile, MatchEvaluator, MatchProfile
from .refinement import RefinementConfig, RefinementSearch
from .scoring import (
    MONOTONE_EXPRESSION_TYPES,
    ScoringExpression,
    example_3_8_expression,
)


@dataclass(frozen=True)
class ScoredQuery:
    """A candidate query with its Z-score and per-criterion values."""

    query: OntologyQuery
    score: float
    criterion_values: Tuple[Tuple[str, float], ...]
    profile: MatchProfile

    @property
    def values(self) -> Dict[str, float]:
        return dict(self.criterion_values)

    def __str__(self):
        values = ", ".join(f"{key}={value:.3f}" for key, value in self.criterion_values)
        return f"Z={self.score:.3f} [{values}]  {self.query}"


class QueryScorer:
    """Evaluates Δ, F and Z for queries against one labeling.

    Match profiles come from one of two interchangeable paths:

    * the **bitset path** (default) — a shared
      :class:`~repro.engine.verdicts.VerdictMatrix` holds one verdict
      bitset per candidate and profiles are popcount views over rows;
    * the **legacy per-pair path** — ``MatchEvaluator.profile`` asks one
      (query, border) question at a time.

    The engine-level switch ``specification.engine.verdicts.enabled``
    selects the path; *use_verdict_matrix* overrides it per scorer.  The
    two are verdict-for-verdict identical (pinned by the differential
    suite), so the choice only affects speed.
    """

    def __init__(
        self,
        evaluator: MatchEvaluator,
        labeling: Labeling,
        criteria: Sequence[Union[str, Criterion]] = (DELTA_1, DELTA_4, DELTA_5),
        expression: Optional[ScoringExpression] = None,
        registry: CriteriaRegistry = DEFAULT_REGISTRY,
        use_verdict_matrix: Optional[bool] = None,
        matrix=None,
    ):
        self.evaluator = evaluator
        self.labeling = labeling
        self.criteria = registry.resolve(criteria)
        self.expression = expression or example_3_8_expression()
        self._use_verdict_matrix = use_verdict_matrix
        # A pre-built VerdictMatrix may be injected so long-lived services
        # can serve repeated requests from one warm matrix (the caller
        # guarantees it was built for this labeling, evaluator and radius).
        self._matrix = matrix
        missing = [
            variable
            for variable in self.expression.variables()
            if variable not in {criterion.key for criterion in self.criteria}
        ]
        if missing:
            raise ExplanationError(
                f"scoring expression refers to criteria {missing} that are not in Δ"
            )

    # -- verdict path selection ------------------------------------------

    @property
    def uses_verdict_matrix(self) -> bool:
        if self._use_verdict_matrix is not None:
            return self._use_verdict_matrix
        return self.evaluator.system.specification.engine.verdicts.enabled

    def verdict_matrix(self):
        """The labeling's verdict matrix (built lazily, rows shared)."""
        if self._matrix is None:
            from ..engine.verdicts import BorderColumns, VerdictMatrix

            columns = BorderColumns.from_labeling(self.evaluator, self.labeling)
            self._matrix = VerdictMatrix(self.evaluator, columns)
        return self._matrix

    def prepare(self, candidates: Sequence[OntologyQuery]) -> None:
        """Precompute verdict rows for a pool in one pass over the borders.

        A no-op on the legacy path; on the bitset path this is what makes
        ranking a pool "one pass over the border ABox per labeling".
        """
        if self.uses_verdict_matrix:
            self.verdict_matrix().build(candidates)

    def context_for(self, query: OntologyQuery) -> EvaluationContext:
        if self.uses_verdict_matrix:
            profile = self.verdict_matrix().profile(query)
        else:
            profile = self.evaluator.profile(query, self.labeling)
        return EvaluationContext(query, profile, self.labeling, self.evaluator.radius)

    def score(self, query: OntologyQuery) -> ScoredQuery:
        """Compute the Z-score (and criterion breakdown) of one query."""
        context = self.context_for(query)
        values = evaluate_criteria(self.criteria, context)
        z_score = self.expression.score(values)
        return ScoredQuery(
            query=query,
            score=z_score,
            criterion_values=tuple(sorted(values.items())),
            profile=context.profile,
        )

    def score_value(self, query: OntologyQuery) -> float:
        return self.score(query).score

    # -- optimistic bounds (top-k pruning) -------------------------------

    def optimistic_score(self, query: OntologyQuery) -> float:
        """An upper bound of ``score(query).score``, without exact J-matching.

        The kernel's per-atom provenance bound
        (:meth:`~repro.engine.verdicts.VerdictMatrix.upper_bound_row`)
        caps how many positives/negatives the query *could* match; the
        true (TP, FP) pair then lies in a box whose corners are
        evaluated through the real criteria and expression.  Every
        built-in criterion is componentwise monotone in (TP, FP) and
        every built-in expression is componentwise monotone in its
        criterion values, so the maximum over the corner assignments
        bounds the true Z-score — for *those* configurations only,
        which is why :meth:`BestDescriptionSearch._prunes` gates
        pruning on ``MONOTONE_CRITERIA`` / ``MONOTONE_EXPRESSION_TYPES``.
        Only meaningful on the kernel-backed bitset path.
        """
        matrix = self.verdict_matrix()
        columns = matrix.columns
        bound = matrix.upper_bound_row(query)
        bound_tp = (bound & columns.positives_mask).bit_count()
        bound_fp = (bound & columns.negatives_mask).bit_count()
        positives, negatives = columns.positive_count, columns.negative_count
        lows: Dict[str, float] = {}
        highs: Dict[str, float] = {}
        for tp, fp in {(t, f) for t in {0, bound_tp} for f in {0, bound_fp}}:
            profile = CountProfile(tp, positives - tp, fp, negatives - fp)
            context = EvaluationContext(query, profile, self.labeling, self.evaluator.radius)
            for criterion in self.criteria:
                value = criterion.evaluate(context)
                key = criterion.key
                lows[key] = value if key not in lows else min(lows[key], value)
                highs[key] = value if key not in highs else max(highs[key], value)
        varying = [key for key in lows if lows[key] != highs[key]]
        best = -math.inf
        for corner in itertools.product(*((lows[key], highs[key]) for key in varying)):
            values = dict(lows)
            values.update(zip(varying, corner))
            best = max(best, self.expression.score(values))
        return best

    def zero_row_ceiling(self) -> float:
        """An upper bound of the Z-score of *any* zero-verdict-row query.

        Generator-level pruning drops candidates whose verdict row is
        provably zero, i.e. whose profile is exactly
        ``CountProfile(0, P, 0, N)``.  Their profile-based criterion
        values are therefore all identical; only the syntax criteria
        (δ5 = 1/#atoms, δ6 = 1/#disjuncts) vary with the dropped query,
        and both live in ``(0, 1]``, so the maximum of the (monotone)
        expression over the ``{0, 1}`` corners of those two dimensions
        bounds every dropped candidate's score.  Only called behind
        :meth:`BestDescriptionSearch._prunes`, whose
        ``MONOTONE_CRITERIA`` gate guarantees δ5/δ6 are the only
        query-syntax criteria in Δ.
        """
        columns = self.verdict_matrix().columns
        profile = CountProfile(
            0, columns.positive_count, 0, columns.negative_count
        )
        placeholder = ConjunctiveQuery.of(
            ("?x",), (Atom.of("__zero_row__", "?x"),)
        )
        context = EvaluationContext(
            placeholder, profile, self.labeling, self.evaluator.radius
        )
        fixed: Dict[str, float] = {}
        varying: List[str] = []
        for criterion in self.criteria:
            if criterion.key in ("delta5", "delta6"):
                varying.append(criterion.key)
            else:
                fixed[criterion.key] = criterion.evaluate(context)
        best = -math.inf
        for corner in itertools.product((0.0, 1.0), repeat=len(varying)):
            values = dict(fixed)
            values.update(zip(varying, corner))
            best = max(best, self.expression.score(values))
        return best


class BestDescriptionSearch:
    """End-to-end search for the best-describing query over a candidate space."""

    def __init__(
        self,
        system: OBDMSystem,
        labeling: Labeling,
        radius: int = 1,
        criteria: Sequence[Union[str, Criterion]] = (DELTA_1, DELTA_4, DELTA_5),
        expression: Optional[ScoringExpression] = None,
        registry: CriteriaRegistry = DEFAULT_REGISTRY,
        border_computer: Optional[BorderComputer] = None,
        evaluator: Optional[MatchEvaluator] = None,
        matrix=None,
    ):
        self.system = system
        self.labeling = labeling
        self.radius = radius
        # A long-lived caller (repro.service) may pass its own warm
        # evaluator (shared border-ABox cache) and a pre-built verdict
        # matrix for this labeling; both default to fresh objects.
        if evaluator is not None:
            if evaluator.radius != radius:
                raise ExplanationError(
                    f"injected evaluator has radius {evaluator.radius}, search needs {radius}"
                )
            if evaluator.system is not system:
                raise ExplanationError(
                    "injected evaluator was built over a different OBDM system"
                )
        if matrix is not None:
            columns = matrix.columns
            if matrix.evaluator.system is not system:
                # Verdict bits reflect the borders of the database the
                # matrix was built over; a matrix from another system
                # would pass the column checks below and silently score
                # against the wrong data.
                raise ExplanationError(
                    "injected verdict matrix was built over a different OBDM system"
                )
            if columns.radius != radius or (
                set(columns.positive_tuples) != {normalize_tuple(t) for t in labeling.positives}
                or set(columns.negative_tuples) != {normalize_tuple(t) for t in labeling.negatives}
            ):
                raise ExplanationError(
                    f"injected verdict matrix was built for another labeling or "
                    f"radius ({columns}, search needs radius {radius} over "
                    f"{labeling})"
                )
        self.evaluator = evaluator or MatchEvaluator(system, radius, border_computer)
        self.scorer = QueryScorer(
            self.evaluator, labeling, criteria, expression, registry, matrix=matrix
        )

    # -- ranking a given candidate set ----------------------------------------------

    def rank(self, candidates: Iterable[OntologyQuery]) -> List[ScoredQuery]:
        """Score every candidate and sort by decreasing Z-score.

        Ties are broken towards syntactically smaller queries (fewer
        atoms), then lexicographically, so results are deterministic.
        """
        pool = list(candidates)
        self.scorer.prepare(pool)
        scored = [self.scorer.score(candidate) for candidate in pool]
        scored.sort(key=self._sort_key)
        return scored

    @staticmethod
    def _sort_key(entry: ScoredQuery):
        query = entry.query
        if isinstance(query, UnionOfConjunctiveQueries):
            size = (query.disjunct_count(), query.atom_count())
        else:
            size = (1, query.atom_count())
        return (-entry.score, size, str(query))

    def best(self, candidates: Iterable[OntologyQuery]) -> ScoredQuery:
        ranking = self.rank(candidates)
        if not ranking:
            raise ExplanationError("no candidate queries to rank")
        return ranking[0]

    # -- top-k bound pruning ----------------------------------------------

    def _prunes(self) -> bool:
        """Whether the kernel-backed bound-pruning path is sound here.

        Requires the kernel-backed bitset path *and* a provably
        componentwise-monotone (Δ, Z) configuration: the optimistic
        bound evaluates criteria and expression only at corner
        assignments, which bounds the true score exactly for the
        built-in monotone criteria/expressions and for nothing else —
        a custom criterion peaked at an interior (TP, FP) point would
        make pruning silently drop true top-k entries, so any custom
        configuration ranks exhaustively instead.
        """
        return (
            self.scorer.uses_verdict_matrix
            and self.system.specification.engine.kernel.enabled
            and type(self.scorer.expression) in MONOTONE_EXPRESSION_TYPES
            and all(
                criterion in MONOTONE_CRITERIA for criterion in self.scorer.criteria
            )
        )

    def top_k(self, candidates: Iterable[OntologyQuery], k: int) -> List[ScoredQuery]:
        """Exactly ``rank(candidates)[:k]``, skipping provably losing candidates.

        Candidates are visited in decreasing order of their optimistic
        Z-score (:meth:`QueryScorer.optimistic_score`); once ``k`` exact
        scores are known, any candidate whose optimistic bound is
        *strictly* below the current k-th exact score cannot reach the
        top ``k`` (even via tie-breaking, since ties require an equal
        score) and skips exact evaluation entirely — no verdict row is
        built for it.  Survivors are sorted with the exhaustive
        comparator, so the result is identical to the exhaustive
        ranking's prefix; ``benchmarks/bench_match_kernel.py`` gates
        that equality.
        """
        pool = list(candidates)
        if k is None or k >= len(pool) or k <= 0 or not self._prunes():
            return self.rank(pool)[:k]
        try:
            bounds = [self.scorer.optimistic_score(query) for query in pool]
        except (CriterionError, ScoringError):
            # Custom criteria reading tuple sets (CountProfile raises
            # CriterionError for those) or rejecting the corner profiles
            # cannot be bounded; rank exhaustively instead.  Anything
            # else propagates — a bug in the bound computation must not
            # silently degrade into a permanent no-prune fallback.
            return self.rank(pool)[:k]
        order = sorted(range(len(pool)), key=lambda index: (-bounds[index], index))
        exact_scores: List[float] = []  # min-heap of the k best exact scores
        evaluated: List[ScoredQuery] = []
        for index in order:
            if len(exact_scores) >= k and bounds[index] < exact_scores[0]:
                break  # bounds are non-increasing: every later candidate loses too
            scored = self.scorer.score(pool[index])
            evaluated.append(scored)
            if len(exact_scores) < k:
                heapq.heappush(exact_scores, scored.score)
            else:
                heapq.heappushpop(exact_scores, scored.score)
        evaluated.sort(key=self._sort_key)
        return evaluated[:k]

    # -- automatic candidate construction ----------------------------------------------

    def generate_candidates(
        self, config: Optional[CandidateConfig] = None, pruner=None
    ) -> CandidatePool:
        generator = CandidateGenerator(
            self.system, self.radius, config, border_computer=self.evaluator.borders
        )
        return generator.generate(self.labeling, pruner=pruner)

    def refine_candidates(
        self, config: Optional[RefinementConfig] = None, pruner=None
    ) -> List[ConjunctiveQuery]:
        search = RefinementSearch(
            self.system,
            self.labeling,
            self.evaluator,
            score_function=self.scorer.score_value,
            config=config,
            pruner=pruner,
        )
        return [query for query, _ in search.search()]

    def _generator_pruner(self):
        """A provenance pruner for candidate generation, when sound here.

        Same gate as bound pruning (:meth:`_prunes`): the pruner's
        soundness argument leans on all zero-row candidates scoring at
        or below :meth:`QueryScorer.zero_row_ceiling`, which only holds
        for the monotone built-in (Δ, Z) configurations.
        """
        if not self._prunes():
            return None
        return self.scorer.verdict_matrix().pruner()

    def candidate_pool(
        self,
        strategy: str = "enumerate",
        candidate_config: Optional[CandidateConfig] = None,
        refinement_config: Optional[RefinementConfig] = None,
        extra_candidates: Iterable[OntologyQuery] = (),
        pruner=None,
    ) -> CandidatePool:
        """The deduplicated candidate pool the chosen strategy produces.

        ``strategy`` is one of ``"enumerate"`` (bottom-up), ``"refine"``
        (top-down beam search) or ``"both"``.  Extracted from
        :meth:`search` so batch scoring can build the identical pool and
        score it concurrently.  The result is a plain list that also
        carries the bottom-up generator's accounting
        (:class:`~repro.core.candidates.CandidatePool`); with a *pruner*
        the generator and the refinement beam both skip provably
        zero-row candidates before materialisation.
        """
        candidates: List[OntologyQuery] = list(extra_candidates)
        generated = truncated = pruned = checked = unexplored = 0
        if strategy in ("enumerate", "both"):
            generated_pool = self.generate_candidates(candidate_config, pruner=pruner)
            candidates.extend(generated_pool)
            generated = generated_pool.generated
            truncated = generated_pool.truncated
            pruned = generated_pool.pruned
            checked = generated_pool.checked
            unexplored = generated_pool.unexplored_seeds
        if strategy in ("refine", "both"):
            candidates.extend(self.refine_candidates(refinement_config, pruner=pruner))
        if strategy not in ("enumerate", "refine", "both"):
            raise ExplanationError(
                f"unknown search strategy {strategy!r}; expected enumerate/refine/both"
            )
        seen: Set[Tuple] = set()
        unique: List[OntologyQuery] = []
        for candidate in candidates:
            key = query_key(candidate)
            if key not in seen:
                seen.add(key)
                unique.append(candidate)
        return CandidatePool(
            unique,
            generated=generated,
            truncated=truncated,
            pruned=pruned,
            checked=checked,
            unexplored_seeds=unexplored,
        )

    def search(
        self,
        strategy: str = "enumerate",
        candidate_config: Optional[CandidateConfig] = None,
        refinement_config: Optional[RefinementConfig] = None,
        extra_candidates: Iterable[OntologyQuery] = (),
        top_k: Optional[int] = None,
    ) -> List[ScoredQuery]:
        """Build a candidate pool with the chosen strategy and rank it.

        With *top_k* on the kernel path, bound pruning skips candidates
        that provably cannot reach the top ``k`` — the returned prefix
        is identical to the exhaustive ranking's either way.  Candidate
        *generation* is additionally pruned through the kernel's
        provenance bounds: conjunctions whose AND-of-supports is zero
        are never materialised.  Dropping them is only accepted when the
        result is provably the exhaustive prefix — the k-th exact score
        must be strictly above :meth:`QueryScorer.zero_row_ceiling` (all
        dropped candidates score at or below it) and the
        ``max_candidates`` cutoff must provably not have interacted with
        pruning; otherwise the pool is regenerated exhaustively.
        """
        pruner = self._generator_pruner() if top_k is not None else None
        if pruner is not None:
            config = candidate_config or CandidateConfig()
            pool = self.candidate_pool(
                strategy,
                candidate_config,
                refinement_config,
                extra_candidates,
                pruner=pruner,
            )
            if pool.pruned == 0:
                # Nothing was dropped, so the pool IS the exhaustive pool.
                return self.top_k(pool, top_k)
            certified = (
                pool.exhausted
                and pool.generated + pool.pruned <= config.max_candidates
            )
            if certified:
                try:
                    ceiling = self.scorer.zero_row_ceiling()
                except (CriterionError, ScoringError):
                    ceiling = None
                if ceiling is not None:
                    ranking = self.top_k(pool, top_k)
                    if len(ranking) == top_k and ranking[-1].score > ceiling:
                        return ranking
            # Fall through: the pruned pool cannot be certified top-k
            # equivalent (truncation may have interacted with pruning, or
            # a zero-row candidate could still reach the top k), so the
            # pool is regenerated without the pruner.
        pool = self.candidate_pool(
            strategy, candidate_config, refinement_config, extra_candidates
        )
        if top_k is not None and self._prunes():
            return self.top_k(pool, top_k)
        ranking = self.rank(pool)
        return ranking[:top_k] if top_k is not None else ranking

    # -- UCQ construction -----------------------------------------------------------------

    def best_ucq(
        self,
        cq_candidates: Sequence[ConjunctiveQuery],
        max_disjuncts: int = 4,
    ) -> ScoredQuery:
        """Greedy construction of the best union of CQs.

        Starts from the best single CQ and adds, at each step, the
        disjunct that maximises the Z-score of the union; stops when no
        addition improves the score or ``max_disjuncts`` is reached.
        """
        if not cq_candidates:
            raise ExplanationError("no CQ candidates supplied for UCQ construction")
        ranking = self.rank(list(cq_candidates))
        best_single = ranking[0]
        chosen: List[ConjunctiveQuery] = [best_single.query]  # type: ignore[list-item]
        best_scored = self.scorer.score(UnionOfConjunctiveQueries(tuple(chosen)))
        improved = True
        while improved and len(chosen) < max_disjuncts:
            improved = False
            best_extension: Optional[ScoredQuery] = None
            best_addition: Optional[ConjunctiveQuery] = None
            for entry in ranking:
                candidate = entry.query
                if not isinstance(candidate, ConjunctiveQuery) or candidate in chosen:
                    continue
                union = UnionOfConjunctiveQueries(tuple(chosen + [candidate]))
                scored_union = self.scorer.score(union)
                if best_extension is None or scored_union.score > best_extension.score:
                    best_extension = scored_union
                    best_addition = candidate
            if best_extension is not None and best_extension.score > best_scored.score:
                chosen.append(best_addition)  # type: ignore[arg-type]
                best_scored = best_extension
                improved = True
        return best_scored
