"""Structured explanation results and their textual rendering.

The explainer returns :class:`ExplanationReport` objects: a ranked list
of :class:`Explanation` entries (query, Z-score, criterion breakdown,
match profile) plus the parameters of the run (radius, criteria,
expression), so that results are self-describing and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..obdm.certain_answers import OntologyQuery
from ..queries.ucq import UnionOfConjunctiveQueries
from .best_describe import ScoredQuery
from .labeling import Labeling
from .matching import MatchProfile


@dataclass(frozen=True)
class Explanation:
    """One candidate explanation of the classifier's behaviour."""

    rank: int
    query: OntologyQuery
    score: float
    criterion_values: Tuple[Tuple[str, float], ...]
    profile: MatchProfile

    @property
    def values(self) -> Dict[str, float]:
        return dict(self.criterion_values)

    def is_perfect(self) -> bool:
        return self.profile.is_perfect_separation()

    def summary(self) -> str:
        return (
            f"#{self.rank}  Z={self.score:.3f}  "
            f"covers {self.profile.true_positives}/{self.profile.positive_total} positives, "
            f"{self.profile.false_positives}/{self.profile.negative_total} negatives  |  {self.query}"
        )

    @staticmethod
    def from_scored(rank: int, scored: ScoredQuery) -> "Explanation":
        return Explanation(
            rank=rank,
            query=scored.query,
            score=scored.score,
            criterion_values=scored.criterion_values,
            profile=scored.profile,
        )


@dataclass(frozen=True)
class ExplanationReport:
    """The full outcome of one explanation run."""

    labeling_name: str
    radius: int
    criteria_keys: Tuple[str, ...]
    expression_description: str
    explanations: Tuple[Explanation, ...]
    candidate_count: int

    # -- access -----------------------------------------------------------

    @property
    def best(self) -> Optional[Explanation]:
        return self.explanations[0] if self.explanations else None

    def top(self, k: int) -> Tuple[Explanation, ...]:
        return self.explanations[:k]

    def __len__(self) -> int:
        return len(self.explanations)

    def __iter__(self) -> Iterator[Explanation]:
        return iter(self.explanations)

    def perfect_explanations(self) -> List[Explanation]:
        return [explanation for explanation in self.explanations if explanation.is_perfect()]

    # -- rendering ------------------------------------------------------------

    def render(self, top_k: Optional[int] = 10) -> str:
        """Human-readable multi-line rendering of the report."""
        lines = [
            f"Explanation report for λ = {self.labeling_name!r}",
            f"  radius r = {self.radius}",
            f"  criteria Δ = {list(self.criteria_keys)}",
            f"  expression Z = {self.expression_description}",
            f"  candidates scored = {self.candidate_count}",
            "",
        ]
        shown = self.explanations if top_k is None else self.explanations[:top_k]
        if not shown:
            lines.append("  (no candidate explanations)")
        header = f"  {'rank':>4}  {'Z':>6}  {'pos':>7}  {'neg':>7}  query"
        lines.append(header)
        lines.append("  " + "-" * (len(header) + 20))
        for explanation in shown:
            profile = explanation.profile
            lines.append(
                f"  {explanation.rank:>4}  {explanation.score:>6.3f}  "
                f"{profile.true_positives:>3}/{profile.positive_total:<3}  "
                f"{profile.false_positives:>3}/{profile.negative_total:<3}  "
                f"{explanation.query}"
            )
        return "\n".join(lines)

    def to_rows(self) -> List[Dict[str, object]]:
        """Tabular form (list of dictionaries), convenient for benchmarks."""
        rows = []
        for explanation in self.explanations:
            row: Dict[str, object] = {
                "rank": explanation.rank,
                "score": explanation.score,
                "query": str(explanation.query),
                "true_positives": explanation.profile.true_positives,
                "false_positives": explanation.profile.false_positives,
                "positive_total": explanation.profile.positive_total,
                "negative_total": explanation.profile.negative_total,
            }
            row.update(explanation.values)
            rows.append(row)
        return rows

    def __str__(self):
        return self.render()


def build_report(
    labeling: Labeling,
    radius: int,
    criteria_keys: Sequence[str],
    expression_description: str,
    ranking: Sequence[ScoredQuery],
    candidate_count: int,
    top_k: Optional[int] = None,
) -> ExplanationReport:
    """Assemble a report from a ranked list of scored queries."""
    limited = ranking if top_k is None else ranking[:top_k]
    explanations = tuple(
        Explanation.from_scored(rank + 1, scored) for rank, scored in enumerate(limited)
    )
    return ExplanationReport(
        labeling_name=labeling.name,
        radius=radius,
        criteria_keys=tuple(criteria_keys),
        expression_description=expression_description,
        explanations=explanations,
        candidate_count=candidate_count,
    )
