"""Criteria δ and their evaluation functions ``f_δ`` (Section 3).

The framework is parametric in a set ``Δ`` of criteria one wants the
explanation query to optimise.  For every criterion ``δ`` there is a
function ``f^{J,r}_{δ,λ}(q_O)`` measuring how well a query meets the
criterion; the paper assumes all such functions share the same range,
which we fix to ``[0, 1]`` (higher is better).

The six criteria named in the paper are provided as ready-made
:class:`Criterion` instances:

* ``δ1`` — many positives matched          (``f_δ1 = |matched λ+| / |λ+|``)
* ``δ2`` — few positives unmatched         (``f_δ2 = 1 - |unmatched λ+| / |λ+|``)
* ``δ3`` — many negatives unmatched        (``f_δ3 = |unmatched λ-| / |λ-|``)
* ``δ4`` — few negatives matched           (``f_δ4 = 1 - |matched λ-| / |λ-|``)
* ``δ5`` — few atoms in the query          (``f_δ5 = 1 / #atoms``)
* ``δ6`` — few disjuncts (UCQs)            (``f_δ6 = 1 / #disjuncts``)

With these normalisations δ1/δ2 and δ3/δ4 coincide numerically; they are
kept separate because user-defined weightings refer to them by name (and
because alternative normalisations may distinguish them).  Applications
can register additional criteria through :class:`CriteriaRegistry` or by
passing :class:`Criterion` objects directly.

δ1–δ4 are pure confusion-matrix arithmetic: they only read the four
match *counts* of the context's profile, never the underlying tuple
sets.  On the bitset scoring path
(:mod:`repro.engine.verdicts`) the profile is a
:class:`~repro.engine.verdicts.BitsetVerdictProfile`, whose counts are
popcounts over a verdict bitset row — so all six paper criteria reduce
to integer arithmetic (δ5/δ6 were arithmetic over query syntax
already).  The property suite in
``tests/core/test_criteria_properties.py`` pins the numeric coincidence
and monotonicity laws on both profile representations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import CriterionError
from ..obdm.certain_answers import OntologyQuery
from ..queries.cq import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries
from .labeling import Labeling
from .matching import MatchProfile


@dataclass(frozen=True)
class EvaluationContext:
    """Everything a criterion function may need to score one query."""

    query: OntologyQuery
    profile: MatchProfile
    labeling: Labeling
    radius: int

    def atom_count(self) -> int:
        if isinstance(self.query, UnionOfConjunctiveQueries):
            return self.query.atom_count()
        return self.query.atom_count()

    def disjunct_count(self) -> int:
        if isinstance(self.query, UnionOfConjunctiveQueries):
            return self.query.disjunct_count()
        return 1


CriterionFunction = Callable[[EvaluationContext], float]


@dataclass(frozen=True)
class Criterion:
    """A named criterion with its evaluation function ``f_δ``."""

    key: str
    description: str
    function: CriterionFunction

    def evaluate(self, context: EvaluationContext) -> float:
        """Evaluate ``f_δ`` and validate that the value lies in ``[0, 1]``."""
        value = float(self.function(context))
        if not 0.0 <= value <= 1.0:
            raise CriterionError(
                f"criterion {self.key!r} returned {value}, outside the range [0, 1]"
            )
        return value

    def __str__(self):
        return f"{self.key}: {self.description}"


# ---------------------------------------------------------------------------
# The paper's criteria
# ---------------------------------------------------------------------------

def _coverage(context: EvaluationContext) -> float:
    return context.profile.positive_coverage()


def _few_positives_missed(context: EvaluationContext) -> float:
    profile = context.profile
    if profile.positive_total == 0:
        return 0.0
    return 1.0 - profile.false_negatives / profile.positive_total


def _many_negatives_excluded(context: EvaluationContext) -> float:
    profile = context.profile
    if profile.negative_total == 0:
        return 1.0
    return profile.true_negatives / profile.negative_total


def _few_negatives_matched(context: EvaluationContext) -> float:
    profile = context.profile
    if profile.negative_total == 0:
        return 1.0
    return 1.0 - profile.false_positives / profile.negative_total


def _few_atoms(context: EvaluationContext) -> float:
    atoms = context.atom_count()
    if atoms <= 0:
        raise CriterionError("query has no atoms")
    return 1.0 / atoms


def _few_disjuncts(context: EvaluationContext) -> float:
    disjuncts = context.disjunct_count()
    if disjuncts <= 0:
        raise CriterionError("query has no disjuncts")
    return 1.0 / disjuncts


DELTA_1 = Criterion(
    "delta1",
    "Are there many tuples of λ+ whose border the query J-matches?",
    _coverage,
)
DELTA_2 = Criterion(
    "delta2",
    "Are there few tuples of λ+ whose border the query does not J-match?",
    _few_positives_missed,
)
DELTA_3 = Criterion(
    "delta3",
    "Are there many tuples of λ- whose border the query does not J-match?",
    _many_negatives_excluded,
)
DELTA_4 = Criterion(
    "delta4",
    "Are there few tuples of λ- whose border the query J-matches?",
    _few_negatives_matched,
)
DELTA_5 = Criterion(
    "delta5",
    "Are there few atoms used by the query?",
    _few_atoms,
)
DELTA_6 = Criterion(
    "delta6",
    "Are there few disjuncts used by the query (UCQs)?",
    _few_disjuncts,
)

PAPER_CRITERIA: Tuple[Criterion, ...] = (
    DELTA_1,
    DELTA_2,
    DELTA_3,
    DELTA_4,
    DELTA_5,
    DELTA_6,
)

# Additional generally useful criteria (not in the paper's list, usable in
# custom Δ sets; they exercise the same extension mechanism a user would).

PRECISION = Criterion(
    "precision",
    "Among matched tuples, how many are positive?",
    lambda context: context.profile.precision(),
)
F1 = Criterion(
    "f1",
    "Harmonic mean of precision and positive coverage.",
    lambda context: context.profile.f1(),
)
ACCURACY = Criterion(
    "accuracy",
    "Fraction of labelled tuples on which the query agrees with λ.",
    lambda context: context.profile.accuracy(),
)


class CriteriaRegistry:
    """A registry mapping criterion keys to :class:`Criterion` objects."""

    def __init__(self, criteria: Iterable[Criterion] = PAPER_CRITERIA):
        self._criteria: Dict[str, Criterion] = {}
        for criterion in criteria:
            self.register(criterion)

    def register(self, criterion: Criterion) -> None:
        if criterion.key in self._criteria and self._criteria[criterion.key] != criterion:
            raise CriterionError(f"criterion {criterion.key!r} is already registered")
        self._criteria[criterion.key] = criterion

    def register_function(self, key: str, description: str, function: CriterionFunction) -> Criterion:
        criterion = Criterion(key, description, function)
        self.register(criterion)
        return criterion

    def get(self, key: str) -> Criterion:
        try:
            return self._criteria[key]
        except KeyError:
            raise CriterionError(
                f"unknown criterion {key!r}; registered: {sorted(self._criteria)}"
            ) from None

    def resolve(self, items: Iterable[Union[str, Criterion]]) -> List[Criterion]:
        """Turn a mixed list of keys and Criterion objects into criteria."""
        resolved = []
        for item in items:
            if isinstance(item, Criterion):
                resolved.append(item)
            else:
                resolved.append(self.get(item))
        return resolved

    def keys(self) -> List[str]:
        return sorted(self._criteria)

    def __contains__(self, key: str) -> bool:
        return key in self._criteria

    def __len__(self) -> int:
        return len(self._criteria)


DEFAULT_REGISTRY = CriteriaRegistry(PAPER_CRITERIA + (PRECISION, F1, ACCURACY))

#: Built-in criteria that are componentwise monotone in (TP, FP): each is
#: non-decreasing or non-increasing in the matched-positive count and in
#: the matched-negative count separately (δ5/δ6 ignore the profile
#: entirely).  Top-k bound pruning
#: (:meth:`repro.core.best_describe.BestDescriptionSearch.top_k`) is only
#: sound for criteria whose extrema over a (TP, FP) box lie on its
#: corners, so it prunes exactly when every criterion of Δ is in this
#: set — a custom criterion (even a counts-only one, e.g. peaked at
#: TP = P/2) falls back to exhaustive ranking.
MONOTONE_CRITERIA: FrozenSet[Criterion] = frozenset(
    PAPER_CRITERIA + (PRECISION, F1, ACCURACY)
)


def evaluate_criteria(
    criteria: Sequence[Criterion], context: EvaluationContext
) -> Dict[str, float]:
    """Evaluate every criterion of Δ on one context, keyed by criterion key."""
    return {criterion.key: criterion.evaluate(context) for criterion in criteria}
