"""``J``-matching of borders (Definition 3.4) and match profiles.

A query ``q_O`` *J-matches* the border ``B_{t,r}(D)`` when ``t`` is a
certain answer of ``q_O`` w.r.t. the OBDM specification ``J`` and the
sub-database consisting of the border's atoms.  Proposition 3.5 states
that matching is monotone in the radius: if ``q_O`` matches ``B_{t,r}``
then it matches ``B_{t,r+1}``.

The :class:`MatchEvaluator` below caches the retrieved ABox of each
border, because the explanation search evaluates many candidate queries
against the same set of borders, and memoizes J-match verdicts in the
specification's shared :class:`~repro.engine.cache.EvaluationCache`
(keyed by query signature × border, so verdicts are reused across
evaluators and labelings).  :class:`MatchProfile` aggregates, for
one query, which positive and negative tuples were matched — the raw
material of the criteria δ1–δ4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import CriterionError, ExplanationError
from ..obdm.certain_answers import OntologyQuery
from ..obdm.system import OBDMSystem
from ..obdm.virtual_abox import VirtualABox
from ..queries.cq import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries, query_key
from .border import Border, BorderComputer
from .labeling import ConstantTuple, Labeling, RawTuple, normalize_tuple


class MatchStatistics:
    """Confusion-matrix arithmetic over the four match counts.

    Subclasses provide ``true_positives`` / ``false_negatives`` /
    ``false_positives`` / ``true_negatives``; everything here derives
    from those four integers.  :class:`MatchProfile` backs them with
    frozensets, :class:`~repro.engine.verdicts.BitsetVerdictProfile`
    with popcounts over a bitset row — sharing this mixin is what makes
    the criteria functions ``f_δ1``–``f_δ4`` pure count arithmetic on
    either path.
    """

    # -- counts ---------------------------------------------------------------

    @property
    def positive_total(self) -> int:
        return self.true_positives + self.false_negatives

    @property
    def negative_total(self) -> int:
        return self.true_negatives + self.false_positives

    # -- ratios ------------------------------------------------------------------

    def positive_coverage(self) -> float:
        """Fraction of ``λ+`` matched (the paper's ``f_δ1``)."""
        if self.positive_total == 0:
            return 0.0
        return self.true_positives / self.positive_total

    def negative_exclusion(self) -> float:
        """Fraction of ``λ-`` *not* matched (the paper's ``f_δ4``)."""
        if self.negative_total == 0:
            return 1.0
        return self.true_negatives / self.negative_total

    def precision(self) -> float:
        """Matched positives over all matched tuples."""
        matched = self.true_positives + self.false_positives
        if matched == 0:
            return 0.0
        return self.true_positives / matched

    def recall(self) -> float:
        return self.positive_coverage()

    def f1(self) -> float:
        precision, recall = self.precision(), self.recall()
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def accuracy(self) -> float:
        total = self.positive_total + self.negative_total
        if total == 0:
            return 0.0
        return (self.true_positives + self.true_negatives) / total

    def is_perfect_separation(self) -> bool:
        """Conditions (1) and (2) of Section 3: all positives, no negatives."""
        return self.false_negatives == 0 and self.false_positives == 0

    def __str__(self):
        return (
            f"{type(self).__name__}(+: {self.true_positives}/{self.positive_total}, "
            f"-: {self.false_positives}/{self.negative_total} matched)"
        )


@dataclass(frozen=True)
class CountProfile(MatchStatistics):
    """A profile carrying only the four confusion-matrix counts.

    Used for *hypothetical* profiles — the optimistic/pessimistic corner
    profiles of top-k bound pruning
    (:meth:`repro.core.best_describe.QueryScorer.optimistic_score`) —
    where no concrete tuple sets exist.  The set views raise
    :class:`~repro.errors.CriterionError` explicitly: criteria that read
    tuple sets (rather than the counts) cannot be bounded, and the
    pruning path catches exactly that signal to fall back to exhaustive
    ranking (a bare ``AttributeError`` would be indistinguishable from a
    genuine regression in the bound computation).
    """

    true_positives: int
    false_negatives: int
    false_positives: int
    true_negatives: int

    def _no_sets(self, view: str):
        raise CriterionError(
            f"CountProfile has no {view!r}: it carries only confusion-matrix "
            "counts (hypothetical bound profiles have no concrete tuple sets)"
        )

    @property
    def positives_matched(self):
        self._no_sets("positives_matched")

    @property
    def positives_unmatched(self):
        self._no_sets("positives_unmatched")

    @property
    def negatives_matched(self):
        self._no_sets("negatives_matched")

    @property
    def negatives_unmatched(self):
        self._no_sets("negatives_unmatched")


@dataclass(frozen=True)
class MatchProfile(MatchStatistics):
    """Which labelled tuples a query matched, split by label."""

    positives_matched: FrozenSet[ConstantTuple]
    positives_unmatched: FrozenSet[ConstantTuple]
    negatives_matched: FrozenSet[ConstantTuple]
    negatives_unmatched: FrozenSet[ConstantTuple]

    @property
    def true_positives(self) -> int:
        return len(self.positives_matched)

    @property
    def false_negatives(self) -> int:
        return len(self.positives_unmatched)

    @property
    def false_positives(self) -> int:
        return len(self.negatives_matched)

    @property
    def true_negatives(self) -> int:
        return len(self.negatives_unmatched)


class MatchEvaluator:
    """Evaluates Definition 3.4 for queries against cached borders."""

    def __init__(self, system: OBDMSystem, radius: int = 1, border_computer: Optional[BorderComputer] = None):
        if radius < 0:
            raise ExplanationError(f"radius must be a natural number, got {radius}")
        self.system = system
        self.radius = radius
        self.borders = border_computer or BorderComputer(system.database)
        self._abox_cache: Dict[Tuple[ConstantTuple, int], VirtualABox] = {}
        self._shared_cache = system.specification.engine.cache

    # -- border ABox handling -----------------------------------------------------

    def border_of(self, raw: RawTuple, radius: Optional[int] = None) -> Border:
        return self.borders.border(raw, self.radius if radius is None else radius)

    def _border_abox(self, border: Border) -> VirtualABox:
        # The shared cache keys the retrieval by the border's atom set, so
        # evaluators over the same specification reuse each other's
        # retrieved ABoxes — and, unlike a per-evaluator dict, that layer
        # is LRU-bounded under CacheLimits.  A long-lived evaluator (the
        # explanation service keeps one per radius) must not shadow it
        # with an unbounded private dict that would pin every ABox ever
        # retrieved; the private dict is kept only when the shared cache
        # is disabled, preserving the seed's per-evaluator lookup (and
        # its staleness semantics w.r.t. database mutation).
        if self._shared_cache.enabled:
            return self._shared_cache.border_abox(
                border.atoms, lambda: self._retrieve_border_abox(border)
            )
        key = (border.tuple, border.radius)
        abox = self._abox_cache.get(key)
        if abox is None:
            abox = self._shared_cache.border_abox(
                border.atoms, lambda: self._retrieve_border_abox(border)
            )
            self._abox_cache[key] = abox
        return abox

    def _retrieve_border_abox(self, border: Border) -> VirtualABox:
        sub_database = self.system.database.restrict_to(border.atoms)
        return self.system.specification.retrieve_abox(sub_database)

    # -- Definition 3.4 -----------------------------------------------------------

    def matches(self, query: OntologyQuery, raw: RawTuple, radius: Optional[int] = None) -> bool:
        """``True`` iff *query* J-matches ``B_{t,radius}(D)`` for ``t = raw``."""
        border = self.border_of(raw, radius)
        return self.matches_border(query, border)

    def matches_border(self, query: OntologyQuery, border: Border) -> bool:
        """``True`` iff *query* J-matches the given precomputed border.

        Verdicts are memoized in the specification's shared evaluation
        cache under (query signature, border); the border value embeds
        its tuple, radius and atom layers, so the key is content-
        addressed and remains sound across evaluators of the same ``J``.
        """
        key = normalize_tuple(border.tuple)
        if self._query_arity(query) != len(key):
            return False
        return self._shared_cache.match(
            (query_key(query), border), lambda: self._evaluate_match(query, key, border)
        )

    def _evaluate_match(self, query: OntologyQuery, key: ConstantTuple, border: Border) -> bool:
        # The retrieved ABox of the border sub-database is cached; once it is
        # available the source database itself is not consulted again, so the
        # full database can be passed without building the restriction.
        abox = self._border_abox(border)
        return self.system.specification.is_certain_answer(
            query, key, self.system.database, abox=abox
        )

    @staticmethod
    def _query_arity(query: OntologyQuery) -> int:
        return query.arity

    # -- batch evaluation --------------------------------------------------------------

    def match_set(
        self, query: OntologyQuery, raws: Iterable[RawTuple], radius: Optional[int] = None
    ) -> Set[ConstantTuple]:
        """The subset of *raws* whose borders the query J-matches."""
        matched: Set[ConstantTuple] = set()
        for raw in raws:
            border = self.border_of(raw, radius)
            if self.matches_border(query, border):
                matched.add(border.tuple)
        return matched

    def profile(
        self, query: OntologyQuery, labeling: Labeling, radius: Optional[int] = None
    ) -> MatchProfile:
        """Full match profile of a query against a labeling."""
        positives = {normalize_tuple(t) for t in labeling.positives}
        negatives = {normalize_tuple(t) for t in labeling.negatives}
        positives_matched = self.match_set(query, positives, radius)
        negatives_matched = self.match_set(query, negatives, radius)
        return MatchProfile(
            positives_matched=frozenset(positives_matched),
            positives_unmatched=frozenset(positives - positives_matched),
            negatives_matched=frozenset(negatives_matched),
            negatives_unmatched=frozenset(negatives - negatives_matched),
        )

    # -- Proposition 3.5 ------------------------------------------------------------------

    def is_monotone_in_radius(
        self, query: OntologyQuery, raw: RawTuple, max_radius: int
    ) -> bool:
        """Empirically check Proposition 3.5 for one query and one tuple.

        Returns ``True`` when, for every ``r < max_radius``, a match at
        radius ``r`` implies a match at radius ``r + 1`` (this should
        always hold; the property tests rely on it).
        """
        previous = None
        for radius in range(max_radius + 1):
            current = self.matches(query, raw, radius)
            if previous is True and current is False:
                return False
            previous = current
        return True
