"""Relational algebra operators over :class:`~repro.sql.relation.Relation`.

The mapping layer of an OBDM specification uses *source queries*: in the
paper these are arbitrary (efficiently computable) queries over the
source schema.  This module implements a small but complete
select-project-join-union-rename algebra, which is the target of the
mini SQL parser (:mod:`repro.sql.sql_parser`) and is also usable
directly as an embedded DSL.

Each operator is a node with an :meth:`evaluate` method taking a
:class:`~repro.sql.catalog.Catalog` and producing a :class:`Relation`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import SchemaError
from .catalog import Catalog
from .relation import Relation, RelationSchema

Value = Union[str, int, float, bool]


class AlgebraNode:
    """Base class of relational algebra expression nodes."""

    def evaluate(self, catalog: Catalog) -> Relation:
        raise NotImplementedError

    def output_attributes(self, catalog: Catalog) -> Tuple[str, ...]:
        """Attribute names of the relation this node produces."""
        return self.evaluate(catalog).schema.attributes


@dataclass(frozen=True)
class Scan(AlgebraNode):
    """Read a base relation, optionally renaming it (``FROM R AS alias``)."""

    relation_name: str
    alias: Optional[str] = None

    def evaluate(self, catalog: Catalog) -> Relation:
        relation = catalog.relation(self.relation_name)
        label = self.alias or self.relation_name
        attributes = tuple(f"{label}.{a}" for a in relation.schema.attributes)
        renamed = Relation(RelationSchema(label, attributes))
        for row in relation:
            renamed.add(row)
        return renamed


@dataclass(frozen=True)
class Condition:
    """An equality condition ``left = right``.

    Each side is either an attribute reference (string containing a dot,
    e.g. ``e.student``) or a constant value.  Attribute references are
    resolved against the input schema; a bare attribute name (no dot) is
    accepted when it is unambiguous.
    """

    left: Union[str, Value]
    right: Union[str, Value]
    left_is_attribute: bool = True
    right_is_attribute: bool = False

    def resolve(self, attributes: Sequence[str]) -> Callable[[Tuple], bool]:
        def position(reference: str) -> int:
            if reference in attributes:
                return attributes.index(reference)
            matches = [i for i, a in enumerate(attributes) if a.split(".")[-1] == reference]
            if len(matches) == 1:
                return matches[0]
            if not matches:
                raise SchemaError(f"unknown attribute {reference!r} among {list(attributes)}")
            raise SchemaError(f"ambiguous attribute {reference!r} among {list(attributes)}")

        if self.left_is_attribute:
            left_position = position(str(self.left))
            left_getter = lambda row: row[left_position]
        else:
            left_getter = lambda row: self.left
        if self.right_is_attribute:
            right_position = position(str(self.right))
            right_getter = lambda row: row[right_position]
        else:
            right_getter = lambda row: self.right
        return lambda row: left_getter(row) == right_getter(row)


@dataclass(frozen=True)
class Select(AlgebraNode):
    """Selection: keep rows satisfying every condition."""

    child: AlgebraNode
    conditions: Tuple[Condition, ...]

    def evaluate(self, catalog: Catalog) -> Relation:
        relation = self.child.evaluate(catalog)
        predicates = [c.resolve(relation.schema.attributes) for c in self.conditions]
        result = Relation(relation.schema)
        for row in relation:
            if all(predicate(row) for predicate in predicates):
                result.add(row)
        return result


@dataclass(frozen=True)
class Project(AlgebraNode):
    """Projection onto a list of attribute references (dot or bare names)."""

    child: AlgebraNode
    attributes: Tuple[str, ...]

    def evaluate(self, catalog: Catalog) -> Relation:
        relation = self.child.evaluate(catalog)
        available = relation.schema.attributes

        def position(reference: str) -> int:
            if reference in available:
                return available.index(reference)
            matches = [i for i, a in enumerate(available) if a.split(".")[-1] == reference]
            if len(matches) == 1:
                return matches[0]
            if not matches:
                raise SchemaError(f"unknown attribute {reference!r} among {list(available)}")
            raise SchemaError(f"ambiguous attribute {reference!r} among {list(available)}")

        positions = [position(reference) for reference in self.attributes]
        schema = RelationSchema(relation.schema.name, tuple(self.attributes))
        result = Relation(schema)
        for row in relation:
            result.add(tuple(row[p] for p in positions))
        return result


@dataclass(frozen=True)
class CrossProduct(AlgebraNode):
    """Cartesian product of two inputs (joins = product + selection)."""

    left: AlgebraNode
    right: AlgebraNode

    def evaluate(self, catalog: Catalog) -> Relation:
        left = self.left.evaluate(catalog)
        right = self.right.evaluate(catalog)
        attributes = left.schema.attributes + right.schema.attributes
        if len(set(attributes)) != len(attributes):
            raise SchemaError(
                "cross product would produce duplicate attribute names; "
                "use aliases to disambiguate"
            )
        schema = RelationSchema("product", attributes)
        result = Relation(schema)
        for left_row in left:
            for right_row in right:
                result.add(left_row + right_row)
        return result


@dataclass(frozen=True)
class Union(AlgebraNode):
    """Set union of two inputs with compatible arities."""

    left: AlgebraNode
    right: AlgebraNode

    def evaluate(self, catalog: Catalog) -> Relation:
        left = self.left.evaluate(catalog)
        right = self.right.evaluate(catalog)
        if left.schema.arity != right.schema.arity:
            raise SchemaError(
                f"union of incompatible arities: {left.schema.arity} vs {right.schema.arity}"
            )
        result = Relation(left.schema)
        for row in left:
            result.add(row)
        for row in right:
            result.add(row)
        return result


@dataclass(frozen=True)
class Rename(AlgebraNode):
    """Rename output attributes positionally."""

    child: AlgebraNode
    attributes: Tuple[str, ...]

    def evaluate(self, catalog: Catalog) -> Relation:
        relation = self.child.evaluate(catalog)
        if len(self.attributes) != relation.schema.arity:
            raise SchemaError(
                f"rename expects {relation.schema.arity} attribute names, "
                f"got {len(self.attributes)}"
            )
        schema = RelationSchema(relation.schema.name, tuple(self.attributes))
        result = Relation(schema)
        for row in relation:
            result.add(row)
        return result


def natural_join(left: AlgebraNode, right: AlgebraNode, catalog: Catalog) -> Relation:
    """Convenience natural join on attributes sharing the same bare name."""
    left_relation = left.evaluate(catalog)
    right_relation = right.evaluate(catalog)
    left_names = {a.split(".")[-1]: i for i, a in enumerate(left_relation.schema.attributes)}
    right_names = {a.split(".")[-1]: i for i, a in enumerate(right_relation.schema.attributes)}
    shared = sorted(set(left_names) & set(right_names))
    kept_right = [
        (i, a)
        for i, a in enumerate(right_relation.schema.attributes)
        if a.split(".")[-1] not in shared
    ]
    attributes = left_relation.schema.attributes + tuple(a for _, a in kept_right)
    result = Relation(RelationSchema("join", attributes))
    for left_row in left_relation:
        for right_row in right_relation:
            if all(left_row[left_names[s]] == right_row[right_names[s]] for s in shared):
                result.add(left_row + tuple(right_row[i] for i, _ in kept_right))
    return result
