"""Relational data-layer substrate: relations, catalogs, algebra, SQL, executor."""

from .algebra import (
    AlgebraNode,
    Condition,
    CrossProduct,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    natural_join,
)
from .catalog import Catalog
from .executor import Executor, SourceQuery
from .relation import Relation, RelationSchema, Row
from .sql_parser import ParsedSelect, parse_sql, sql_to_algebra

__all__ = [
    "AlgebraNode",
    "Catalog",
    "Condition",
    "CrossProduct",
    "Executor",
    "ParsedSelect",
    "Project",
    "Relation",
    "RelationSchema",
    "Rename",
    "Row",
    "Scan",
    "Select",
    "SourceQuery",
    "Union",
    "natural_join",
    "parse_sql",
    "sql_to_algebra",
]
