"""A mini SQL parser for select-project-join source queries.

Mapping assertions in OBDM relate a *source query* over the relational
schema to an ontology query.  The paper (Section 2) notes that source
queries are evaluated directly over the source database and may be any
efficiently computable query; in practice OBDA systems use SQL.  This
module parses the select-project-join fragment::

    SELECT e.student, e.course
    FROM enrolment AS e, location AS l
    WHERE e.university = l.university AND l.city = 'Rome'

into the relational algebra of :mod:`repro.sql.algebra`.  Supported
features: ``SELECT`` attribute lists (with optional ``table.`` prefixes
and ``*``), ``FROM`` lists with ``AS`` aliases, and ``WHERE`` with
``AND``-separated equality conditions between attributes and/or
constants (quoted strings, numbers, booleans).
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Sequence, Tuple, Union

from ..errors import QueryParseError
from .algebra import AlgebraNode, Condition, CrossProduct, Project, Scan, Select

_TOKEN_SPEC = [
    ("STRING", r"'[^']*'|\"[^\"]*\""),
    ("NUMBER", r"-?\d+\.\d+|-?\d+"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("EQ", r"="),
    ("STAR", r"\*"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("WS", r"\s+"),
    ("MISMATCH", r"."),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))
_KEYWORDS = {"SELECT", "FROM", "WHERE", "AND", "AS", "TRUE", "FALSE"}


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup or "MISMATCH"
        value = match.group()
        if kind == "WS":
            continue
        if kind == "MISMATCH":
            raise QueryParseError(f"unexpected character {value!r} at position {match.start()}")
        if kind == "NAME" and value.upper() in _KEYWORDS:
            kind = value.upper()
            value = value.upper()
        tokens.append(_Token(kind, value, match.start()))
    return tokens


class _SqlParser:
    def __init__(self, tokens: Sequence[_Token], text: str):
        self._tokens = list(tokens)
        self._text = text
        self._position = 0

    def _peek(self) -> Optional[_Token]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryParseError(f"unexpected end of SQL in {self._text!r}")
        self._position += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise QueryParseError(
                f"expected {kind} but found {token.value!r} at position {token.position}"
            )
        return token

    def _accept(self, kind: str) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind:
            return self._next()
        return None

    # -- grammar ---------------------------------------------------------

    def parse(self) -> "ParsedSelect":
        self._expect("SELECT")
        select_list = self._parse_select_list()
        self._expect("FROM")
        from_list = self._parse_from_list()
        conditions: List[Condition] = []
        if self._accept("WHERE"):
            conditions = self._parse_conditions()
        if self._peek() is not None:
            token = self._peek()
            raise QueryParseError(
                f"trailing SQL input starting at {token.value!r} (position {token.position})"
            )
        return ParsedSelect(tuple(select_list), tuple(from_list), tuple(conditions))

    def _parse_select_list(self) -> List[str]:
        if self._accept("STAR"):
            return ["*"]
        items = [self._parse_attribute_reference()]
        while self._accept("COMMA"):
            items.append(self._parse_attribute_reference())
        return items

    def _parse_attribute_reference(self) -> str:
        first = self._expect("NAME").value
        if self._accept("DOT"):
            second = self._expect("NAME").value
            return f"{first}.{second}"
        return first

    def _parse_from_list(self) -> List[Tuple[str, str]]:
        items = [self._parse_from_item()]
        while self._accept("COMMA"):
            items.append(self._parse_from_item())
        return items

    def _parse_from_item(self) -> Tuple[str, str]:
        relation = self._expect("NAME").value
        alias = relation
        if self._accept("AS"):
            alias = self._expect("NAME").value
        else:
            token = self._peek()
            if token is not None and token.kind == "NAME":
                alias = self._next().value
        return relation, alias

    def _parse_conditions(self) -> List[Condition]:
        conditions = [self._parse_condition()]
        while self._accept("AND"):
            conditions.append(self._parse_condition())
        return conditions

    def _parse_condition(self) -> Condition:
        left_value, left_is_attribute = self._parse_operand()
        self._expect("EQ")
        right_value, right_is_attribute = self._parse_operand()
        return Condition(left_value, right_value, left_is_attribute, right_is_attribute)

    def _parse_operand(self) -> Tuple[Union[str, int, float, bool], bool]:
        token = self._next()
        if token.kind == "STRING":
            return token.value[1:-1], False
        if token.kind == "NUMBER":
            return (float(token.value) if "." in token.value else int(token.value)), False
        if token.kind in ("TRUE", "FALSE"):
            return token.kind == "TRUE", False
        if token.kind == "NAME":
            name = token.value
            if self._accept("DOT"):
                name = f"{name}.{self._expect('NAME').value}"
            return name, True
        raise QueryParseError(
            f"expected attribute or constant, found {token.value!r} at position {token.position}"
        )


class ParsedSelect(NamedTuple):
    """Structured form of a parsed SELECT statement."""

    select_list: Tuple[str, ...]
    from_list: Tuple[Tuple[str, str], ...]
    conditions: Tuple[Condition, ...]

    def to_algebra(self) -> AlgebraNode:
        """Lower the parsed statement into a relational algebra tree."""
        node: AlgebraNode = Scan(self.from_list[0][0], self.from_list[0][1])
        for relation, alias in self.from_list[1:]:
            node = CrossProduct(node, Scan(relation, alias))
        if self.conditions:
            node = Select(node, tuple(self.conditions))
        if self.select_list != ("*",):
            node = Project(node, tuple(self.select_list))
        return node


def parse_sql(text: str) -> ParsedSelect:
    """Parse a SELECT statement into a :class:`ParsedSelect`."""
    parser = _SqlParser(_tokenize(text), text)
    return parser.parse()


def sql_to_algebra(text: str) -> AlgebraNode:
    """Parse a SELECT statement and lower it to relational algebra."""
    return parse_sql(text).to_algebra()
