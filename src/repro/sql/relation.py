"""In-memory relations: named, typed collections of tuples.

The paper's data layer is a plain relational database.  This module
provides the smallest useful relational abstraction: a
:class:`RelationSchema` (name + attribute names) and a :class:`Relation`
(schema + set of rows).  Rows are tuples of Python scalars; duplicate
rows are collapsed (set semantics), matching the first-order semantics
used by the OBDM layer where a database is a finite set of atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..errors import SchemaError

Row = Tuple[Union[str, int, float, bool], ...]


@dataclass(frozen=True)
class RelationSchema:
    """Schema of a single relation: its name and attribute names."""

    name: str
    attributes: Tuple[str, ...]

    def __post_init__(self):
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        attributes = tuple(self.attributes)
        if not attributes:
            raise SchemaError(f"relation {self.name!r} must have at least one attribute")
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"relation {self.name!r} has duplicate attribute names")
        object.__setattr__(self, "attributes", attributes)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def position_of(self, attribute: str) -> int:
        """Index of *attribute* within the schema; raises if unknown."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}; "
                f"known attributes: {list(self.attributes)}"
            ) from None

    def __str__(self):
        return f"{self.name}({', '.join(self.attributes)})"


class Relation:
    """A relation instance: a schema plus a set of rows."""

    def __init__(self, schema: RelationSchema, rows: Iterable[Row] = ()):
        self.schema = schema
        self._rows: Set[Row] = set()
        self._version = 0
        for row in rows:
            self.add(row)

    # -- mutation ---------------------------------------------------------

    def add(self, row: Sequence) -> None:
        """Insert a row, checking its arity against the schema."""
        row = tuple(row)
        if len(row) != self.schema.arity:
            raise SchemaError(
                f"row {row!r} has arity {len(row)}, but {self.schema} expects "
                f"{self.schema.arity}"
            )
        before = len(self._rows)
        self._rows.add(row)
        if len(self._rows) != before:
            self._version += 1

    def add_all(self, rows: Iterable[Sequence]) -> None:
        for row in rows:
            self.add(row)

    def remove(self, row: Sequence) -> None:
        """Remove a row if present (no error when absent)."""
        before = len(self._rows)
        self._rows.discard(tuple(row))
        if len(self._rows) != before:
            self._version += 1

    @property
    def version(self) -> int:
        """Monotonic content version: bumps on every effective add/remove."""
        return self._version

    # -- access ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def rows(self) -> Set[Row]:
        """A copy of the relation's rows."""
        return set(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(sorted(self._rows, key=repr))

    def __contains__(self, row: Sequence) -> bool:
        return tuple(row) in self._rows

    def column(self, attribute: str) -> List:
        """All values of one attribute (with duplicates, sorted for determinism)."""
        position = self.schema.position_of(attribute)
        return sorted((row[position] for row in self._rows), key=repr)

    def project(self, attributes: Sequence[str]) -> "Relation":
        """Projection onto a subset of attributes (set semantics)."""
        positions = [self.schema.position_of(a) for a in attributes]
        schema = RelationSchema(self.schema.name, tuple(attributes))
        projected = Relation(schema)
        for row in self._rows:
            projected.add(tuple(row[p] for p in positions))
        return projected

    def select(self, predicate) -> "Relation":
        """Selection by an arbitrary row predicate ``row_dict -> bool``."""
        selected = Relation(self.schema)
        for row in self._rows:
            row_dict = dict(zip(self.schema.attributes, row))
            if predicate(row_dict):
                selected.add(row)
        return selected

    def copy(self) -> "Relation":
        return Relation(self.schema, self._rows)

    def __str__(self):
        return f"{self.schema} [{len(self)} rows]"

    def __repr__(self):
        return f"Relation({self.schema!r}, rows={len(self)})"
