"""Catalog: the collection of relation schemas and instances of a source.

The catalog plays the role of the relational DBMS in the paper's data
layer.  It owns relation instances, answers point lookups and converts
between the relational view (rows) and the logical view (ground atoms)
used by the OBDM machinery.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import SchemaError, UnknownRelationError
from ..queries.atoms import Atom
from ..queries.terms import Constant
from .relation import Relation, RelationSchema, Row


class Catalog:
    """A named collection of relations forming one relational database."""

    def __init__(self, name: str = "source"):
        self.name = name
        self._relations: Dict[str, Relation] = {}
        self._structure_version = 0

    # -- schema management -------------------------------------------------

    def create_relation(self, name: str, attributes: Sequence[str]) -> Relation:
        """Create and register an empty relation; error if it already exists."""
        if name in self._relations:
            raise SchemaError(f"relation {name!r} already exists in catalog {self.name!r}")
        relation = Relation(RelationSchema(name, tuple(attributes)))
        self._relations[name] = relation
        self._structure_version += 1
        return relation

    def drop_relation(self, name: str) -> None:
        """Remove a relation; raises :class:`UnknownRelationError` if absent."""
        if name not in self._relations:
            raise UnknownRelationError(f"cannot drop unknown relation {name!r}")
        dropped = self._relations.pop(name)
        # Absorb the dropped relation's version (plus one for the drop
        # itself) so ``content_version`` cannot revert to an earlier
        # value once the relation's contribution leaves the sum.
        self._structure_version += dropped.version + 1

    def content_version(self) -> int:
        """Monotonic version covering both structure and row contents.

        Two observations of the same catalog object with equal
        ``content_version()`` are guaranteed to hold identical data;
        any effective row or schema mutation in between changes it.
        Consumers (e.g. :class:`~repro.sql.executor.Executor`) key
        derived caches on this instead of relying on being told about
        every mutation.
        """
        return self._structure_version + sum(
            relation.version for relation in self._relations.values()
        )

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(
                f"unknown relation {name!r}; catalog contains {sorted(self._relations)}"
            ) from None

    def relation_names(self) -> List[str]:
        return sorted(self._relations)

    def schemas(self) -> List[RelationSchema]:
        return [self._relations[name].schema for name in self.relation_names()]

    # -- data management -------------------------------------------------------

    def insert(self, relation_name: str, row: Sequence) -> None:
        """Insert a single row into a relation."""
        self.relation(relation_name).add(row)

    def insert_all(self, relation_name: str, rows: Iterable[Sequence]) -> None:
        """Insert many rows into a relation."""
        relation = self.relation(relation_name)
        for row in rows:
            relation.add(row)

    def row_count(self) -> int:
        """Total number of rows across all relations."""
        return sum(len(relation) for relation in self._relations.values())

    # -- logical view -------------------------------------------------------------

    def to_atoms(self) -> Set[Atom]:
        """Render the full database as a set of ground atoms ``R(c1,...,cn)``."""
        atoms: Set[Atom] = set()
        for name in self.relation_names():
            for row in self._relations[name]:
                atoms.add(Atom(name, tuple(Constant(value) for value in row)))
        return atoms

    @staticmethod
    def from_atoms(atoms: Iterable[Atom], name: str = "source") -> "Catalog":
        """Build a catalog from ground atoms, inferring schemas by arity.

        Attribute names are synthesised as ``a1..an``.  Mixed arities for
        the same predicate raise a :class:`SchemaError`.
        """
        catalog = Catalog(name)
        for atom in sorted(atoms):
            if not atom.is_ground():
                raise SchemaError(f"cannot load non-ground atom {atom} into a catalog")
            if not catalog.has_relation(atom.predicate):
                attributes = tuple(f"a{i + 1}" for i in range(atom.arity))
                catalog.create_relation(atom.predicate, attributes)
            relation = catalog.relation(atom.predicate)
            if relation.schema.arity != atom.arity:
                raise SchemaError(
                    f"atom {atom} has arity {atom.arity} but relation "
                    f"{atom.predicate!r} has arity {relation.schema.arity}"
                )
            relation.add(tuple(argument.value for argument in atom.args))
        return catalog

    def copy(self) -> "Catalog":
        duplicate = Catalog(self.name)
        for name in self.relation_names():
            original = self._relations[name]
            duplicate._relations[name] = original.copy()
        return duplicate

    def __len__(self) -> int:
        return len(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        for name in self.relation_names():
            yield self._relations[name]

    def __str__(self):
        parts = ", ".join(str(relation.schema) for relation in self)
        return f"Catalog({self.name!r}: {parts})"
