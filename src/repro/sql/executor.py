"""Query executor: run SQL text or algebra trees against a catalog.

The executor is the entry point the OBDM mapping layer uses to evaluate
mapping source queries over the source database.  It accepts either SQL
text, an already-built algebra tree, or a conjunctive query over the
source schema (the form used in the paper's Example 3.6, e.g.
``ENR(x, y, z)``), and always returns a list of answer tuples.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import SchemaError
from ..queries.cq import ConjunctiveQuery
from ..queries.evaluation import FactIndex, evaluate
from .algebra import AlgebraNode
from .catalog import Catalog
from .relation import Relation, Row
from .sql_parser import sql_to_algebra

SourceQuery = Union[str, AlgebraNode, ConjunctiveQuery]


class Executor:
    """Evaluates source queries over a :class:`~repro.sql.catalog.Catalog`.

    The executor caches the logical (atom) view of the catalog so that
    repeated CQ-style source queries do not re-materialise it.  The
    cache is keyed on :meth:`Catalog.content_version`, so any effective
    insert/remove/DDL on the catalog invalidates it automatically —
    callers no longer have to remember to call :meth:`invalidate`
    (which remains as a no-risk explicit form).
    """

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._fact_index: Optional[FactIndex] = None
        self._index_version: Optional[int] = None

    def invalidate(self) -> None:
        """Drop cached state (kept for back-compat; now automatic)."""
        self._fact_index = None
        self._index_version = None

    def _index(self) -> FactIndex:
        version = self.catalog.content_version()
        if self._fact_index is None or self._index_version != version:
            self._fact_index = FactIndex(self.catalog.to_atoms())
            self._index_version = version
        return self._fact_index

    # -- execution ------------------------------------------------------

    def execute(self, query: SourceQuery) -> List[Row]:
        """Run a source query and return its answer tuples (sorted)."""
        if isinstance(query, str):
            return self._execute_algebra(sql_to_algebra(query))
        if isinstance(query, AlgebraNode):
            return self._execute_algebra(query)
        if isinstance(query, ConjunctiveQuery):
            return self._execute_cq(query)
        raise SchemaError(f"unsupported source query type: {type(query).__name__}")

    def _execute_algebra(self, node: AlgebraNode) -> List[Row]:
        relation = node.evaluate(self.catalog)
        return sorted(relation.rows, key=repr)

    def _execute_cq(self, query: ConjunctiveQuery) -> List[Row]:
        answers = evaluate(query, (), index=self._index())
        return sorted(
            (tuple(constant.value for constant in answer) for answer in answers),
            key=repr,
        )
