"""Query executor: run SQL text or algebra trees against a catalog.

The executor is the entry point the OBDM mapping layer uses to evaluate
mapping source queries over the source database.  It accepts either SQL
text, an already-built algebra tree, or a conjunctive query over the
source schema (the form used in the paper's Example 3.6, e.g.
``ENR(x, y, z)``), and always returns a list of answer tuples.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import SchemaError
from ..queries.cq import ConjunctiveQuery
from ..queries.evaluation import FactIndex, evaluate
from .algebra import AlgebraNode
from .catalog import Catalog
from .relation import Relation, Row
from .sql_parser import sql_to_algebra

SourceQuery = Union[str, AlgebraNode, ConjunctiveQuery]


class Executor:
    """Evaluates source queries over a :class:`~repro.sql.catalog.Catalog`.

    The executor caches the logical (atom) view of the catalog so that
    repeated CQ-style source queries do not re-materialise it; the cache
    is invalidated explicitly with :meth:`invalidate` when the catalog's
    contents change.
    """

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._fact_index: Optional[FactIndex] = None

    def invalidate(self) -> None:
        """Drop cached state after the underlying catalog was modified."""
        self._fact_index = None

    def _index(self) -> FactIndex:
        if self._fact_index is None:
            self._fact_index = FactIndex(self.catalog.to_atoms())
        return self._fact_index

    # -- execution ------------------------------------------------------

    def execute(self, query: SourceQuery) -> List[Row]:
        """Run a source query and return its answer tuples (sorted)."""
        if isinstance(query, str):
            return self._execute_algebra(sql_to_algebra(query))
        if isinstance(query, AlgebraNode):
            return self._execute_algebra(query)
        if isinstance(query, ConjunctiveQuery):
            return self._execute_cq(query)
        raise SchemaError(f"unsupported source query type: {type(query).__name__}")

    def _execute_algebra(self, node: AlgebraNode) -> List[Row]:
        relation = node.evaluate(self.catalog)
        return sorted(relation.rows, key=repr)

    def _execute_cq(self, query: ConjunctiveQuery) -> List[Row]:
        answers = evaluate(query, (), index=self._index())
        return sorted(
            (tuple(constant.value for constant in answer) for answer in answers),
            key=repr,
        )
