"""Snapshot-lifecycle regressions: atomic save, corrupt-load refusal, shipping.

Pins the two bugfixes the gateway's fleet story depends on:

* an interrupted :meth:`EvaluationCache.save` can never leave a
  truncated snapshot at the published path (the dump goes to a
  same-directory temp file and is ``os.replace``\\ d into place);
* a truncated / garbage / foreign-class artifact can never crash
  :meth:`EvaluationCache.load` — every unpickling failure becomes the
  same ``ValueError`` refusal as a fingerprint mismatch, which
  :func:`repro.gateway.shipping.boot_warm` degrades to a cold start.

Plus the end-to-end shipping contract: a replica booted from a donor's
streamed snapshot ranks identically to the donor, across all four
domain ontologies.
"""

from __future__ import annotations

import asyncio
import os
import pickle

import pytest

from repro.errors import GatewayError
from repro.experiments.kernel_exp import (
    PROBE_DOMAINS,
    build_probe_system,
    probe_labeling,
    probe_pool,
)
from repro.gateway import GatewayStats, SnapshotDonor, boot_from_donor, boot_warm, fetch_snapshot
from repro.ontologies.university import build_university_labeling, build_university_system
from repro.service import ExplanationService

pytestmark = pytest.mark.gateway


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture()
def warm_service():
    service = ExplanationService(build_university_system())
    service.explain(build_university_labeling())
    return service


class SimulatedCrash(BaseException):
    """Raised mid-dump to model a writer killed while snapshotting."""


# -- atomic save --------------------------------------------------------------


class TestAtomicSave:
    def test_interrupted_save_preserves_the_previous_snapshot(
        self, warm_service, tmp_path, monkeypatch
    ):
        path = tmp_path / "cache.snapshot"
        warm_service.save(path)
        published = path.read_bytes()

        def dying_dump(state, stream, *args, **kwargs):
            stream.write(b"partial snapshot bytes, then the process dies")
            raise SimulatedCrash()

        monkeypatch.setattr(pickle, "dump", dying_dump)
        with pytest.raises(SimulatedCrash):
            warm_service.save(path)
        assert path.read_bytes() == published, (
            "a crash mid-dump must never touch the published snapshot"
        )

    def test_interrupted_first_save_publishes_nothing(
        self, warm_service, tmp_path, monkeypatch
    ):
        path = tmp_path / "cache.snapshot"

        def dying_dump(state, stream, *args, **kwargs):
            stream.write(b"partial")
            raise SimulatedCrash()

        monkeypatch.setattr(pickle, "dump", dying_dump)
        with pytest.raises(SimulatedCrash):
            warm_service.save(path)
        assert not path.exists(), "no snapshot existed, none may appear"

    def test_interrupted_save_leaves_no_temp_litter(
        self, warm_service, tmp_path, monkeypatch
    ):
        path = tmp_path / "cache.snapshot"

        def dying_dump(state, stream, *args, **kwargs):
            raise SimulatedCrash()

        monkeypatch.setattr(pickle, "dump", dying_dump)
        with pytest.raises(SimulatedCrash):
            warm_service.save(path)
        assert os.listdir(tmp_path) == [], "the partial temp file must be removed"

    def test_surviving_snapshot_still_loads(self, warm_service, tmp_path, monkeypatch):
        path = tmp_path / "cache.snapshot"
        warm_service.save(path)

        def dying_dump(state, stream, *args, **kwargs):
            stream.write(b"garbage")
            raise SimulatedCrash()

        monkeypatch.setattr(pickle, "dump", dying_dump)
        with pytest.raises(SimulatedCrash):
            warm_service.save(path)
        monkeypatch.undo()
        replica = ExplanationService(build_university_system())
        loaded = replica.load(path)
        assert loaded["verdict_rows"] > 0

    def test_save_replaces_existing_snapshot_in_place(self, warm_service, tmp_path):
        path = tmp_path / "cache.snapshot"
        warm_service.save(path)
        first = path.read_bytes()
        warm_service.explain(build_university_labeling(), radius=0)
        warm_service.save(path)
        assert path.read_bytes() != first, "the refreshed snapshot must be published"
        assert [entry for entry in os.listdir(tmp_path) if entry != "cache.snapshot"] == []


# -- corrupt-snapshot refusal -------------------------------------------------


class TestCorruptLoadRefusal:
    def refusal(self, tmp_path, payload: bytes):
        path = tmp_path / "bad.snapshot"
        path.write_bytes(payload)
        replica = ExplanationService(build_university_system())
        with pytest.raises(ValueError):
            replica.load(path)
        return replica

    def test_truncated_snapshot_refused(self, warm_service, tmp_path):
        path = tmp_path / "cache.snapshot"
        warm_service.save(path)
        whole = path.read_bytes()
        for cut in (1, len(whole) // 2, len(whole) - 1):
            self.refusal(tmp_path, whole[:cut])

    def test_empty_file_refused(self, tmp_path):
        self.refusal(tmp_path, b"")

    def test_garbage_bytes_refused(self, tmp_path):
        self.refusal(tmp_path, b"this is not a pickle at all \x00\x01\x02")

    def test_foreign_class_pickle_refused(self, tmp_path):
        # Protocol-0 GLOBAL opcode naming an attribute `os` does not
        # have: unpickling raises AttributeError, which must surface as
        # the ValueError refusal, not escape raw.
        self.refusal(tmp_path, b"cos\nnonexistent_attribute_xyz\n.")

    def test_foreign_module_pickle_refused(self, tmp_path):
        self.refusal(tmp_path, b"cnonexistent_module_xyz\nNope\n.")

    def test_wrong_object_pickle_refused(self, tmp_path):
        self.refusal(tmp_path, pickle.dumps([1, 2, 3]))

    def test_refused_replica_degrades_to_cold_start(self, warm_service, tmp_path):
        path = tmp_path / "cache.snapshot"
        warm_service.save(path)
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])
        replica = ExplanationService(build_university_system())
        stats = GatewayStats()
        result = boot_warm(replica, path, stats=stats)
        assert result["warm"] is False
        assert stats.cold_boots == 1
        # Cold but alive: the replica still answers correctly.
        labeling = build_university_labeling()
        direct = ExplanationService(build_university_system()).explain(labeling)
        assert replica.explain(labeling).render() == direct.render()

    def test_boot_warm_tolerates_a_missing_artifact(self, tmp_path):
        replica = ExplanationService(build_university_system())
        result = boot_warm(replica, tmp_path / "never_shipped.snapshot")
        assert result["warm"] is False
        assert "FileNotFoundError" in result["reason"]


# -- snapshot shipping --------------------------------------------------------


@pytest.mark.parametrize("domain", PROBE_DOMAINS)
def test_shipped_boot_ranks_identically_to_the_donor(domain):
    donor_system = build_probe_system(domain)
    labeling = probe_labeling(donor_system)
    pool = probe_pool(donor_system)
    donor_service = ExplanationService(donor_system)
    donor_report = donor_service.explain(labeling, candidates=pool, top_k=None)

    async def ship():
        donor = SnapshotDonor(donor_service)
        host, port = await donor.start()
        replica = ExplanationService(build_probe_system(domain))
        boot = await boot_from_donor(replica, host, port)
        await donor.close()
        return donor, replica, boot

    donor, replica, boot = run(ship())
    assert boot["warm"] is True
    assert boot["donor"]["fingerprint"] == replica.content_fingerprint()
    assert donor.stats.snapshots_shipped == 1
    replica_report = replica.explain(labeling, candidates=pool, top_k=None)
    assert replica_report.render(top_k=None) == donor_report.render(top_k=None)
    assert replica.cache_stats.verdict_row_hits > 0, (
        "the shipped verdict rows must actually serve the replica's request"
    )


def test_fetch_refuses_a_peer_with_the_wrong_protocol(tmp_path):
    async def scenario():
        async def http_impersonator(reader, writer):
            await reader.readline()
            writer.write(b"HTTP/1.1 200 OK\r\n\r\nhello")
            await writer.drain()
            writer.close()

        server = await asyncio.start_server(http_impersonator, "127.0.0.1", 0)
        host, port = server.sockets[0].getsockname()[:2]
        destination = tmp_path / "fetched.snapshot"
        with pytest.raises(GatewayError):
            await fetch_snapshot(host, port, destination)
        server.close()
        await server.wait_closed()
        assert not destination.exists(), "a refused fetch must write nothing"

    run(scenario())


def test_boot_from_unreachable_donor_degrades_to_cold(tmp_path):
    async def scenario():
        # Bind-then-close guarantees a dead port.
        server = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
        host, port = server.sockets[0].getsockname()[:2]
        server.close()
        await server.wait_closed()
        replica = ExplanationService(build_university_system())
        stats = GatewayStats()
        result = await boot_from_donor(replica, host, port, stats=stats)
        assert result["warm"] is False
        assert stats.cold_boots == 1

    run(scenario())


def test_registry_snapshot_path_boots_rebuilds_warm(tmp_path):
    from repro.gateway import ServiceRegistry

    donor = ExplanationService(build_university_system())
    donor.explain(build_university_labeling())
    path = tmp_path / "uni.snapshot"
    donor.save(path)

    registry = ServiceRegistry()
    registry.register("uni", build_university_system, snapshot_path=path)
    service = registry.service("uni")
    assert registry.stats.warm_boots == 1
    service.explain(build_university_labeling())
    assert service.cache_stats.verdict_row_hits > 0, (
        "a snapshot-registered tenant must boot warm on (re)build"
    )
