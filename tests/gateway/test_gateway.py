"""Concurrency suite for the async explanation gateway.

The contract: multiplexing only changes who pays, never the report.
Coalesced, queued, timed-out-and-retried and registry-rebuilt requests
must all produce exactly what a direct
:class:`~repro.service.ExplanationService` call would — and the
admission-control / cancellation machinery must be deterministic, not
racy-by-luck.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import GatewayOverloaded, GatewayTimeout, UnknownTenantError
from repro.experiments.kernel_exp import (
    PROBE_DOMAINS,
    build_probe_system,
    probe_labeling,
    probe_pool,
)
from repro.gateway import ExplanationGateway, GatewayStats, ServiceRegistry
from repro.ontologies.loans import build_loan_system
from repro.ontologies.university import build_university_labeling, build_university_system
from repro.service import ExplanationService

pytestmark = pytest.mark.gateway


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture()
def labeling():
    return build_university_labeling()


def university_gateway(**kwargs) -> ExplanationGateway:
    registry = ServiceRegistry()
    registry.register("uni", build_university_system)
    return ExplanationGateway(registry=registry, **kwargs)


class _GatedExplain:
    """Monkeypatch hook: explain() blocks until the test releases it.

    Lets tests hold an evaluation in flight deterministically — to
    attach followers, cancel them, or saturate admission control —
    instead of racing a real evaluation's wall-clock.
    """

    def __init__(self, monkeypatch):
        self.release = threading.Event()
        self.calls = 0
        original = ExplanationService.explain
        gate = self

        def gated(service, *args, **kwargs):
            gate.calls += 1
            assert gate.release.wait(timeout=30), "test never released the gate"
            return original(service, *args, **kwargs)

        monkeypatch.setattr(ExplanationService, "explain", gated)


# -- coalescing ---------------------------------------------------------------


def test_concurrent_identical_requests_coalesce_to_one_evaluation(labeling):
    gateway = university_gateway(max_concurrency=2, max_pending=16)

    async def burst():
        reports = await asyncio.gather(*(gateway.explain("uni", labeling) for _ in range(8)))
        await gateway.aclose()
        return reports

    reports = run(burst())
    service = gateway.registry.service("uni")
    assert service.stats.requests == 1, "coalescing must collapse 8 requests into 1"
    assert service.stats.cold_builds == 1
    assert gateway.stats.coalesced_hits == 7
    assert gateway.stats.requests == 8
    assert len({report.render() for report in reports}) == 1


def test_coalescing_is_deterministic_under_a_held_evaluation(labeling, monkeypatch):
    gate = _GatedExplain(monkeypatch)
    gateway = university_gateway(max_concurrency=1, max_pending=4)

    async def scenario():
        leader = asyncio.ensure_future(gateway.explain("uni", labeling))
        await asyncio.sleep(0)  # leader admitted, evaluation held by the gate
        followers = [asyncio.ensure_future(gateway.explain("uni", labeling)) for _ in range(3)]
        await asyncio.sleep(0)  # followers attached to the in-flight entry
        assert gateway.stats.coalesced_hits == 3
        assert len(gateway.inflight_keys()) == 1
        gate.release.set()
        reports = await asyncio.gather(leader, *followers)
        await gateway.aclose()
        return reports

    reports = run(scenario())
    assert gate.calls == 1, "the held evaluation must have run exactly once"
    assert len({report.render() for report in reports}) == 1


def test_different_options_do_not_coalesce(labeling):
    gateway = university_gateway(max_concurrency=2, max_pending=16)

    async def burst():
        full, top1 = await asyncio.gather(
            gateway.explain("uni", labeling, top_k=None),
            gateway.explain("uni", labeling, top_k=1),
        )
        await gateway.aclose()
        return full, top1

    full, top1 = run(burst())
    assert gateway.stats.coalesced_hits == 0
    assert len(full) > len(top1)


def test_gateway_report_identical_to_direct_service(labeling):
    direct = ExplanationService(build_university_system()).explain(labeling)
    gateway = university_gateway()

    async def one():
        report = await gateway.explain("uni", labeling)
        await gateway.aclose()
        return report

    assert run(one()).render() == direct.render()


@pytest.mark.parametrize("domain", PROBE_DOMAINS)
def test_coalesced_serving_identical_across_domains(domain):
    system = build_probe_system(domain)
    labeling = probe_labeling(system)
    pool = probe_pool(system)
    direct = ExplanationService(build_probe_system(domain)).explain(
        labeling, candidates=pool, top_k=None
    )
    registry = ServiceRegistry()
    registry.register(domain, lambda: build_probe_system(domain))
    gateway = ExplanationGateway(registry=registry, max_concurrency=2)

    async def burst():
        reports = await asyncio.gather(
            *(gateway.explain(domain, labeling, candidates=pool, top_k=None) for _ in range(4))
        )
        await gateway.aclose()
        return reports

    for report in run(burst()):
        assert report.render(top_k=None) == direct.render(top_k=None)


# -- cancellation and timeouts ------------------------------------------------


def test_cancelled_follower_leaves_the_session_usable(labeling, monkeypatch):
    gate = _GatedExplain(monkeypatch)
    gateway = university_gateway(max_concurrency=1, max_pending=4)

    async def scenario():
        leader = asyncio.ensure_future(gateway.explain("uni", labeling))
        await asyncio.sleep(0)
        follower = asyncio.ensure_future(gateway.explain("uni", labeling))
        await asyncio.sleep(0)
        follower.cancel()
        gate.release.set()
        leader_report = await leader
        with pytest.raises(asyncio.CancelledError):
            await follower
        # The session the leader built serves the next request warm.
        retry = await gateway.explain("uni", labeling)
        await gateway.aclose()
        return leader_report, retry

    leader_report, retry = run(scenario())
    assert gateway.stats.cancelled == 1
    assert retry.render() == leader_report.render()
    service = gateway.registry.service("uni")
    assert service.stats.warm_hits >= 1, "the retry should hit the fully built session"


def test_cancelling_every_waiter_still_completes_the_evaluation(labeling, monkeypatch):
    gate = _GatedExplain(monkeypatch)
    gateway = university_gateway(max_concurrency=1, max_pending=4)

    async def scenario():
        request = asyncio.ensure_future(gateway.explain("uni", labeling))
        await asyncio.sleep(0)
        request.cancel()
        gate.release.set()
        with pytest.raises(asyncio.CancelledError):
            await request
        await gateway.drain()  # the shielded leader keeps running
        retry = await gateway.explain("uni", labeling)
        await gateway.aclose()
        return retry

    retry = run(scenario())
    assert gate.calls == 2, "the abandoned evaluation plus the retry"
    service = gateway.registry.service("uni")
    assert service.stats.warm_hits >= 1, "the abandoned leader fully built the session"
    assert retry.render() == ExplanationService(build_university_system()).explain(labeling).render()


def test_timeout_raises_gateway_timeout_and_work_survives(labeling, monkeypatch):
    gate = _GatedExplain(monkeypatch)
    gateway = university_gateway(max_concurrency=1, max_pending=4)

    async def scenario():
        with pytest.raises(GatewayTimeout):
            await gateway.explain("uni", labeling, timeout=0.05)
        gate.release.set()
        await gateway.drain()
        retry = await gateway.explain("uni", labeling)
        await gateway.aclose()
        return retry

    retry = run(scenario())
    assert gateway.stats.timeouts == 1
    assert retry.render() == ExplanationService(build_university_system()).explain(labeling).render()


# -- admission control --------------------------------------------------------


def test_overload_sheds_deterministically(labeling, monkeypatch):
    gate = _GatedExplain(monkeypatch)
    gateway = university_gateway(max_concurrency=1, max_pending=1)

    async def scenario():
        leader = asyncio.ensure_future(gateway.explain("uni", labeling))
        await asyncio.sleep(0)  # leader occupies the single pending slot
        with pytest.raises(GatewayOverloaded):
            await gateway.explain("uni", labeling, top_k=3)  # distinct key
        coalesced = asyncio.ensure_future(gateway.explain("uni", labeling))
        await asyncio.sleep(0)  # identical key: attaches, never shed
        gate.release.set()
        reports = await asyncio.gather(leader, coalesced)
        await gateway.aclose()
        return reports

    reports = run(scenario())
    assert gateway.stats.shed_requests == 1
    assert gateway.stats.coalesced_hits == 1
    assert gateway.stats.queue_depth_high_water == 1
    assert reports[0].render() == reports[1].render()


def test_shed_error_is_status_503():
    assert GatewayOverloaded.status == 503
    assert GatewayTimeout.status == 504


def test_unknown_tenant_error_reaches_the_awaiter(labeling):
    gateway = university_gateway()

    async def scenario():
        with pytest.raises(UnknownTenantError):
            await gateway.explain("nobody", labeling)
        await gateway.aclose()

    run(scenario())
    assert gateway.stats.errors == 1


# -- the registry -------------------------------------------------------------


class TestServiceRegistry:
    def test_lazy_construction(self):
        registry = ServiceRegistry()
        registry.register("uni", build_university_system)
        assert len(registry) == 0, "registration must not build anything"
        service = registry.service("uni")
        assert len(registry) == 1
        assert registry.stats.service_builds == 1
        assert registry.service("uni") is service
        assert registry.stats.service_reuses == 1

    def test_fingerprint_learned_on_first_build(self):
        registry = ServiceRegistry()
        registry.register("uni", build_university_system)
        assert registry.fingerprint("uni") is None
        service = registry.service("uni")
        assert registry.fingerprint("uni") == service.content_fingerprint()

    def test_content_identical_tenants_share_one_instance(self):
        registry = ServiceRegistry()
        registry.register("a", build_university_system)
        registry.register("b", build_university_system)
        assert registry.service("a") is registry.service("b")
        assert len(registry) == 1

    def test_lru_bounding_evicts_and_rebuilds(self):
        registry = ServiceRegistry(capacity=1)
        registry.register("uni", build_university_system)
        registry.register("loans", build_loan_system)
        first = registry.service("uni")
        registry.service("loans")  # evicts uni
        assert registry.stats.evictions == 1
        assert len(registry) == 1
        rebuilt = registry.service("uni")
        assert rebuilt is not first
        assert registry.stats.service_builds == 3

    def test_explicit_evict(self):
        registry = ServiceRegistry()
        registry.register("uni", build_university_system)
        assert registry.evict("uni") is False, "nothing live yet"
        registry.service("uni")
        assert registry.evict("uni") is True
        assert len(registry) == 0

    def test_unknown_tenant(self):
        registry = ServiceRegistry()
        with pytest.raises(UnknownTenantError):
            registry.service("ghost")
        with pytest.raises(UnknownTenantError):
            registry.fingerprint("ghost")


# -- stats: thread-safety and percentiles -------------------------------------


def test_service_stats_survive_many_concurrent_explainers(labeling):
    """Regression: concurrent explain() callers must never lose increments.

    12 threads × 5 requests against one service; the request counter and
    its outcome counters are bumped atomically as a group, so the totals
    must reconcile exactly.
    """
    service = ExplanationService(build_university_system())
    threads, per_thread = 12, 5

    def client():
        for _ in range(per_thread):
            service.explain(labeling)

    with ThreadPoolExecutor(max_workers=threads) as executor:
        for future in [executor.submit(client) for _ in range(threads)]:
            future.result()

    stats = service.stats
    total = threads * per_thread
    assert stats.requests == total
    assert stats.warm_hits + stats.drift_updates + stats.cold_builds == total


def test_evaluator_is_one_instance_across_threads():
    service = ExplanationService(build_university_system())
    with ThreadPoolExecutor(max_workers=16) as executor:
        evaluators = [
            future.result()
            for future in [executor.submit(service.evaluator, 1) for _ in range(64)]
        ]
    assert len({id(evaluator) for evaluator in evaluators}) == 1


def test_multi_counter_count_is_atomic_under_contention():
    stats = GatewayStats()

    def bump():
        for _ in range(1000):
            stats.count("requests", "completed")

    workers = [threading.Thread(target=bump) for _ in range(8)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert stats.requests == 8000
    assert stats.completed == 8000


def test_latency_percentiles_nearest_rank():
    stats = GatewayStats()
    assert stats.latency_percentiles() == {"p50": None, "p99": None, "samples": 0}
    for value in range(1, 101):
        stats.observe_latency(float(value))
    percentiles = stats.latency_percentiles()
    assert percentiles["p50"] == 50.0
    assert percentiles["p99"] == 99.0
    assert percentiles["samples"] == 100


def test_queue_depth_high_water_is_monotone():
    stats = GatewayStats()
    for depth in (1, 3, 2):
        stats.observe_queue_depth(depth)
    assert stats.queue_depth_high_water == 3
    report = stats.as_dict()
    assert report["queue_depth_high_water"] == 3
    assert "latency_p99" in report
