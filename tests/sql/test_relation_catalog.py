"""Unit tests for relations and catalogs (the relational data layer)."""

import pytest

from repro.errors import SchemaError, UnknownRelationError
from repro.queries.atoms import Atom
from repro.sql.catalog import Catalog
from repro.sql.relation import Relation, RelationSchema


class TestRelationSchema:
    def test_arity_and_positions(self):
        schema = RelationSchema("ENR", ("student", "subject", "university"))
        assert schema.arity == 3
        assert schema.position_of("subject") == 1

    def test_unknown_attribute(self):
        schema = RelationSchema("ENR", ("student",))
        with pytest.raises(SchemaError):
            schema.position_of("nope")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a", "a"))

    def test_empty_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())


class TestRelation:
    def test_add_and_contains(self):
        relation = Relation(RelationSchema("LOC", ("university", "city")))
        relation.add(("Sap", "Rome"))
        assert ("Sap", "Rome") in relation
        assert len(relation) == 1

    def test_set_semantics(self):
        relation = Relation(RelationSchema("R", ("a",)))
        relation.add(("x",))
        relation.add(("x",))
        assert len(relation) == 1

    def test_arity_check(self):
        relation = Relation(RelationSchema("R", ("a", "b")))
        with pytest.raises(SchemaError):
            relation.add(("only-one",))

    def test_project(self):
        relation = Relation(RelationSchema("ENR", ("student", "subject", "university")))
        relation.add(("A10", "Math", "TV"))
        relation.add(("B80", "Math", "Sap"))
        projected = relation.project(["subject"])
        assert projected.rows == {("Math",)}

    def test_select(self):
        relation = Relation(RelationSchema("LOC", ("university", "city")))
        relation.add_all([("Sap", "Rome"), ("Pol", "Milan")])
        selected = relation.select(lambda row: row["city"] == "Rome")
        assert selected.rows == {("Sap", "Rome")}

    def test_column_and_remove(self):
        relation = Relation(RelationSchema("LOC", ("university", "city")))
        relation.add_all([("Sap", "Rome"), ("Pol", "Milan")])
        assert relation.column("city") == ["Milan", "Rome"]
        relation.remove(("Pol", "Milan"))
        assert len(relation) == 1


class TestCatalog:
    def build(self):
        catalog = Catalog("uni")
        catalog.create_relation("STUD", ("student",))
        catalog.create_relation("LOC", ("university", "city"))
        catalog.insert("STUD", ("A10",))
        catalog.insert_all("LOC", [("Sap", "Rome"), ("Pol", "Milan")])
        return catalog

    def test_creation_and_lookup(self):
        catalog = self.build()
        assert catalog.has_relation("STUD")
        assert catalog.relation("LOC").schema.arity == 2
        assert catalog.row_count() == 3

    def test_duplicate_creation_rejected(self):
        catalog = self.build()
        with pytest.raises(SchemaError):
            catalog.create_relation("STUD", ("student",))

    def test_unknown_relation(self):
        catalog = self.build()
        with pytest.raises(UnknownRelationError):
            catalog.relation("NOPE")
        with pytest.raises(UnknownRelationError):
            catalog.drop_relation("NOPE")

    def test_drop(self):
        catalog = self.build()
        catalog.drop_relation("STUD")
        assert not catalog.has_relation("STUD")

    def test_to_atoms_roundtrip(self):
        catalog = self.build()
        atoms = catalog.to_atoms()
        assert Atom.of("LOC", "Sap", "Rome") in atoms
        rebuilt = Catalog.from_atoms(atoms, "rebuilt")
        assert rebuilt.row_count() == catalog.row_count()

    def test_from_atoms_rejects_mixed_arity(self):
        with pytest.raises(SchemaError):
            Catalog.from_atoms([Atom.of("R", "a"), Atom.of("R", "a", "b")])

    def test_copy_is_independent(self):
        catalog = self.build()
        duplicate = catalog.copy()
        duplicate.insert("STUD", ("B80",))
        assert catalog.relation("STUD").rows == {("A10",)}
