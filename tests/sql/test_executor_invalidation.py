"""Executor fact-index cache: invalidation tied to catalog content.

The seed's :class:`~repro.sql.executor.Executor` cached the catalog's
atom view and relied on callers remembering to call ``invalidate()``
after every mutation — a stale-read bug waiting to happen.  The cache
is now keyed on :meth:`~repro.sql.catalog.Catalog.content_version`, a
monotonic counter covering row contents and DDL, so mutations are
picked up automatically (and ``invalidate()`` stays as a no-op-safe
explicit form).
"""

from repro.queries.parser import parse_cq
from repro.sql.catalog import Catalog
from repro.sql.executor import Executor


def build_catalog():
    catalog = Catalog("inv")
    catalog.create_relation("ENR", ("student", "course", "campus"))
    catalog.insert("ENR", ("S1", "db", "rome"))
    catalog.insert("ENR", ("S2", "ai", "milan"))
    return catalog


QUERY = parse_cq("q(x) :- ENR(x, y, z)")


class TestRelationVersion:
    def test_bumps_only_on_effective_change(self):
        catalog = build_catalog()
        relation = catalog.relation("ENR")
        version = relation.version
        relation.add(("S1", "db", "rome"))  # duplicate: no change
        assert relation.version == version
        relation.remove(("NOPE", "db", "rome"))  # absent: no change
        assert relation.version == version
        relation.add(("S3", "ml", "turin"))
        assert relation.version == version + 1
        relation.remove(("S3", "ml", "turin"))
        assert relation.version == version + 2

    def test_content_version_monotonic_across_drop(self):
        catalog = build_catalog()
        seen = [catalog.content_version()]
        catalog.insert("ENR", ("S3", "ml", "turin"))
        seen.append(catalog.content_version())
        # Dropping a relation removes its versions from the sum; the
        # structure counter must absorb them so the total never reverts.
        catalog.drop_relation("ENR")
        seen.append(catalog.content_version())
        catalog.create_relation("ENR", ("student", "course", "campus"))
        seen.append(catalog.content_version())
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)


class TestExecutorInvalidation:
    def test_stale_reads_without_explicit_invalidate(self):
        catalog = build_catalog()
        executor = Executor(catalog)
        assert executor.execute(QUERY) == [("S1",), ("S2",)]
        # Mutate the catalog *without* telling the executor.
        catalog.insert("ENR", ("S3", "ml", "turin"))
        assert executor.execute(QUERY) == [("S1",), ("S2",), ("S3",)]
        catalog.relation("ENR").remove(("S1", "db", "rome"))
        assert executor.execute(QUERY) == [("S2",), ("S3",)]

    def test_no_op_mutations_keep_cache_warm(self):
        catalog = build_catalog()
        executor = Executor(catalog)
        executor.execute(QUERY)
        index = executor._fact_index
        catalog.insert("ENR", ("S1", "db", "rome"))  # duplicate row
        executor.execute(QUERY)
        assert executor._fact_index is index

    def test_explicit_invalidate_still_works(self):
        catalog = build_catalog()
        executor = Executor(catalog)
        executor.execute(QUERY)
        executor.invalidate()
        assert executor._fact_index is None
        assert executor.execute(QUERY) == [("S1",), ("S2",)]

    def test_ddl_invalidates(self):
        catalog = build_catalog()
        executor = Executor(catalog)
        assert executor.execute(QUERY) == [("S1",), ("S2",)]
        catalog.create_relation("LOC", ("course", "city"))
        catalog.insert("LOC", ("db", "rome"))
        assert executor.execute(parse_cq("q(x) :- LOC(y, x)")) == [("rome",)]
