"""Unit tests for relational algebra, the mini SQL parser and the executor."""

import pytest

from repro.errors import QueryParseError, SchemaError
from repro.queries.parser import parse_cq
from repro.sql.algebra import Condition, CrossProduct, Project, Rename, Scan, Select, Union, natural_join
from repro.sql.catalog import Catalog
from repro.sql.executor import Executor
from repro.sql.sql_parser import parse_sql, sql_to_algebra


@pytest.fixture()
def catalog():
    catalog = Catalog("uni")
    catalog.create_relation("ENR", ("student", "subject", "university"))
    catalog.create_relation("LOC", ("university", "city"))
    catalog.insert_all(
        "ENR",
        [
            ("A10", "Math", "TV"),
            ("B80", "Math", "Sap"),
            ("C12", "Science", "Norm"),
            ("D50", "Science", "TV"),
            ("E25", "Math", "Pol"),
        ],
    )
    catalog.insert_all("LOC", [("Sap", "Rome"), ("TV", "Rome"), ("Pol", "Milan")])
    return catalog


class TestAlgebra:
    def test_scan_prefixes_attributes(self, catalog):
        relation = Scan("ENR", "e").evaluate(catalog)
        assert relation.schema.attributes == ("e.student", "e.subject", "e.university")
        assert len(relation) == 5

    def test_select_with_constant(self, catalog):
        node = Select(Scan("LOC", "l"), (Condition("l.city", "Rome"),))
        assert len(node.evaluate(catalog)) == 2

    def test_project(self, catalog):
        node = Project(Scan("ENR", "e"), ("e.subject",))
        assert node.evaluate(catalog).rows == {("Math",), ("Science",)}

    def test_cross_product_and_join_condition(self, catalog):
        product = CrossProduct(Scan("ENR", "e"), Scan("LOC", "l"))
        joined = Select(product, (Condition("e.university", "l.university", True, True),))
        relation = joined.evaluate(catalog)
        # Norm (C12's university) has no LOC row, so only 4 enrolments join.
        assert len(relation) == 4

    def test_union(self, catalog):
        left = Project(Scan("ENR", "e"), ("e.student",))
        right = Project(Scan("LOC", "l"), ("l.university",))
        assert len(Union(left, right).evaluate(catalog)) == 8

    def test_union_arity_mismatch(self, catalog):
        left = Scan("ENR", "e")
        right = Scan("LOC", "l")
        with pytest.raises(SchemaError):
            Union(left, right).evaluate(catalog)

    def test_rename(self, catalog):
        node = Rename(Project(Scan("LOC", "l"), ("l.city",)), ("city_name",))
        assert node.evaluate(catalog).schema.attributes == ("city_name",)

    def test_ambiguous_bare_attribute(self, catalog):
        product = CrossProduct(Scan("LOC", "a"), Scan("LOC", "b"))
        with pytest.raises(SchemaError):
            Select(product, (Condition("city", "Rome"),)).evaluate(catalog)

    def test_natural_join(self, catalog):
        relation = natural_join(Scan("ENR", "e"), Scan("LOC", "l"), catalog)
        # Join on the shared bare attribute name 'university'; Norm has no LOC row.
        assert len(relation) == 4


class TestSqlParser:
    def test_parse_shape(self):
        parsed = parse_sql(
            "SELECT e.student FROM ENR AS e, LOC AS l "
            "WHERE e.university = l.university AND l.city = 'Rome'"
        )
        assert parsed.select_list == ("e.student",)
        assert parsed.from_list == (("ENR", "e"), ("LOC", "l"))
        assert len(parsed.conditions) == 2

    def test_execution_of_join(self, catalog):
        rows = Executor(catalog).execute(
            "SELECT e.student FROM ENR AS e, LOC AS l "
            "WHERE e.university = l.university AND l.city = 'Rome'"
        )
        assert sorted(rows) == [("A10",), ("B80",), ("D50",)]

    def test_select_star(self, catalog):
        rows = Executor(catalog).execute("SELECT * FROM LOC")
        assert len(rows) == 3

    def test_numeric_and_boolean_literals(self):
        parsed = parse_sql("SELECT r.a FROM R AS r WHERE r.b = 3 AND r.c = TRUE")
        values = [condition.right for condition in parsed.conditions]
        assert 3 in values and True in values

    def test_alias_without_as(self, catalog):
        rows = Executor(catalog).execute("SELECT l.city FROM LOC l WHERE l.city = 'Milan'")
        assert rows == [("Milan",)]

    def test_parse_errors(self):
        with pytest.raises(QueryParseError):
            parse_sql("SELECT FROM R")
        with pytest.raises(QueryParseError):
            parse_sql("SELECT a FROM R WHERE")
        with pytest.raises(QueryParseError):
            parse_sql("SELECT a FROM R extra stuff !!!")


class TestExecutor:
    def test_cq_source_query(self, catalog):
        rows = Executor(catalog).execute(parse_cq("m(x, y) :- ENR(x, y, z)"))
        assert ("A10", "Math") in rows
        assert len(rows) == 5

    def test_algebra_source_query(self, catalog):
        rows = Executor(catalog).execute(Project(Scan("LOC", "l"), ("l.city",)))
        assert sorted(rows) == [("Milan",), ("Rome",)]

    def test_invalidate_after_update(self, catalog):
        executor = Executor(catalog)
        before = executor.execute(parse_cq("m(x) :- LOC(x, y)"))
        catalog.insert("LOC", ("Norm", "Pisa"))
        executor.invalidate()
        after = executor.execute(parse_cq("m(x) :- LOC(x, y)"))
        assert len(after) == len(before) + 1

    def test_unsupported_source_type(self, catalog):
        with pytest.raises(SchemaError):
            Executor(catalog).execute(42)  # type: ignore[arg-type]
