"""Unit tests for the datalog-style query parser."""

import pytest

from repro.errors import QueryParseError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_cq, parse_query, parse_ucq
from repro.queries.terms import Constant, Variable
from repro.queries.ucq import UnionOfConjunctiveQueries


class TestParseCQ:
    def test_paper_query_q1(self):
        query = parse_cq("q1(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, 'Rome')")
        assert query.name == "q1"
        assert query.arity == 1
        assert query.atom_count() == 3
        assert Constant("Rome") in query.constants()

    def test_quoted_strings_are_constants(self):
        query = parse_cq("q(x) :- studies(x, 'Math')")
        assert Constant("Math") in query.constants()

    def test_double_quotes_supported(self):
        query = parse_cq('q(x) :- studies(x, "Math")')
        assert Constant("Math") in query.constants()

    def test_uppercase_names_are_constants(self):
        query = parse_cq("q(x) :- locatedIn(x, Rome)")
        assert Constant("Rome") in query.constants()

    def test_numbers_are_constants(self):
        query = parse_cq("q(x) :- age(x, 42), score(x, 3.5)")
        assert Constant(42) in query.constants()
        assert Constant(3.5) in query.constants()

    def test_lowercase_names_are_variables(self):
        query = parse_cq("q(x) :- studies(x, y)")
        assert query.variables() == {Variable("x"), Variable("y")}

    def test_alternative_arrow(self):
        query = parse_cq("q(x) <- studies(x, y)")
        assert query.atom_count() == 1

    def test_constant_in_head_rejected(self):
        with pytest.raises(QueryParseError):
            parse_cq("q(Rome) :- locatedIn(x, Rome)")

    def test_missing_arrow_rejected(self):
        with pytest.raises(QueryParseError):
            parse_cq("q(x) studies(x, y)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QueryParseError):
            parse_cq("q(x) :- studies(x, y) garbage")

    def test_unbalanced_parenthesis_rejected(self):
        with pytest.raises(QueryParseError):
            parse_cq("q(x) :- studies(x, y")


class TestParseUCQ:
    def test_newline_separated(self):
        ucq = parse_ucq("q(x) :- studies(x, 'Math')\nq(x) :- likes(x, 'Science')")
        assert ucq.disjunct_count() == 2

    def test_semicolon_separated(self):
        ucq = parse_ucq("q(x) :- R(x, y); q(x) :- S(x, y)")
        assert ucq.disjunct_count() == 2

    def test_empty_text_rejected(self):
        with pytest.raises(QueryParseError):
            parse_ucq("   \n  ")


class TestParseQuery:
    def test_single_rule_gives_cq(self):
        assert isinstance(parse_query("q(x) :- R(x, y)"), ConjunctiveQuery)

    def test_multiple_rules_give_ucq(self):
        parsed = parse_query("q(x) :- R(x, y)\nq(x) :- S(x, y)")
        assert isinstance(parsed, UnionOfConjunctiveQueries)

    def test_roundtrip_through_str(self):
        query = parse_cq("q(x) :- studies(x, y), locatedIn(y, 'Rome')")
        # The rendered form is not re-parseable verbatim (it uses ?x), but it
        # must mention every predicate.
        rendered = str(query)
        assert "studies" in rendered and "locatedIn" in rendered
